#!/usr/bin/env python
"""napletperf: run, diff, and explain naplet benchmarks.

The CLI over the perf plane (DESIGN.md §6.6).  Three jobs:

- ``run`` — execute a registered bench suite (pytest-benchmark tests under
  ``benchmarks/``); each suite writes its ``BENCH_*.json`` snapshot in
  schema v2 (git SHA, timestamp, machine fingerprint) and can append to a
  history directory for trend lines;
- ``diff`` — compare two snapshots with a tolerance and exit non-zero on
  regression (the CI bench-smoke gate).  ``--structural`` restricts the
  comparison to timing-independent metrics (frame counts, connections,
  bytes), which is what CI gates on: wall-clock varies across machines,
  protocol structure must not;
- ``hops`` — render the per-hop cost table from a harvested journal dump
  (the ``{"records": [...]}`` files ``tools/napletlog.py`` writes).

Examples:

    python tools/napletperf.py list
    python tools/napletperf.py run transport --history bench_history
    python tools/napletperf.py diff BENCH_transport.json new.json --structural
    python tools/napletperf.py hops journal_dump.json --naplet <nid>
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf import (  # noqa: E402  (sys.path fixed above)
    diff_bench,
    load_bench,
    render_hop_costs,
)

# Registered bench suites: name -> (pytest target, snapshot it writes).
# ``fast`` is the subset CI's bench-smoke job runs.
SUITES: dict[str, dict[str, str]] = {
    "transport": {
        "target": "benchmarks/test_bench_transport_fastpath.py",
        "snapshot": "BENCH_transport.json",
        "tier": "fast",
    },
    "telemetry": {
        "target": "benchmarks/test_bench_telemetry_overhead.py",
        "snapshot": "",
        "tier": "slow",
    },
    "loadaware": {
        "target": "benchmarks/test_bench_loadaware.py",
        "snapshot": "BENCH_loadaware.json",
        "tier": "fast",
    },
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'suite':<12} {'tier':<6} {'snapshot':<24} target")
    for name, suite in SUITES.items():
        print(
            f"{name:<12} {suite['tier']:<6} "
            f"{suite['snapshot'] or '(none)':<24} {suite['target']}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = args.suites or [
        name for name, s in SUITES.items() if args.all or s["tier"] == "fast"
    ]
    unknown = [n for n in names if n not in SUITES]
    if unknown:
        print(f"unknown suite(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    if args.history:
        env["NAPLET_BENCH_HISTORY"] = str(Path(args.history).resolve())
    status = 0
    for name in names:
        suite = SUITES[name]
        print(f"== running suite {name!r}: {suite['target']}")
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", suite["target"], "-q", "--no-header"],
            cwd=REPO_ROOT,
            env=env,
        )
        if proc.returncode != 0:
            status = proc.returncode
        elif suite["snapshot"]:
            print(f"   snapshot: {suite['snapshot']}")
    return status


def _cmd_diff(args: argparse.Namespace) -> int:
    old = load_bench(args.old)
    new = load_bench(args.new)
    for label, snap in (("old", old), ("new", new)):
        sha = snap.get("git_sha") or "?"
        print(
            f"  {label}: {snap.get('experiment', '?')} "
            f"@ {snap.get('timestamp') or '?'} ({str(sha)[:10]})"
        )
    old_machine, new_machine = old.get("machine"), new.get("machine")
    if old_machine and new_machine and old_machine != new_machine:
        print("  note: snapshots come from different machines; timing deltas")
        print("        may be hardware, not code (consider --structural)")
    diff = diff_bench(
        old, new, tolerance=args.tolerance, structural_only=args.structural
    )
    if args.json:
        print(
            json.dumps(
                {
                    "tolerance": diff.tolerance,
                    "ok": diff.ok,
                    "entries": [vars(e) for e in diff.entries],
                },
                indent=2,
                default=str,
            )
        )
    else:
        print(diff.render())
    return 0 if diff.ok else 1


def _cmd_hops(args: argparse.Namespace) -> int:
    data = json.loads(Path(args.dump).read_text())
    records = data.get("records", data) if isinstance(data, dict) else data
    if not isinstance(records, list):
        print(f"{args.dump}: not a journal dump", file=sys.stderr)
        return 2
    print(render_hop_costs(records, naplet=args.naplet))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run, diff, and explain naplet benchmarks."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered bench suites")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run bench suites (default: the fast tier)")
    p_run.add_argument("suites", nargs="*", help="suite names (default: fast tier)")
    p_run.add_argument("--all", action="store_true", help="run every suite")
    p_run.add_argument(
        "--history", metavar="DIR",
        help="append snapshots into this history directory",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_diff = sub.add_parser(
        "diff", help="compare two BENCH_*.json snapshots; exit 1 on regression"
    )
    p_diff.add_argument("old", help="baseline snapshot")
    p_diff.add_argument("new", help="candidate snapshot")
    p_diff.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional change before a metric regresses (default 0.2)",
    )
    p_diff.add_argument(
        "--structural", action="store_true",
        help="compare only timing-independent metrics (CI-stable)",
    )
    p_diff.add_argument("--json", action="store_true", help="machine-readable output")
    p_diff.set_defaults(fn=_cmd_diff)

    p_hops = sub.add_parser(
        "hops", help="per-hop cost table from a napletlog journal dump"
    )
    p_hops.add_argument("dump", help="journal dump file (napletlog format)")
    p_hops.add_argument("--naplet", help="restrict to one naplet id")
    p_hops.set_defaults(fn=_cmd_hops)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head(1)
        sys.exit(0)
