#!/usr/bin/env python
"""napletstat: a live terminal dashboard for a naplet space.

``top`` for mobile agents.  Polls every server's health plane and renders
per-server status, the busiest naplets by CPU, dead-letter depth, and the
watchdog's active findings — plain ANSI, no curses, so it works in any
terminal (and in CI logs with ``--once``).

The dashboard consumes the JSON-shaped rows the ``telemetry`` open service
exposes, so the same renderer works on both collection paths:

- **in-process** — a :class:`~repro.server.SpaceAdmin` over the server
  objects (``rows_from_admin``), as the demo mode does;
- **over the wire** — a :class:`~repro.health.HealthProbeNaplet` touring
  the space and carrying the health snapshots home
  (:func:`repro.health.harvest_via_probe`), which works over any
  transport the space runs on.

Run:

    python tools/napletstat.py --demo --once          # one frame, demo space
    python tools/napletstat.py --demo --interval 1.0  # live, ctrl-C to stop
    python tools/napletstat.py --demo --wedge --once  # demo with a stuck naplet
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402  (sys.path fixed above)

_CLEAR = "\x1b[2J\x1b[H"
_SEVERITY_GLYPH = {"critical": "!!", "warning": " !", "info": "  "}


# --------------------------------------------------------------------- #
# Collection
# --------------------------------------------------------------------- #


def rows_from_admin(admin) -> list[dict[str, Any]]:
    """Health rows straight off the server objects (in-process path).

    Shape-compatible with what ``harvest_via_probe`` brings home, so the
    renderer cannot tell the two apart.
    """
    rows: list[dict[str, Any]] = []
    for summary in admin.space_summary():
        server = admin._servers[summary.hostname]
        snapshot = server.telemetry.registry.snapshot()
        egress, ingress = server.transport.endpoint_bytes(summary.hostname)
        rows.append(
            {
                "server": summary.hostname,
                "status": {
                    "server": summary.hostname,
                    "telemetry": "enabled" if server.telemetry.enabled else "disabled",
                    "health": "enabled" if server.health.enabled else "disabled",
                },
                "health": server.health.describe(),
                "metrics": {
                    "naplet_hops_total": snapshot.total("naplet_hops_total"),
                    "naplet_landings_total": snapshot.total("naplet_landings_total"),
                    # Perf plane: the transport's per-endpoint byte counters
                    "egress_bytes": egress,
                    "ingress_bytes": ingress,
                },
                "residents": summary.residents,
            }
        )
    return rows


def journal_tail(
    admin, watermarks: dict[str, int], journey: str | None = None
) -> list[Any]:
    """New journal records past per-server *watermarks*, causally merged.

    ``watermarks`` maps hostname -> last seen per-server sequence number
    and is advanced in place, so successive calls yield only fresh records
    — the collection half of ``--follow``.  With *journey* set, only
    records of that journey (trace id or naplet id) survive.
    """
    from repro.telemetry.journal import merge_journals

    fresh = []
    for hostname in admin.hostnames:
        journal = admin._servers[hostname].journal
        records = journal.records(after_seq=watermarks.get(hostname, 0))
        if records:
            watermarks[hostname] = records[-1].seq
            fresh.append(records)
    merged = merge_journals(fresh)
    if journey is not None:
        merged = [
            r
            for r in merged
            if r.trace_id == journey or r.naplet == journey or r.mentions(journey)
        ]
    return merged


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #


def _fmt_rate(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.1f}"


def render(rows: list[dict[str, Any]], top: int = 5) -> str:
    """One dashboard frame over the harvested *rows* (pure, testable)."""
    lines: list[str] = []
    stamp = time.strftime("%H:%M:%S")
    lines.append(f"napletstat  {stamp}  servers={len(rows)}")
    lines.append("")

    # -- per-server table ---------------------------------------------- #
    lines.append(
        f"  {'server':<10} {'health':<9} {'residents':>9} {'profiles':>9} "
        f"{'samples':>8} {'in-B':>8} {'out-B':>8} {'dead-ltr':>9} {'findings':>9}"
    )
    total_dead = 0
    findings: list[dict[str, Any]] = []
    profiles: list[tuple[str, dict[str, Any]]] = []
    for row in rows:
        health = row.get("health") or {}
        server = row.get("server", "?")
        if "error" in row:
            lines.append(f"  {server:<10} unreachable: {row['error']}")
            continue
        dead = int(health.get("dead_letter_depth", 0))
        total_dead += dead
        active = health.get("findings") or []
        findings.extend(dict(f, server=f.get("server", server)) for f in active)
        profiles.extend((server, p) for p in (health.get("profiles") or []))
        state = (row.get("status") or {}).get("health", "?")
        residents = row.get(
            "residents", sum(1 for p in health.get("profiles") or [] if p.get("resident"))
        )
        metrics = row.get("metrics") or {}
        lines.append(
            f"  {server:<10} {state:<9} {residents:>9} "
            f"{len(health.get('profiles') or []):>9} "
            f"{int(health.get('samples_taken', 0)):>8} "
            f"{_fmt_rate(float(metrics.get('ingress_bytes', 0))):>8} "
            f"{_fmt_rate(float(metrics.get('egress_bytes', 0))):>8} "
            f"{dead:>9} {len(active):>9}"
        )
    lines.append("")

    # -- top naplets by CPU --------------------------------------------- #
    profiles.sort(key=lambda sp: float(sp[1].get("cpu_seconds", 0.0)), reverse=True)
    lines.append(f"  top naplets by CPU (of {len(profiles)} profiled)")
    lines.append(
        f"  {'naplet':<34} {'at':<10} {'cpu-s':>8} {'cpu%':>6} "
        f"{'B/s':>8} {'msgs':>6} {'state':<9}"
    )
    for server, profile in profiles[:top]:
        lines.append(
            f"  {str(profile.get('naplet', '?')):<34} {server:<10} "
            f"{float(profile.get('cpu_seconds', 0.0)):>8.3f} "
            f"{float(profile.get('cpu_rate', 0.0)) * 100:>5.1f}% "
            f"{_fmt_rate(float(profile.get('bandwidth', 0.0))):>8} "
            f"{int(profile.get('messages_sent', 0)):>6} "
            f"{'resident' if profile.get('resident') else 'gone':<9}"
        )
    if not profiles:
        lines.append("  (no resource profiles yet)")
    lines.append("")

    # -- dead letters + findings ---------------------------------------- #
    lines.append(f"  dead letters space-wide: {total_dead}")
    findings.sort(
        key=lambda f: (
            {"critical": 0, "warning": 1, "info": 2}.get(f.get("severity"), 3),
            f.get("first_seen", 0.0),
        )
    )
    lines.append(f"  active findings: {len(findings)}")
    for finding in findings:
        glyph = _SEVERITY_GLYPH.get(finding.get("severity", "info"), "  ")
        lines.append(
            f"  {glyph} [{finding.get('severity', '?'):<8}] "
            f"{finding.get('kind', '?')} {finding.get('subject', '?')}"
            f"@{finding.get('server', '?')}: {finding.get('detail', '')}"
        )
    if not findings:
        lines.append("     (space is healthy)")
    return "\n".join(lines)


def render_space_view(space_view: dict[str, Any]) -> str:
    """The observatory panel: who sees whom, and how loaded (pure, testable).

    *space_view* is ``SpaceAdmin.space_view()`` — per observing server, the
    merged :class:`~repro.health.SpaceView` it navigates by.  Cells show the
    peer's load score as the observer currently believes it; ``?`` marks a
    peer whose digest is stale or was never heard (decayed to *unknown*,
    never to idle — see DESIGN.md §6.8).
    """
    observers = sorted(space_view)
    peers = sorted(
        {p for view in space_view.values() for p in (view.get("peers") or {})}
        | set(observers)
    )
    lines = [
        f"  space view  ({len(observers)} observers x {len(peers)} peers; "
        f"cell = load score, ? = unknown/stale)"
    ]
    lines.append("  " + f"{'sees ->':<10}" + "".join(f"{p:>9}" for p in peers))
    for observer in observers:
        view = space_view.get(observer) or {}
        held = view.get("peers") or {}
        cells = []
        for peer in peers:
            entry = held.get(peer)
            if entry is None or not entry.get("fresh") or entry.get("score") is None:
                cells.append(f"{'?':>9}")
            else:
                cells.append(f"{float(entry['score']):>9.1f}")
        notes = []
        if not view.get("enabled", True):
            notes.append("observatory off")
        elif not view.get("load_aware", True):
            notes.append("static order")
        reroutes = int(view.get("reroutes", 0))
        if reroutes:
            notes.append(f"reroutes={reroutes}")
        suffix = f"  ({', '.join(notes)})" if notes else ""
        lines.append(f"  {observer:<10}" + "".join(cells) + suffix)
    if not observers:
        lines.append("  (no observatories reporting)")
    return "\n".join(lines)


def render_journey(records: list[Any], journey: str) -> str:
    """Flight-recorder timeline of one journey (pure, testable).

    *records* are already-filtered journal records in causal order, as
    :func:`journal_tail` returns them with its ``journey`` argument.
    """
    from repro.telemetry.journal import format_record

    lines = [f"  journey {journey}: {len(records)} journal records"]
    lines.extend(f"  {format_record(record)}" for record in records)
    if not records:
        lines.append("  (no records — wrong id, or the journal is disabled)")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Demo space
# --------------------------------------------------------------------- #


class DemoWorker(repro.Naplet):
    """Burns a little CPU at each stop so the dashboard has rates."""

    def on_start(self) -> None:
        total = 0
        for _ in range(40):
            total += sum(j * j for j in range(4000))
            self.checkpoint()
        self.state.set("total", total)
        self.travel()


class DemoWedged(repro.Naplet):
    """Sleeps without checkpointing: exactly what the watchdog hunts."""

    def on_start(self) -> None:
        while True:
            time.sleep(0.2)


def build_demo_space(wedge: bool = False):
    """A small live space generating its own traffic (and one stuck naplet).

    Returns ``(network, admin)``; caller shuts the network down.
    """
    from repro.itinerary import Itinerary, SeqPattern
    from repro.itinerary.pattern import singleton
    from repro.server import ServerConfig, SpaceAdmin, deploy
    from repro.simnet import VirtualNetwork, ring

    network = VirtualNetwork(ring(4, prefix="d"))
    servers = deploy(
        network,
        config=ServerConfig(health_cadence=0.1, health_stuck_deadline=0.5),
    )
    admin = SpaceAdmin(servers)
    hosts = sorted(servers)
    for i in range(3):
        worker = DemoWorker(f"demo-worker-{i}")
        worker.set_itinerary(
            Itinerary(SeqPattern.of_servers(hosts[1:] * 4))
        )
        servers[hosts[0]].launch(worker, owner="demo")
    if wedge:
        wedged = DemoWedged("demo-wedged")
        wedged.set_itinerary(Itinerary(singleton(hosts[1])))
        servers[hosts[0]].launch(wedged, owner="demo")
    return network, admin


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Live health dashboard for a naplet space."
    )
    parser.add_argument(
        "--demo", action="store_true", help="spin up an in-process demo space"
    )
    parser.add_argument(
        "--wedge",
        action="store_true",
        help="plant a stuck naplet in the demo space (shows a finding)",
    )
    parser.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, help="refresh period in seconds"
    )
    parser.add_argument(
        "--top", type=int, default=5, help="naplets shown in the CPU table"
    )
    parser.add_argument(
        "--frames", type=int, default=0, help="stop after N frames (0 = forever)"
    )
    parser.add_argument(
        "--journey",
        metavar="ID",
        help="show the flight-recorder timeline of one journey "
        "(trace id or naplet id) under the dashboard",
    )
    parser.add_argument(
        "--follow",
        action="store_true",
        help="tail new journal records instead of redrawing the dashboard "
        "(combines with --journey to follow one journey)",
    )
    args = parser.parse_args(argv)

    if not args.demo:
        parser.error(
            "only --demo spaces can be reached from this process; "
            "for a real space, import rows_from_admin/render or launch a "
            "HealthProbeNaplet (repro.health.harvest_via_probe) and pipe "
            "its rows into render()"
        )

    network, admin = build_demo_space(wedge=args.wedge)
    try:
        if args.wedge:
            # Let the watchdog observe at least two cadence periods so the
            # planted naplet shows up as a finding on the very first frame.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not admin.space_findings():
                time.sleep(0.05)
        frame = 0
        if args.follow:
            # Tail mode: append-only, CI-log friendly (no screen clears).
            from repro.telemetry.journal import format_record

            watermarks: dict[str, int] = {}
            while True:
                for record in journal_tail(admin, watermarks, journey=args.journey):
                    print(format_record(record), flush=True)
                frame += 1
                if args.once or (args.frames and frame >= args.frames):
                    return 0
                time.sleep(args.interval)
        while True:
            # Force one observatory beat per frame so --once shows a
            # populated space view even before the cadence thread fires.
            for server in admin._servers.values():
                server.observatory.beat_now()
            rows = rows_from_admin(admin)
            output = render(rows, top=args.top)
            output += "\n\n" + render_space_view(admin.space_view())
            if args.journey:
                records = journal_tail(admin, {}, journey=args.journey)
                output += "\n\n" + render_journey(records, args.journey)
            if args.once:
                print(output)
                return 0
            print(_CLEAR + output, flush=True)
            frame += 1
            if args.frames and frame >= args.frames:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        network.shutdown()


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head(1)
        sys.exit(0)
