#!/usr/bin/env python
"""napletlog: query a naplet space's flight recorder.

``grep`` for mobile agents.  Takes a harvested journal — a JSON dump
written by :meth:`SpaceAdmin.harvest_journal` / the journal probe, or a
live ``--demo`` space — and filters the merged timeline by journey,
naplet, server, kind, category, or wall-clock window, rendering the
result as text lines or as a Chrome trace (``chrome://tracing``).

The ``--causal`` flag orders records by their hybrid-logical-clock
stamps instead of raw wall time: with skewed server clocks the wall
order can show a naplet landing before it departed, while the HLC order
never can (the depart's stamp rides the migration frame and advances the
destination's clock before the landing is journaled).

Run:

    python tools/napletlog.py --demo                      # merged demo timeline
    python tools/napletlog.py --demo --journey <naplet>   # one journey only
    python tools/napletlog.py --demo --dump space.json    # save for offline use
    python tools/napletlog.py space.json --kind naplet-depart --causal
    python tools/napletlog.py space.json --chrome trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterable

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402  (sys.path fixed above)
from repro.telemetry.export import journal_chrome_trace  # noqa: E402
from repro.telemetry.journal import (  # noqa: E402
    JournalRecord,
    causal_key,
    format_record,
    merge_journals,
)

_HEADER = (
    f"{'hlc (wall+logical)':<21} {'server':<8} {'category':<10} "
    f"{'kind':<26} {'naplet':<30} detail"
)


# --------------------------------------------------------------------- #
# Loading
# --------------------------------------------------------------------- #


def load_records(path: str) -> list[JournalRecord]:
    """Read a journal dump: a JSON list of record dicts (or {"records": [...]})."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict):
        data = data.get("records") or []
    return [JournalRecord.from_dict(entry) for entry in data]


def dump_records(path: str, records: Iterable[JournalRecord]) -> None:
    """Write records as a JSON dump :func:`load_records` reads back."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"records": [r.describe() for r in records]}, fh, indent=1)


# --------------------------------------------------------------------- #
# Filtering + ordering (pure, testable)
# --------------------------------------------------------------------- #


def journey_records(
    records: Iterable[JournalRecord], subject: str
) -> list[JournalRecord]:
    """Every record of the journey *subject* names: a trace id or naplet id.

    A naplet id resolves to the trace id(s) its records carry, then the
    whole trace is included — hop and landing spans recorded at servers
    under other naplets' names stay in the picture, exactly like
    :meth:`SpaceAdmin.journey` stitches spans.
    """
    records = list(records)
    trace_ids = {subject} | {
        r.trace_id
        for r in records
        if r.trace_id is not None and (r.naplet == subject or r.mentions(subject))
    }
    return [
        r
        for r in records
        if r.trace_id in trace_ids or r.naplet == subject or r.mentions(subject)
    ]


def filter_records(
    records: Iterable[JournalRecord],
    journey: str | None = None,
    naplet: str | None = None,
    server: str | None = None,
    kind: str | None = None,
    category: str | None = None,
    since: float | None = None,
    until: float | None = None,
) -> list[JournalRecord]:
    """Apply the CLI's filters; every criterion must hold (AND)."""
    out = list(records)
    if journey is not None:
        out = journey_records(out, journey)
    return [
        r
        for r in out
        if (naplet is None or r.naplet == naplet)
        and (server is None or r.server == server)
        and (kind is None or r.kind == kind)
        and (category is None or r.category == category)
        and (since is None or r.wall >= since)
        and (until is None or r.wall <= until)
    ]


def order_records(
    records: Iterable[JournalRecord], causal: bool = False
) -> list[JournalRecord]:
    """Wall-clock order by default; HLC total order under ``--causal``."""
    if causal:
        return sorted(records, key=causal_key)
    return sorted(records, key=lambda r: (r.wall, r.seq))


def render_lines(records: Iterable[JournalRecord]) -> list[str]:
    """Text rendering: a header plus one :func:`format_record` line each."""
    records = list(records)
    lines = [_HEADER]
    lines.extend(format_record(r) for r in records)
    lines.append(f"({len(records)} records)")
    return lines


# --------------------------------------------------------------------- #
# Demo space
# --------------------------------------------------------------------- #


class DemoTourist(repro.Naplet):
    """Tours the demo line, noting each stop, so the journal has a journey."""

    def on_start(self) -> None:
        visited = self.state.get("visited") or []
        visited.append(self.require_context().hostname)
        self.state.set("visited", visited)
        self.travel()


def demo_harvest() -> list[JournalRecord]:
    """A small space runs one journey; returns the merged journal."""
    from repro.itinerary import Itinerary, ResultReport, SeqPattern
    from repro.server import ServerConfig, SpaceAdmin, deploy
    from repro.simnet import VirtualNetwork, line

    network = VirtualNetwork(line(3, prefix="d"))
    servers = deploy(network, config=ServerConfig(health_cadence=0.05))
    try:
        admin = SpaceAdmin(servers)
        listener = repro.NapletListener()
        tourist = DemoTourist("demo-tourist")
        tourist.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(
                    ["d01", "d02"], post_action=ResultReport("visited")
                )
            )
        )
        servers["d00"].launch(tourist, owner="demo", listener=listener)
        listener.next_report(timeout=15)
        admin.wait_space_idle()
        return admin.harvest_journal()
    finally:
        network.shutdown()


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Query a naplet space's flight-recorder journal."
    )
    parser.add_argument(
        "dumpfile",
        nargs="?",
        help="JSON journal dump (SpaceAdmin.harvest_journal / journal probe)",
    )
    parser.add_argument(
        "--demo", action="store_true", help="run an in-process demo journey"
    )
    parser.add_argument(
        "--journey",
        metavar="ID",
        help="only records of this journey (trace id or naplet id)",
    )
    parser.add_argument("--naplet", help="only records naming this naplet id")
    parser.add_argument("--server", help="only records journaled at this server")
    parser.add_argument("--kind", help="only records of this kind")
    parser.add_argument(
        "--category",
        choices=["event", "span", "fault", "finding", "deadletter", "perf", "load"],
        help="only records of this category",
    )
    parser.add_argument(
        "--since", type=float, help="only records with wall time >= SINCE"
    )
    parser.add_argument(
        "--until", type=float, help="only records with wall time <= UNTIL"
    )
    parser.add_argument(
        "--causal",
        action="store_true",
        help="order by hybrid-logical-clock stamps instead of wall time",
    )
    parser.add_argument(
        "--limit", type=int, default=0, help="show only the last N records"
    )
    parser.add_argument(
        "--chrome",
        metavar="PATH",
        help="write the selection as a Chrome trace instead of text",
    )
    parser.add_argument(
        "--dump",
        metavar="PATH",
        help="save the (unfiltered) harvest as a JSON dump and exit",
    )
    args = parser.parse_args(argv)

    if args.demo:
        records = demo_harvest()
    elif args.dumpfile:
        records = merge_journals([load_records(args.dumpfile)])
    else:
        parser.error("give a journal dump file or --demo")

    if args.dump:
        dump_records(args.dump, records)
        print(f"wrote {len(records)} records to {args.dump}")
        return 0

    selected = order_records(
        filter_records(
            records,
            journey=args.journey,
            naplet=args.naplet,
            server=args.server,
            kind=args.kind,
            category=args.category,
            since=args.since,
            until=args.until,
        ),
        causal=args.causal,
    )
    if args.limit:
        selected = selected[-args.limit :]

    if args.chrome:
        trace = journal_chrome_trace(selected)
        with open(args.chrome, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=1)
        print(
            f"wrote {len(trace['traceEvents'])} trace events "
            f"({len(selected)} records) to {args.chrome}"
        )
        return 0

    print("\n".join(render_lines(selected)))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head(1)
        sys.exit(0)
