#!/usr/bin/env python
"""Repeat a pytest selection N times and report any flakes.

The chaos suite (tests/faults/) is built on seeded fault plans and
injectable clocks, so it must pass *every* run, not just most of them.
This runner executes the selection repeatedly in fresh interpreter
processes (no cross-run state bleed) and fails loudly on the first
non-deterministic result:

    python tools/repeat_tests.py tests/faults -n 20
    python tools/repeat_tests.py tests/faults -n 20 --fail-fast
    python tools/repeat_tests.py tests --marker chaos -n 10
    python tools/repeat_tests.py tests/property/test_retry_props.py -n 5 -- -k backoff

Everything after ``--`` is passed to pytest verbatim.  Exit status is 0
only when every run passes.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_once(selection: list[str], pytest_args: list[str]) -> tuple[int, float, str]:
    """One fresh-process pytest run; returns (exit_code, seconds, tail)."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    started = time.monotonic()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", *selection, *pytest_args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    elapsed = time.monotonic() - started
    tail = "\n".join((proc.stdout + proc.stderr).strip().splitlines()[-25:])
    return proc.returncode, elapsed, tail


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if "--" in argv:
        split = argv.index("--")
        argv, pytest_args = argv[:split], argv[split + 1 :]
    else:
        pytest_args = []

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "selection", nargs="*", default=["tests/faults"],
        help="test files/dirs to repeat (default: tests/faults)",
    )
    parser.add_argument("-n", "--runs", type=int, default=20,
                        help="number of repetitions (default: 20)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop at the first failing run")
    parser.add_argument("--marker", "-m", default=None,
                        help="only run tests matching this pytest marker "
                             "expression (e.g. 'chaos', 'health and not slow')")
    args = parser.parse_args(argv)
    if args.marker:
        pytest_args = ["-m", args.marker, *pytest_args]

    failures = 0
    for run in range(1, args.runs + 1):
        code, elapsed, tail = run_once(args.selection, pytest_args)
        status = "ok" if code == 0 else f"FAIL (exit {code})"
        print(f"run {run:>3}/{args.runs}: {status}  [{elapsed:.2f}s]", flush=True)
        if code != 0:
            failures += 1
            print(tail, flush=True)
            if args.fail_fast:
                break

    if failures:
        print(f"\nFLAKY: {failures}/{args.runs} runs failed", flush=True)
        return 1
    print(f"\ndeterministic: {args.runs}/{args.runs} runs passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
