"""E8: lazy code loading — payload sizes and fetch costs (§2.1).

Compares eager shipping (code travels with every transfer) against the
paper's lazy model (codebase fetched on demand, once per server): transfer
payload bytes, fetch counts, and total wire bytes for a revisiting tour.
"""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import ServerConfig, deploy
from repro.simnet import VirtualNetwork, line
from tests.integration.shipped_agent import RoamingProbe

TOUR = ["srv01", "srv02", "srv03", "srv01", "srv02", "srv03"]


def _run_tour(eager: bool):
    network = VirtualNetwork(line(4, prefix="srv"))
    config = ServerConfig(eager_code=eager, codebase_host="srv00")
    servers = deploy(network, config=config)
    codebase = network.code_registry.create("codebase://tests/probe")
    codebase.add_class(RoamingProbe)
    listener = repro.NapletListener()
    agent = RoamingProbe("probe")
    agent.set_itinerary(
        Itinerary(SeqPattern.of_servers(TOUR, post_action=ResultReport("hops")))
    )
    servers["srv00"].launch(agent, owner="bench", listener=listener)
    assert listener.next_report(timeout=20).payload == TOUR
    transfer = network.meter.kind_stats("naplet-transfer")
    fetch = network.meter.kind_stats("codebase-fetch")
    fetch_events = sum(s.events.count("codebase-fetch") for s in servers.values())
    total = network.meter.total_bytes
    network.shutdown()
    return {
        "transfer_bytes": transfer.bytes,
        "transfers": transfer.frames,
        "fetch_bytes": fetch.bytes,
        "fetches": fetch_events,
        "total_bytes": total,
        "codebase_bytes": codebase.total_bytes,
    }


class TestCodeShipping:
    def test_bench_lazy_vs_eager(self, benchmark, table):
        lazy = _run_tour(eager=False)
        eager = _run_tour(eager=True)
        table(
            f"E8 — 6-stop tour with revisits ({len(set(TOUR))} distinct servers)",
            ["metric", "lazy", "eager"],
            [
                ["naplet-transfer bytes", lazy["transfer_bytes"], eager["transfer_bytes"]],
                ["codebase fetches", lazy["fetches"], eager["fetches"]],
                ["codebase fetch bytes", lazy["fetch_bytes"], eager["fetch_bytes"]],
                ["total wire bytes", lazy["total_bytes"], eager["total_bytes"]],
                ["bundle size (source)", lazy["codebase_bytes"], eager["codebase_bytes"]],
            ],
        )
        # Shapes:
        # - lazy transfers are smaller (state only, no source attached);
        assert lazy["transfer_bytes"] < eager["transfer_bytes"]
        # - lazy fetches exactly once per distinct server; eager never;
        assert lazy["fetches"] == len(set(TOUR))
        assert eager["fetches"] == 0
        # - with revisits, lazy wins on total bytes: eager pays the bundle
        #   on every one of the 6 transfers, lazy only 3 fetches.
        assert lazy["total_bytes"] < eager["total_bytes"]

        benchmark.pedantic(_run_tour, args=(False,), rounds=3, iterations=1)
        benchmark.extra_info.update({"lazy": lazy, "eager": eager})

    def test_bench_first_landing_fetch_cost(self, benchmark, table):
        """Land-to-start delay component: deserialization incl. a cache miss."""
        network = VirtualNetwork(line(2, prefix="srv"))
        servers = deploy(network, config=ServerConfig(codebase_host="srv00"))
        try:
            codebase = network.code_registry.create("codebase://tests/probe")
            codebase.add_class(RoamingProbe)
            agent = RoamingProbe("probe")
            servers["srv00"].authority.register_owner("bench")
            from repro.core.naplet_id import NapletID

            nid = NapletID.create("bench", "srv00")
            agent._assign_identity(
                nid, servers["srv00"].authority.issue(nid, agent.codebase)
            )
            agent.set_itinerary(Itinerary(SeqPattern.of_servers(["srv01"])))
            payload = servers["srv00"].serializer.dumps(agent)

            from repro.codeshipping.codebase import CodeCache

            def cold_load():
                cache = CodeCache(network.code_registry)
                return servers["srv01"].serializer.loads(payload, cache)

            restored = benchmark(cold_load)
            assert type(restored).__name__ == "RoamingProbe"
            benchmark.extra_info["payload_bytes"] = len(payload)
        finally:
            network.shutdown()
