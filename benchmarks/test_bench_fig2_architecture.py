"""E2 (Figure 2): the NapletServer architecture, exercised end to end.

One full migration drives every component in the figure: NapletManager
(launch), NapletSecurityManager (LAUNCH + LANDING checks), Navigator
(handshake + transfer), NapletMonitor (NapletThread), Messenger (report
home), Locator/directory (ARRIVAL/DEPART events).  The benchmark times the
whole launch→land→report round trip and the heavy stages separately.
"""

from __future__ import annotations

import pickle

import pytest

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import deploy
from repro.simnet import VirtualNetwork, line
from repro.transport.base import Frame, FrameKind
from tests.conftest import CollectorNaplet


@pytest.fixture
def space2():
    network = VirtualNetwork(line(2, prefix="h"))
    servers = deploy(network)
    yield network, servers
    network.shutdown()


def _one_round_trip(servers):
    listener = repro.NapletListener()
    agent = CollectorNaplet("fig2")
    agent.set_itinerary(
        Itinerary(SeqPattern.of_servers(["h01"], post_action=ResultReport("visited")))
    )
    servers["h00"].launch(agent, owner="bench", listener=listener)
    report = listener.next_report(timeout=10)
    assert report.payload == ["h01"]
    servers["h01"].wait_idle(5)
    return agent


class TestFigure2:
    def test_bench_full_migration_round_trip(self, benchmark, space2, table):
        network, servers = space2
        benchmark.pedantic(_one_round_trip, args=(servers,), rounds=20, iterations=1)
        rows = [
            ["launch events (h00)", servers["h00"].events.count("naplet-launch")],
            ["landings granted (h01)", servers["h01"].events.count("landing-granted")],
            ["arrivals (h01)", servers["h01"].events.count("naplet-arrive")],
            ["naplets admitted (h01)", servers["h01"].monitor.admitted],
            ["bytes on the wire", network.meter.total_bytes],
        ]
        table("Fig. 2 — one migration through all seven components (x20)",
              ["stage", "count"], rows)
        assert servers["h01"].monitor.admitted >= 20

    def test_bench_serialization_stage(self, benchmark, space2):
        _network, servers = space2
        agent = CollectorNaplet("payload")
        agent.set_itinerary(Itinerary(SeqPattern.of_servers(["h01"])))
        servers["h00"].authority.register_owner("bench")
        from repro.core.naplet_id import NapletID

        nid = NapletID.create("bench", "h00")
        agent._assign_identity(nid, servers["h00"].authority.issue(nid, agent.codebase))
        serializer = servers["h00"].serializer
        payload = benchmark(serializer.dumps, agent)
        benchmark.extra_info["payload_bytes"] = len(payload)
        assert len(payload) > 0

    def test_bench_landing_permission_stage(self, benchmark, space2):
        _network, servers = space2
        from repro.core.naplet_id import NapletID

        servers["h00"].authority.register_owner("bench")
        nid = NapletID.create("bench", "h00")
        credential = servers["h00"].authority.issue(nid, "local")
        frame = Frame(
            kind=FrameKind.LANDING_REQUEST,
            source=servers["h00"].urn,
            dest=servers["h01"].urn,
            payload=pickle.dumps(credential),
        )
        reply = benchmark(servers["h00"].transport.request, frame)
        assert pickle.loads(reply)["granted"] is True

    def test_bench_monitor_admission_stage(self, benchmark, space2):
        """Thread creation + retirement for one naplet visit."""
        import threading

        _network, servers = space2
        monitor = servers["h01"].monitor
        from tests.core.test_naplet import _identified

        def admit_once():
            agent = _identified()
            done = threading.Event()
            monitor.admit(agent, lambda: None, lambda n, o, e: done.set())
            assert done.wait(5)

        benchmark.pedantic(admit_once, rounds=50, iterations=1)
