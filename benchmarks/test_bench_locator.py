"""E7: naplet location — directory modes, cache effect, trace fallback (§4.1).

Compares the cost of locating a travelling naplet under CENTRAL, HOME and
NONE directory modes, and quantifies the locator cache: repeated inquiries
hit the cache instead of re-querying the directory (the paper: caching
"reduce[s] the response time of subsequent naplet location requests").
"""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import Itinerary, SeqPattern
from repro.server import DirectoryMode, ServerConfig, deploy
from repro.simnet import VirtualNetwork, line
from repro.util.concurrency import wait_until
from tests.conftest import StallNaplet


def _resting_space(mode: DirectoryMode):
    config = ServerConfig(directory_mode=mode)
    if mode is DirectoryMode.CENTRAL:
        config.directory_urn = "naplet://d00"
    network = VirtualNetwork(line(4, prefix="d"))
    servers = deploy(network, config=config)
    agent = StallNaplet("target", spin_seconds=30.0)
    agent.set_itinerary(Itinerary(SeqPattern.of_servers(["d02"])))
    nid = servers["d00"].launch(agent, owner="bench")
    assert wait_until(lambda: servers["d02"].manager.is_resident(nid), timeout=10)
    return network, servers, nid


class TestLocationModes:
    def test_bench_locate_across_modes(self, benchmark, table):
        rows = []
        for mode in (DirectoryMode.CENTRAL, DirectoryMode.HOME, DirectoryMode.NONE):
            network, servers, nid = _resting_space(mode)
            try:
                querier = servers["d03"]
                network.meter.reset()
                located = querier.locator.locate(nid, use_cache=False)
                lookup_bytes = network.meter.total_bytes
                if mode is DirectoryMode.NONE:
                    assert located is None
                    # directory-less: trace forwarding from the home server
                    # (which the naplet departed from) still reaches it
                    receipt = querier.messenger.post(
                        None, nid, "probe", dest_urn="naplet://d00"
                    )
                    assert receipt.status in ("delivered", "forwarded")
                    rows.append([mode.value, "untraceable", lookup_bytes,
                                 f"chase: {receipt.hops} hops"])
                else:
                    assert located == "naplet://d02"
                    rows.append([mode.value, located, lookup_bytes, "-"])
                # directory-less spaces terminate via trace chase from home
                servers["d00"].messenger.send_control(
                    nid, "terminate", dest_urn="naplet://d00"
                )
            finally:
                network.shutdown()
        table(
            "E7a — locating a naplet under each directory mode",
            ["mode", "answer", "lookup bytes", "fallback"],
            rows,
        )
        # central + home answer; NONE relies on forwarding
        assert rows[0][1] == rows[1][1] == "naplet://d02"

        network, servers, nid = _resting_space(DirectoryMode.HOME)
        try:
            locator = servers["d03"].locator
            locator.locate(nid)  # warm
            benchmark(lambda: locator.locate(nid))
            servers["d00"].terminate_naplet(nid)
        finally:
            network.shutdown()

    def test_bench_cache_effect(self, benchmark, table):
        network, servers, nid = _resting_space(DirectoryMode.HOME)
        try:
            locator = servers["d03"].locator
            # cold lookup
            network.meter.reset()
            locator.locate(nid, use_cache=False)
            cold_bytes = network.meter.total_bytes
            # warm lookups
            network.meter.reset()
            for _ in range(100):
                locator.locate(nid)
            warm_bytes = network.meter.total_bytes
            table(
                "E7b — locator cache effect (100 repeat inquiries)",
                ["metric", "value"],
                [
                    ["cold lookup bytes", cold_bytes],
                    ["100 warm lookups bytes", warm_bytes],
                    ["cache hits", locator.cache_hits],
                    ["cache misses", locator.cache_misses],
                ],
            )
            assert warm_bytes == 0  # all served from cache
            assert locator.cache_hits >= 100
            benchmark(lambda: locator.locate(nid))
            servers["d00"].terminate_naplet(nid)
        finally:
            network.shutdown()
