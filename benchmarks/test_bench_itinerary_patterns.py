"""E5: itinerary patterns — seq vs par completion time (§3).

Each visit performs a fixed amount of simulated on-site work (a sleepy
privileged check).  A Seq tour costs ~n*work; a Par fan-out costs ~work
(plus fork overhead).  The harness prints completion times and clone
counts for n in {2, 4, 8}.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro.itinerary import Itinerary, ParPattern, ResultReport, SeqPattern
from repro.server import deploy
from repro.simnet import VirtualNetwork, star

WORK_SECONDS = 0.05


class SleepyWorker(repro.Naplet):
    """Does WORK_SECONDS of 'measurement' at each stop."""

    def on_start(self) -> None:
        deadline = time.monotonic() + WORK_SECONDS
        while time.monotonic() < deadline:
            self.checkpoint()
            time.sleep(0.005)
        visited = (self.state.get("visited") or []) + [self.require_context().hostname]
        self.state.set("visited", visited)
        self.travel()


def _run(mode: str, n: int) -> tuple[float, int]:
    network = VirtualNetwork(star(n))
    servers = deploy(network)
    devices = sorted(h for h in servers if h != "station")
    listener = repro.NapletListener()
    agent = SleepyWorker(f"worker-{mode}")
    if mode == "seq":
        agent.set_itinerary(
            Itinerary(SeqPattern.of_servers(devices, post_action=ResultReport("visited")))
        )
        expected = 1
    else:
        agent.set_itinerary(
            Itinerary(ParPattern.of_servers(devices, per_branch_action=ResultReport("visited")))
        )
        expected = n
    start = time.perf_counter()
    servers["station"].launch(agent, owner="bench", listener=listener)
    listener.reports(expected, timeout=60)
    elapsed = time.perf_counter() - start
    clones = sum(s.events.count("clone-spawned") for s in servers.values())
    network.shutdown()
    return elapsed, clones


class TestItineraryPatterns:
    def test_bench_seq_vs_par(self, benchmark, table):
        rows = []
        for n in (2, 4, 8):
            seq_time, seq_clones = _run("seq", n)
            par_time, par_clones = _run("par", n)
            rows.append(
                [n, f"{seq_time * 1000:.0f}", f"{par_time * 1000:.0f}",
                 seq_clones, par_clones, f"{seq_time / par_time:.1f}x"]
            )
        table(
            f"E5 — completion time, {WORK_SECONDS * 1000:.0f} ms work per visit",
            ["n servers", "seq (ms)", "par (ms)", "seq clones", "par clones", "speedup"],
            rows,
        )
        # Shape: par total stays near one visit's work; seq scales with n.
        n = 8
        seq_time, _ = _run("seq", n)
        par_time, clones = _run("par", n)
        assert clones == n - 1
        assert seq_time > par_time * 2
        assert seq_time >= n * WORK_SECONDS * 0.8
        benchmark.pedantic(_run, args=("par", 4), rounds=3, iterations=1)
