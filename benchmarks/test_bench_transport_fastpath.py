"""E8: transport fast path — pooled connections + single-round-trip migration.

Compares the legacy wire protocol (one TCP dial per frame, two-phase
migration) against the pooled fast path (keepalive multiplexed connections,
landing check + transfer ack + directory registration folded into one
exchange) over real localhost sockets.

The space is two servers with the CENTRAL directory hosted at the
destination, so the per-hop wire cost is fully visible in the transport's
frame counters:

==========  =================================================  ==========
protocol    request/reply exchanges per hop                    round trips
==========  =================================================  ==========
two-phase   LANDING_REQUEST + DIRECTORY_EVENT(depart)          3
            + NAPLET_TRANSFER
fast path   NAPLET_TRANSFER (credential piggybacked,           1
            combined MIGRATION registered by the destination)
==========  =================================================  ==========

Assertions ride on the frame/connection counters — not timing — so the
benchmark is stable; latencies and throughput are recorded in
``BENCH_transport.json`` for the curious.
"""

from __future__ import annotations

import dataclasses
import os
import statistics
import time
from pathlib import Path

import repro
from repro.codeshipping.codebase import CodeBaseRegistry
from repro.perf.bench import write_bench
from repro.core.credential import SigningAuthority
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import DirectoryMode, NapletServer, ServerConfig
from repro.transport.tcp import TcpTransport
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet, StallNaplet

HOPS = 12
MESSAGES = 150
_HOP_KINDS = ("landing-request", "naplet-transfer", "directory-event")


def _space(pooled: bool, fast_path: bool):
    transport = TcpTransport(pooled=pooled)
    authority = SigningAuthority()
    registry = CodeBaseRegistry()
    base = ServerConfig(
        migration_fast_path=fast_path,
        directory_mode=DirectoryMode.CENTRAL,
        directory_urn="naplet://b01",
    )
    servers = {
        name: NapletServer(
            hostname=name,
            transport=transport,
            authority=authority,
            code_registry=registry,
            config=dataclasses.replace(base),
        )
        for name in ("b00", "b01")
    }
    return transport, servers


def _shutdown(transport, servers) -> None:
    for server in servers.values():
        server.shutdown()
    transport.close()


def _hop_frames(transport) -> int:
    counter = transport.metrics.counter("wire_frames_total")
    return int(sum(counter.value(kind=kind) for kind in _HOP_KINDS))


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _measure(pooled: bool, fast_path: bool) -> dict:
    transport, servers = _space(pooled, fast_path)
    try:
        latencies = []
        for i in range(HOPS):
            agent = CollectorNaplet(f"hop-{i}")
            agent.set_itinerary(
                Itinerary(SeqPattern.of_servers(["b01"], post_action=ResultReport("visited")))
            )
            listener = repro.NapletListener()
            started = time.perf_counter()
            servers["b00"].launch(agent, owner="bench", listener=listener)
            latencies.append(time.perf_counter() - started)
            assert listener.next_report(timeout=20).payload == ["b01"]

        hop_frames = _hop_frames(transport)
        hop_connections = transport.connections_opened()

        # Throughput leg: post MESSAGES to a parked resident at b01.
        target = StallNaplet("rx", spin_seconds=60.0)
        target.set_itinerary(Itinerary(SeqPattern.of_servers(["b01"])))
        nid = servers["b00"].launch(target, owner="bench")
        assert wait_until(lambda: servers["b01"].manager.is_resident(nid), timeout=10)
        started = time.perf_counter()
        for i in range(MESSAGES):
            receipt = servers["b00"].messenger.post(None, nid, {"i": i})
            assert receipt.status == "delivered"
        elapsed = time.perf_counter() - started
        servers["b00"].terminate_naplet(nid)

        return {
            "pooled": pooled,
            "migration_fast_path": fast_path,
            "hops": HOPS,
            "rt_frames_per_hop": hop_frames / HOPS,
            "connections_opened_for_hops": hop_connections,
            "connections_per_hop": hop_connections / HOPS,
            "hop_latency_p50_ms": _percentile(latencies, 0.50) * 1e3,
            "hop_latency_p95_ms": _percentile(latencies, 0.95) * 1e3,
            "hop_latency_mean_ms": statistics.fmean(latencies) * 1e3,
            "messages": MESSAGES,
            "messages_per_sec": MESSAGES / elapsed,
        }
    finally:
        _shutdown(transport, servers)


class TestTransportFastPath:
    def test_bench_fastpath_vs_baseline(self, table):
        baseline = _measure(pooled=False, fast_path=False)
        fastpath = _measure(pooled=True, fast_path=True)

        # The wins the counters must prove, independent of machine speed:
        # the fast path is a single request/reply exchange per hop where
        # the two-phase baseline needs at least three ...
        assert baseline["rt_frames_per_hop"] >= 3.0
        assert fastpath["rt_frames_per_hop"] == 1.0
        # ... and pooling opens strictly fewer TCP connections per hop
        # than dial-per-frame.
        assert fastpath["connections_opened_for_hops"] < baseline["connections_opened_for_hops"]
        assert fastpath["connections_per_hop"] < 1.0

        rows = [
            [
                label,
                f"{run['rt_frames_per_hop']:.1f}",
                run["connections_opened_for_hops"],
                f"{run['hop_latency_p50_ms']:.2f}",
                f"{run['hop_latency_p95_ms']:.2f}",
                f"{run['messages_per_sec']:.0f}",
            ]
            for label, run in (("two-phase/dial", baseline), ("fast/pooled", fastpath))
        ]
        table(
            "E8: transport fast path (12 hops, 150 messages, localhost TCP)",
            ["protocol", "RT/hop", "conns", "p50 ms", "p95 ms", "msg/s"],
            rows,
        )

        # Schema-v2 snapshot: same metric keys as always, plus git SHA /
        # timestamp / machine fingerprint so `napletperf diff` can attribute
        # deltas to code vs hardware.  NAPLET_BENCH_HISTORY (set by
        # `napletperf run --history`) appends a timestamped copy for trends.
        path = Path(__file__).resolve().parents[1] / "BENCH_transport.json"
        history = os.environ.get("NAPLET_BENCH_HISTORY")
        write_bench(
            path,
            "transport fast path vs two-phase baseline",
            {
                "baseline": baseline,
                "fastpath": fastpath,
                "speedup_messages_per_sec": fastpath["messages_per_sec"]
                / baseline["messages_per_sec"],
            },
            history_dir=history,
        )
