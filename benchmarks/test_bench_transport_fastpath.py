"""E8: transport fast path — pooled connections + single-round-trip migration.

Compares the legacy wire protocol (one TCP dial per frame, two-phase
migration) against the pooled fast path (keepalive multiplexed connections,
landing check + transfer ack + directory registration folded into one
exchange) over real localhost sockets.

The space is two servers with the CENTRAL directory hosted at the
destination, so the per-hop wire cost is fully visible in the transport's
frame counters:

==========  =================================================  ==========
protocol    request/reply exchanges per hop                    round trips
==========  =================================================  ==========
two-phase   LANDING_REQUEST + DIRECTORY_EVENT(depart)          3
            + NAPLET_TRANSFER
fast path   NAPLET_TRANSFER (credential piggybacked,           1
            combined MIGRATION registered by the destination)
==========  =================================================  ==========

Assertions ride on the frame/connection counters — not timing — so the
benchmark is stable; latencies and throughput are recorded in
``BENCH_transport.json`` for the curious.

The delta-shipping leg ping-pongs a courier with ~2 MB of immutable cargo
and a tiny mutating visit log between the two servers: with delta
shipping off, every hop re-pickles and re-ships the full image (the PR 6
fast path); with it on, repeat hops ship only the changed fields.  The
wire counters prove the byte win (``bytes_per_hop`` ≤ 40% of full) —
a structural metric CI gates on — and ``hops_per_sec`` records the
throughput win.
"""

from __future__ import annotations

import dataclasses
import os
import statistics
import time
from pathlib import Path

import repro
from repro.codeshipping.codebase import CodeBaseRegistry
from repro.perf.bench import write_bench
from repro.core.credential import SigningAuthority
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import DirectoryMode, NapletServer, ServerConfig
from repro.transport.tcp import TcpTransport
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet, StallNaplet

HOPS = 12
MESSAGES = 150
_HOP_KINDS = ("landing-request", "naplet-transfer", "directory-event")

# Delta leg: ping-pong itinerary length and the immutable cargo size.
DELTA_HOPS = 12
CARGO_BYTES = 2 * 1024 * 1024


class CourierNaplet(CollectorNaplet):
    """Collector with heavy immutable cargo: the delta-shipping workload.

    The cargo never changes after construction; only the small visit log
    mutates per hop — exactly the shape delta shipping targets.
    """

    def __init__(self, name: str, cargo: bytes, **kwargs) -> None:
        super().__init__(name, **kwargs)
        self.cargo = cargo


def _space(pooled: bool, fast_path: bool, delta: bool = True):
    transport = TcpTransport(pooled=pooled)
    authority = SigningAuthority()
    registry = CodeBaseRegistry()
    base = ServerConfig(
        migration_fast_path=fast_path,
        directory_mode=DirectoryMode.CENTRAL,
        directory_urn="naplet://b01",
        delta_shipping=delta,
    )
    servers = {
        name: NapletServer(
            hostname=name,
            transport=transport,
            authority=authority,
            code_registry=registry,
            config=dataclasses.replace(base),
        )
        for name in ("b00", "b01")
    }
    return transport, servers


def _shutdown(transport, servers) -> None:
    for server in servers.values():
        server.shutdown()
    transport.close()


def _hop_frames(transport) -> int:
    counter = transport.metrics.counter("wire_frames_total")
    return int(sum(counter.value(kind=kind) for kind in _HOP_KINDS))


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _measure(pooled: bool, fast_path: bool) -> dict:
    transport, servers = _space(pooled, fast_path)
    try:
        latencies = []
        for i in range(HOPS):
            agent = CollectorNaplet(f"hop-{i}")
            agent.set_itinerary(
                Itinerary(SeqPattern.of_servers(["b01"], post_action=ResultReport("visited")))
            )
            listener = repro.NapletListener()
            started = time.perf_counter()
            servers["b00"].launch(agent, owner="bench", listener=listener)
            latencies.append(time.perf_counter() - started)
            assert listener.next_report(timeout=20).payload == ["b01"]

        hop_frames = _hop_frames(transport)
        hop_connections = transport.connections_opened()

        # Throughput leg: post MESSAGES to a parked resident at b01.
        target = StallNaplet("rx", spin_seconds=60.0)
        target.set_itinerary(Itinerary(SeqPattern.of_servers(["b01"])))
        nid = servers["b00"].launch(target, owner="bench")
        assert wait_until(lambda: servers["b01"].manager.is_resident(nid), timeout=10)
        started = time.perf_counter()
        for i in range(MESSAGES):
            receipt = servers["b00"].messenger.post(None, nid, {"i": i})
            assert receipt.status == "delivered"
        elapsed = time.perf_counter() - started
        servers["b00"].terminate_naplet(nid)

        return {
            "pooled": pooled,
            "migration_fast_path": fast_path,
            "hops": HOPS,
            "rt_frames_per_hop": hop_frames / HOPS,
            "connections_opened_for_hops": hop_connections,
            "connections_per_hop": hop_connections / HOPS,
            "hop_latency_p50_ms": _percentile(latencies, 0.50) * 1e3,
            "hop_latency_p95_ms": _percentile(latencies, 0.95) * 1e3,
            "hop_latency_mean_ms": statistics.fmean(latencies) * 1e3,
            "messages": MESSAGES,
            "messages_per_sec": MESSAGES / elapsed,
        }
    finally:
        _shutdown(transport, servers)


def _measure_delta(delta: bool) -> dict:
    """One ping-pong journey of the heavy courier, delta on or off."""
    transport, servers = _space(pooled=True, fast_path=True, delta=delta)
    try:
        route = ["b01", "b00"] * (DELTA_HOPS // 2)
        agent = CourierNaplet("courier", cargo=b"\xc3" * CARGO_BYTES)
        agent.set_itinerary(
            Itinerary(SeqPattern.of_servers(route, post_action=ResultReport("visited")))
        )
        listener = repro.NapletListener()
        started = time.perf_counter()
        servers["b00"].launch(agent, owner="bench", listener=listener)
        report = listener.next_report(timeout=60)
        elapsed = time.perf_counter() - started
        assert report.payload == route

        wire = transport.metrics.counter("wire_bytes_total")
        transfer_bytes = int(wire.value(kind="naplet-transfer"))
        delta_hops = int(
            sum(s.telemetry.delta_hops.total() for s in servers.values())
        )
        saved_bytes = int(
            sum(s.telemetry.delta_saved_bytes.total() for s in servers.values())
        )
        return {
            "delta_shipping": delta,
            "hops": DELTA_HOPS,
            "cargo_bytes": CARGO_BYTES,
            "bytes_per_hop": transfer_bytes / DELTA_HOPS,
            "hops_per_sec": DELTA_HOPS / elapsed,
            "delta_hops": delta_hops,
            "delta_saved_bytes": saved_bytes,
        }
    finally:
        _shutdown(transport, servers)


class TestTransportFastPath:
    def test_bench_fastpath_vs_baseline(self, table):
        baseline = _measure(pooled=False, fast_path=False)
        fastpath = _measure(pooled=True, fast_path=True)

        # The wins the counters must prove, independent of machine speed:
        # the fast path is a single request/reply exchange per hop where
        # the two-phase baseline needs at least three ...
        assert baseline["rt_frames_per_hop"] >= 3.0
        assert fastpath["rt_frames_per_hop"] == 1.0
        # ... and pooling opens strictly fewer TCP connections per hop
        # than dial-per-frame.
        assert fastpath["connections_opened_for_hops"] < baseline["connections_opened_for_hops"]
        assert fastpath["connections_per_hop"] < 1.0

        rows = [
            [
                label,
                f"{run['rt_frames_per_hop']:.1f}",
                run["connections_opened_for_hops"],
                f"{run['hop_latency_p50_ms']:.2f}",
                f"{run['hop_latency_p95_ms']:.2f}",
                f"{run['messages_per_sec']:.0f}",
            ]
            for label, run in (("two-phase/dial", baseline), ("fast/pooled", fastpath))
        ]
        table(
            "E8: transport fast path (12 hops, 150 messages, localhost TCP)",
            ["protocol", "RT/hop", "conns", "p50 ms", "p95 ms", "msg/s"],
            rows,
        )

        # Delta-shipping leg: the same fast path, shipping full images vs
        # deltas for a 12-hop ping-pong with ~2 MB of unchanging cargo.
        full = _measure_delta(delta=False)
        delta = _measure_delta(delta=True)

        # Every repeat hop went delta (the first hop is always full) ...
        assert delta["delta_hops"] == DELTA_HOPS - 1
        assert full["delta_hops"] == 0
        # ... the wire carried well under the 40% byte budget per hop ...
        assert delta["bytes_per_hop"] <= 0.4 * full["bytes_per_hop"]
        # ... and not re-pickling/re-shipping the cargo at least doubles
        # hop throughput (in practice far more; 2x is the floor the
        # acceptance criteria gate on).
        assert delta["hops_per_sec"] >= 2.0 * full["hops_per_sec"]

        table(
            "E8b: delta state shipping (12-hop ping-pong, 2 MiB cargo)",
            ["shipping", "bytes/hop", "hops/s", "delta hops", "saved B"],
            [
                [
                    "full image" if not run["delta_shipping"] else "delta",
                    f"{run['bytes_per_hop']:.0f}",
                    f"{run['hops_per_sec']:.1f}",
                    run["delta_hops"],
                    run["delta_saved_bytes"],
                ]
                for run in (full, delta)
            ],
        )

        # Schema-v2 snapshot: same metric keys as always, plus git SHA /
        # timestamp / machine fingerprint so `napletperf diff` can attribute
        # deltas to code vs hardware.  NAPLET_BENCH_HISTORY (set by
        # `napletperf run --history`) appends a timestamped copy for trends.
        path = Path(__file__).resolve().parents[1] / "BENCH_transport.json"
        history = os.environ.get("NAPLET_BENCH_HISTORY")
        write_bench(
            path,
            "transport fast path vs two-phase baseline",
            {
                "baseline": baseline,
                "fastpath": fastpath,
                "speedup_messages_per_sec": fastpath["messages_per_sec"]
                / baseline["messages_per_sec"],
                "delta_full": full,
                "delta_on": delta,
                "speedup_hops_per_sec": delta["hops_per_sec"]
                / full["hops_per_sec"],
                "delta_bytes_fraction": delta["bytes_per_hop"]
                / full["bytes_per_hop"],
            },
            history_dir=history,
        )
