"""Shared helpers for the experiment benchmarks.

Each benchmark module reproduces one experiment from DESIGN.md §4 (the
per-experiment index).  Benchmarks print the table/series rows the paper's
evaluation would show (run with ``-s`` to see them) and attach the same
numbers as ``extra_info`` so ``--benchmark-json`` output carries them too.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(config, items):
    """Every test collected from benchmarks/ carries the ``bench`` marker.

    Tier-1 runs (``pytest -x -q``) stay on ``testpaths = ["tests"]`` and
    never collect these; the marker lets explicit benchmark invocations be
    filtered too (``pytest benchmarks -m "not bench"`` deselects them all).
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


def print_table(title: str, header: list[str], rows: list[list[object]]) -> None:
    """Render one experiment table to stdout."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


@pytest.fixture
def table():
    return print_table
