"""E12: load-aware Alt navigation vs static declaration order.

A three-server mesh with a pinned busy mirror: ``b01`` holds a pack of
parked resident naplets and sits behind congested (20 ms) links, while
``b02`` idles one fast (1 ms) hop away.  Journeys expand
``alt(b01, b02)`` — the paper's failover idiom — declared busy-first, so
static order always burns the congested mirror and load-aware order
(DESIGN.md §6.8) reads the heartbeat digests and goes idle-first.

Structure carries the assertions (where each journey landed, the reroute
counter, zero extra dials for the heartbeat plane); journeys/sec and
per-hop latency land in ``BENCH_loadaware.json`` for the CI structural
gate and the curious.

The overhead leg is E11-shaped: the same ping-pong journey with the
observatory beating at a hot cadence vs disabled entirely must cost
under 5% (plus scheduler slack), and the heartbeats must not have opened
a single connection of their own.
"""

from __future__ import annotations

import dataclasses
import os
import statistics
import time
from pathlib import Path

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern, alt, seq, singleton
from repro.perf.bench import write_bench
from repro.server import ServerConfig, deploy
from repro.simnet import VirtualNetwork, full_mesh
from repro.transport.base import Frame, FrameKind
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet, StallNaplet

JOURNEYS = 10
PINNED = 5           # parked residents making b01 "busy"
SLOW_S = 0.020       # one-way latency of every link touching b01
FAST_S = 0.001       # the b00 <-> b02 link
PING_PONG = 10       # overhead-leg hops


def _mirror_pattern():
    return seq(
        alt(
            singleton("b01", post_action=ResultReport("visited")),
            singleton("b02", post_action=ResultReport("visited")),
        )
    )


def _space(load_aware: bool, observatory: bool = True, cadence: float = 60.0):
    graph = full_mesh(3, prefix="b")
    # Congest every path into the busy mirror so the latency model cannot
    # route around it; the idle mirror stays one fast hop away.
    for a, b in graph.edges:
        graph[a][b]["latency"] = SLOW_S if "b01" in (a, b) else FAST_S
        graph[a][b]["bandwidth"] = 0.0
    network = VirtualNetwork(graph, sleep_scale=1.0)
    servers = deploy(
        network,
        config=ServerConfig(
            load_aware_navigation=load_aware,
            observatory_enabled=observatory,
            load_cadence=cadence,
            load_stale_after=30.0,
        ),
    )
    return network, servers


def _warm_links(servers) -> None:
    for a in servers.values():
        for b in servers.values():
            if a is not b:
                a.transport.request(
                    Frame(kind=FrameKind.PING, source=a.urn, dest=b.urn)
                )


def _pin_busy(servers) -> list:
    """Park PINNED stalled residents at b01: the seeded load skew."""
    nids = []
    for i in range(PINNED):
        parked = StallNaplet(f"parked-{i}", spin_seconds=120.0)
        parked.set_itinerary(Itinerary(SeqPattern.of_servers(["b01"])))
        nids.append(servers["b00"].launch(parked, owner="bench"))
    assert wait_until(
        lambda: servers["b01"].manager.resident_count >= PINNED, timeout=20
    )
    return nids


def _dials(network) -> int:
    """Directed host-to-host links the transport has opened so far.

    Self-delivery (a report landing at its own home) is not a dial, so
    (h, h) pairs are excluded — the observatory's no-dial guarantee is
    about real peer connections.
    """
    transport = network.transport
    with transport._links_lock:
        return sum(1 for a, b in transport._links_opened if a != b)


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))]


def _measure(load_aware: bool) -> dict:
    network, servers = _space(load_aware)
    try:
        _warm_links(servers)
        nids = _pin_busy(servers)
        dials_before = _dials(network)
        for server in servers.values():
            server.observatory.beat_now()
        extra_dials = _dials(network) - dials_before

        landings = {"b01": 0, "b02": 0}
        latencies = []
        started = time.perf_counter()
        for i in range(JOURNEYS):
            agent = CollectorNaplet(f"journey-{i}")
            agent.set_itinerary(Itinerary(_mirror_pattern()))
            listener = repro.NapletListener()
            hop_started = time.perf_counter()
            servers["b00"].launch(agent, owner="bench", listener=listener)
            report = listener.next_report(timeout=30)
            latencies.append(time.perf_counter() - hop_started)
            landings[report.payload[0]] += 1
        elapsed = time.perf_counter() - started

        for nid in nids:
            servers["b01"].terminate_naplet(nid)
        return {
            "load_aware": load_aware,
            "journeys": JOURNEYS,
            "pinned_residents": PINNED,
            "busy_landings": landings["b01"],
            "idle_landings": landings["b02"],
            "reroutes": servers["b00"].observatory.reroutes(),
            "observatory_extra_dials": extra_dials,
            "journeys_per_sec": JOURNEYS / elapsed,
            "hop_latency_p50_ms": _percentile(latencies, 0.50) * 1e3,
            "hop_latency_p95_ms": _percentile(latencies, 0.95) * 1e3,
            "hop_latency_mean_ms": statistics.fmean(latencies) * 1e3,
        }
    finally:
        network.shutdown()


def _measure_overhead(observatory: bool) -> dict:
    """E11-shaped ping-pong between the two fast mirrors, observatory
    beating hot (20 ms cadence) or fully disabled."""
    network, servers = _space(
        load_aware=observatory, observatory=observatory, cadence=0.02
    )
    try:
        _warm_links(servers)
        dials_before = _dials(network)
        route = ["b02", "b00"] * (PING_PONG // 2)
        agent = CollectorNaplet("pingpong")
        agent.set_itinerary(
            Itinerary(SeqPattern.of_servers(route, post_action=ResultReport("visited")))
        )
        listener = repro.NapletListener()
        started = time.perf_counter()
        servers["b00"].launch(agent, owner="bench", listener=listener)
        assert listener.next_report(timeout=30).payload == route
        elapsed = time.perf_counter() - started
        digests = sum(
            s.telemetry.registry.snapshot().total("naplet_load_digests_sent_total")
            for s in servers.values()
        ) if observatory else 0.0
        return {
            "observatory": observatory,
            "hops": PING_PONG,
            "elapsed_s": elapsed,
            "digests_sent": int(digests),
            "observatory_extra_dials": _dials(network) - dials_before,
        }
    finally:
        network.shutdown()


class TestLoadAwareNavigation:
    def test_bench_loadaware_vs_static(self, table):
        static = _measure(load_aware=False)
        loadaware = _measure(load_aware=True)

        # Structure first: static order burned the busy mirror on every
        # journey, load-aware order avoided it on every journey ...
        assert static["busy_landings"] == JOURNEYS
        assert static["reroutes"] == 0
        assert loadaware["idle_landings"] == JOURNEYS
        assert loadaware["reroutes"] == JOURNEYS
        # ... the heartbeat plane never dialed a connection of its own ...
        assert static["observatory_extra_dials"] == 0
        assert loadaware["observatory_extra_dials"] == 0
        # ... and dodging the congested mirror is the throughput win the
        # snapshot records (the 20 ms links make this timing-robust).
        assert loadaware["journeys_per_sec"] > static["journeys_per_sec"]

        table(
            f"E12: load-aware Alt vs static order "
            f"({JOURNEYS} journeys, {PINNED} pinned residents at b01)",
            ["order", "busy", "idle", "reroutes", "journeys/s", "p95 ms"],
            [
                [
                    "static" if not run["load_aware"] else "load-aware",
                    run["busy_landings"],
                    run["idle_landings"],
                    run["reroutes"],
                    f"{run['journeys_per_sec']:.1f}",
                    f"{run['hop_latency_p95_ms']:.2f}",
                ]
                for run in (static, loadaware)
            ],
        )

        # E11-shaped overhead leg: hot heartbeats on the ping-pong path
        # must cost under 5% plus scheduler slack, with zero extra dials.
        without = _measure_overhead(observatory=False)
        with_obs = _measure_overhead(observatory=True)
        assert with_obs["observatory_extra_dials"] == 0
        assert with_obs["elapsed_s"] <= without["elapsed_s"] * 1.05 + 0.25

        table(
            f"E12b: observatory overhead ({PING_PONG}-hop ping-pong, 20 ms cadence)",
            ["observatory", "elapsed s", "digests", "extra dials"],
            [
                [
                    "off" if not run["observatory"] else "on",
                    f"{run['elapsed_s']:.3f}",
                    run["digests_sent"],
                    run["observatory_extra_dials"],
                ]
                for run in (without, with_obs)
            ],
        )

        path = Path(__file__).resolve().parents[1] / "BENCH_loadaware.json"
        write_bench(
            path,
            "load-aware Alt navigation vs static declaration order",
            {
                "static": static,
                "loadaware": loadaware,
                "speedup_journeys_per_sec": loadaware["journeys_per_sec"]
                / static["journeys_per_sec"],
                "overhead_off": without,
                "overhead_on": with_obs,
                "observatory_overhead_pct": 100.0
                * (with_obs["elapsed_s"] / without["elapsed_s"] - 1.0),
            },
            history_dir=os.environ.get("NAPLET_BENCH_HISTORY"),
        )
