"""E1 (Figure 1): hierarchical naplet identifiers.

Reproduces the figure's content executably — the id tree
``czxu@ece:010512172720:{0,1,2.0,2.1,2.2}`` — and benchmarks the identifier
operations (mint, clone, parse) the runtime performs on every launch/fork.
"""

from __future__ import annotations

from repro.core.naplet_id import NapletID


def _build_clone_tree(depth: int, fanout: int) -> list[NapletID]:
    root = NapletID(owner="czxu", home="ece", stamp="010512172720", heritage=(0,))
    tree = [root]
    frontier = [root]
    for _level in range(depth):
        next_frontier = []
        for node in frontier:
            for _k in range(fanout):
                child = node.next_clone()
                tree.append(child)
                next_frontier.append(child)
        frontier = next_frontier
    return tree


class TestFigure1:
    def test_paper_identifier_renders_exactly(self, benchmark, table):
        """The figure's identifiers, regenerated."""

        def regenerate():
            root = NapletID(owner="czxu", home="ece", stamp="010512172720", heritage=(2,))
            out = [[str(root.generation_originator())]]
            for _ in range(2):
                out.append([str(root.next_clone())])
            return out

        rows = benchmark(regenerate)
        table("Fig. 1 — hierarchical naplet IDs (generation of naplet :2)",
              ["identifier"], rows)
        assert rows[0] == ["czxu@ece:010512172720:2.0"]
        assert rows[1] == ["czxu@ece:010512172720:2.1"]
        assert rows[2] == ["czxu@ece:010512172720:2.2"]

    def test_bench_clone_tree(self, benchmark, table):
        """Cost of recursive cloning (depth 4, fanout 3 = 121 ids)."""
        tree = benchmark(_build_clone_tree, 4, 3)
        assert len(tree) == 1 + 3 + 9 + 27 + 81
        # every id unique, every child a descendant of the root
        assert len({str(n) for n in tree}) == len(tree)
        root = tree[0]
        assert all(root.is_ancestor_of(n) for n in tree[1:])
        benchmark.extra_info["ids_built"] = len(tree)

    def test_bench_parse(self, benchmark):
        text = "czxu@ece.eng.wayne.edu:010512172720:2.1.4.7"
        nid = benchmark(NapletID.parse, text)
        assert str(nid) == text

    def test_bench_lineage_walk(self, benchmark):
        nid = NapletID(
            owner="czxu", home="ece", stamp="010512172720",
            heritage=tuple([0] + [1] * 15),
        )
        lineage = benchmark(lambda: list(nid.lineage()))
        assert len(lineage) == 16
