"""E6: post-office messaging — delivery cost vs forwarding-chain length (§4.2).

A naplet walks k hops down a line while a sender keeps addressing messages
at its *first* server: each message is forwarded along the trace until it
catches up.  The series shows hops and on-wire bytes growing ~linearly with
chain length, while directory-located sends stay flat.
"""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import Itinerary, SeqPattern
from repro.server import deploy
from repro.simnet import VirtualNetwork, line
from repro.util.concurrency import wait_until
from tests.conftest import StallNaplet


class RestAtEnd(repro.Naplet):
    """Moves through its route instantly, then rests at the final stop."""

    def __init__(self, name: str, last: str, **kwargs) -> None:
        super().__init__(name, **kwargs)
        self.last = last

    def on_start(self) -> None:
        import time

        if self.require_context().hostname == self.last:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                self.checkpoint()
                time.sleep(0.005)
        self.travel()


def _chain_setup(k: int):
    """Naplet resting at hop k (servers c01..c0k), launched from c00."""
    network = VirtualNetwork(line(k + 2, prefix="c"))
    servers = deploy(network)
    route = [f"c{i:02d}" for i in range(1, k + 1)]
    walker = RestAtEnd("walker", last=route[-1])
    walker.set_itinerary(Itinerary(SeqPattern.of_servers(route)))
    nid = servers["c00"].launch(walker, owner="bench")
    last = f"c{k:02d}"
    assert wait_until(lambda: servers[last].manager.is_resident(nid), timeout=20)
    return network, servers, nid, last


class TestForwardingChains:
    def test_bench_delivery_vs_chain_length(self, benchmark, table):
        rows = []
        for k in (1, 2, 4, 6):
            network, servers, nid, last = _chain_setup(k)
            try:
                network.meter.reset()
                receipt = servers["c00"].messenger.post(
                    None, nid, {"probe": k}, dest_urn="naplet://c01"
                )
                chased_bytes = network.meter.total_bytes
                network.meter.reset()
                # located send: the locator resolves the current server first
                receipt_direct = servers["c00"].messenger.post(None, nid, {"direct": k})
                direct_bytes = network.meter.total_bytes
                rows.append(
                    [k, receipt.hops, chased_bytes, receipt_direct.hops, direct_bytes]
                )
                assert receipt.final_server == f"naplet://{last}"
                servers["c00"].terminate_naplet(nid)
            finally:
                network.shutdown()
        table(
            "E6 — message delivery vs forwarding-chain length k",
            ["k", "chase hops", "chase bytes", "located hops", "located bytes"],
            rows,
        )
        # Shape: chase hops grow with k; located sends stay at 0 hops.
        hops = [row[1] for row in rows]
        assert hops == sorted(hops)
        assert hops[-1] >= 3
        assert all(row[3] == 0 for row in rows)
        # chase bytes exceed located bytes for long chains
        assert rows[-1][2] > rows[-1][4]

        # benchmark a direct (resident) delivery
        network, servers, nid, _last = _chain_setup(1)
        try:
            benchmark.pedantic(
                lambda: servers["c00"].messenger.post(None, nid, "ping"),
                rounds=50,
                iterations=1,
            )
            servers["c00"].terminate_naplet(nid)
        finally:
            network.shutdown()

    def test_bench_special_mailbox_park_and_drain(self, benchmark, table):
        """Early messages park; arrival drains them into the new mailbox."""
        network = VirtualNetwork(line(3, prefix="c"))
        servers = deploy(network)
        try:
            from repro.core.naplet_id import NapletID

            servers["c00"].authority.register_owner("bench")
            nid = NapletID.create("bench", "c00")
            agent = StallNaplet("late", spin_seconds=0.0)
            agent._assign_identity(
                nid, servers["c00"].authority.issue(nid, agent.codebase, {})
            )
            agent.set_itinerary(Itinerary(SeqPattern.of_servers(["c02"])))

            for i in range(10):
                receipt = servers["c00"].messenger.post(
                    None, nid, {"early": i}, dest_urn="naplet://c02"
                )
                assert receipt.status == "parked"
            parked = servers["c02"].messenger.special_mailbox_size(nid)
            servers["c00"].launch(agent, owner="bench")
            assert wait_until(
                lambda: servers["c02"].messenger.special_mailbox_size(nid) == 0,
                timeout=10,
            )
            table(
                "E6b — special mailbox",
                ["metric", "value"],
                [["messages parked before arrival", parked],
                 ["left parked after arrival", 0]],
            )
            assert parked == 10
            benchmark(lambda: servers["c02"].messenger.special_mailbox_size(nid))
        finally:
            network.shutdown()
