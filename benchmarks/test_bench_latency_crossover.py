"""E4: response time vs link latency — overcoming network latency (§1 claim b).

The conventional station pays one round trip per OID per device,
sequentially; a Par-itinerary agent pays one transfer out and one report
back per device, with the on-site work overlapped across devices.  With
the simulation clock sleeping real (scaled) time, wall-clock measurements
show the crossover directly.
"""

from __future__ import annotations

import time

import pytest

from repro.man import ManFramework

PARAMS = ["sysName", "sysUpTime", "ipInReceives", "tcpCurrEstab", "cpuLoad"]
N_DEVICES = 6


def _timed_round(framework: ManFramework, approach: str) -> float:
    framework.wait_idle()
    start = time.perf_counter()
    if approach == "cnmp":
        table = framework.collect_with_station(PARAMS)
    else:
        table = framework.collect_with_naplets(PARAMS, mode="par")
        framework.wait_idle()
    elapsed = time.perf_counter() - start
    assert len(table) == N_DEVICES
    return elapsed


class TestLatencyCrossover:
    def test_bench_response_time_series(self, benchmark, table):
        sweep_ms = [0.0, 0.5, 2.0, 5.0]
        rows = []
        cnmp_series, agent_series = [], []
        for latency_ms in sweep_ms:
            framework = ManFramework(
                n_devices=N_DEVICES,
                latency=latency_ms / 1000.0,
                sleep_scale=1.0,
                device_seed=11,
            )
            try:
                cnmp = _timed_round(framework, "cnmp")
                agent = _timed_round(framework, "agent-par")
            finally:
                framework.shutdown()
            cnmp_series.append(cnmp)
            agent_series.append(agent)
            rows.append(
                [latency_ms, f"{cnmp * 1000:.1f}", f"{agent * 1000:.1f}",
                 "agent" if agent < cnmp else "cnmp"]
            )
        table(
            f"E4 — response time (ms) vs link latency (N={N_DEVICES}, P={len(PARAMS)})",
            ["latency (ms)", "cnmp (ms)", "agent-par (ms)", "winner"],
            rows,
        )
        # Shape: CNMP response time grows with latency faster than the
        # parallel agents' (2*N*P sequential round trips vs ~4 messages per
        # spawned child, with the children's on-site work overlapped).
        cnmp_growth = cnmp_series[-1] - cnmp_series[0]
        agent_growth = agent_series[-1] - agent_series[0]
        assert cnmp_growth > agent_growth * 1.2
        # Crossover: at zero latency CNMP's lean round trips win; by 5 ms
        # per link the agents win outright.
        assert agent_series[0] > cnmp_series[0]
        assert agent_series[-1] < cnmp_series[-1]
        benchmark.extra_info["cnmp_ms"] = [round(v * 1000, 2) for v in cnmp_series]
        benchmark.extra_info["agent_ms"] = [round(v * 1000, 2) for v in agent_series]

        # benchmark one mid-latency agent round for the timing table
        framework = ManFramework(
            n_devices=N_DEVICES, latency=0.002, sleep_scale=1.0, device_seed=11
        )
        try:
            benchmark.pedantic(
                _timed_round, args=(framework, "agent-par"), rounds=3, iterations=1
            )
        finally:
            framework.shutdown()
