"""Extension measurements (not paper experiments; flagged in DESIGN.md §6):

- freeze/thaw cycle cost and image size;
- SpaceAdmin query costs over a populated space.
"""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import Itinerary, seq
from repro.server import SpaceAdmin, deploy
from repro.simnet import VirtualNetwork, full_mesh
from repro.util.concurrency import wait_until
from tests.conftest import StallNaplet


@pytest.fixture
def populated_space():
    network = VirtualNetwork(full_mesh(5, prefix="x"))
    servers = deploy(network)
    admin = SpaceAdmin(servers)
    ids = []
    for index in range(8):
        agent = StallNaplet(f"job-{index}", spin_seconds=120.0)
        agent.set_itinerary(Itinerary(seq(f"x{(index % 4) + 1:02d}")))
        ids.append(servers["x00"].launch(agent, owner=f"owner{index % 2}"))
    assert wait_until(lambda: len(admin.alive_naplets()) == 8, timeout=15)
    yield network, servers, admin, ids
    admin.terminate_all()
    admin.wait_space_idle(15)
    network.shutdown()


class TestFreezeThawCost:
    def test_bench_freeze_thaw_cycle(self, benchmark, populated_space, table):
        network, servers, admin, ids = populated_space
        target = ids[0]

        def cycle():
            host = admin.locate(target)
            image = servers[host].freeze_naplet(target)
            # revive on a different host each time
            others = [h for h in admin.hostnames if h != host and h != "x00"]
            servers[others[0]].thaw_naplet(image)
            assert wait_until(lambda: admin.locate(target) is not None, timeout=10)
            return image

        image = benchmark.pedantic(cycle, rounds=5, iterations=1)
        table(
            "EXT-a — freeze/thaw cycle",
            ["metric", "value"],
            [["frozen image bytes", len(image)],
             ["journey footprints", len(admin.trace(target))]],
        )
        assert len(image) > 0


class TestAdminQueryCost:
    def test_bench_alive_naplets(self, benchmark, populated_space):
        _network, _servers, admin, _ids = populated_space
        alive = benchmark(admin.alive_naplets)
        assert len(alive) == 8

    def test_bench_status(self, benchmark, populated_space):
        _network, _servers, admin, ids = populated_space
        status = benchmark(admin.status, ids[3])
        assert status.alive

    def test_bench_space_summary(self, benchmark, populated_space, table):
        _network, _servers, admin, _ids = populated_space
        rows = benchmark(admin.space_summary)
        table(
            "EXT-b — space summary (8 resident naplets, 5 servers)",
            ["server", "residents", "admitted"],
            [[r.hostname, r.residents, r.admitted_total] for r in rows],
        )
        assert sum(r.residents for r in rows) == 8
