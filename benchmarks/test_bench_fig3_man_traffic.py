"""E3 (Figure 3 + §6 motivation): MAN traffic — mobile agents vs CNMP.

The paper argues that centralized micro-management "tends to generate heavy
traffic between the management station and network devices".  This harness
regenerates that comparison as tables:

- station-link bytes vs number of devices N (P fixed);
- station-link bytes vs number of parameters P (N fixed);
- a MIB-walk diagnosis workload, where on-site processing crushes the
  round-trip-per-step conventional walk.

Shape assertions encode the claims: CNMP grows ~N·P, the single-agent tour's
station-link cost is nearly flat in P, and agents win on the walk workload
by a large factor.
"""

from __future__ import annotations

import pytest

from repro.man import ComparisonRunner, ManFramework

PARAMS = ["sysName", "sysUpTime", "ipInReceives", "tcpCurrEstab", "cpuLoad"]


def _measure(n_devices: int, parameters: list[str]) -> dict[str, int]:
    framework = ManFramework(n_devices=n_devices, device_seed=7)
    runner = ComparisonRunner(framework)
    try:
        results = runner.run_all(parameters)
        return {r.approach: r.station_link_bytes for r in results}
    finally:
        framework.shutdown()


class TestStationTrafficVsDevices:
    def test_bench_traffic_table_by_n(self, benchmark, table):
        sweep = [2, 4, 8, 16]
        rows = []
        series: dict[str, list[int]] = {}
        for n in sweep:
            measured = _measure(n, PARAMS)
            rows.append(
                [n, measured["cnmp"], measured["cnmp-batch"],
                 measured["agent-seq"], measured["agent-par"]]
            )
            for approach, value in measured.items():
                series.setdefault(approach, []).append(value)
        table(
            f"E3a — station-link bytes vs devices (P={len(PARAMS)} params)",
            ["N", "cnmp", "cnmp-batch", "agent-seq", "agent-par"],
            rows,
        )
        # Shape: CNMP grows linearly in N (x8 devices => ~x8 bytes, within 2x).
        growth = series["cnmp"][-1] / series["cnmp"][0]
        assert 4 <= growth <= 16
        # The sequential agent's station-link traffic is far flatter in N
        # than CNMP's: by N=16 the tour only crosses the station twice.
        seq_growth = series["agent-seq"][-1] / series["agent-seq"][0]
        assert seq_growth < growth
        benchmark.pedantic(_measure, args=(4, PARAMS), rounds=3, iterations=1)
        benchmark.extra_info["series"] = series

    def test_bench_traffic_table_by_p(self, benchmark, table):
        n = 6
        sweeps = [PARAMS[:1], PARAMS[:2], PARAMS[:3], PARAMS]
        rows = []
        cnmp_series, seq_series = [], []
        for parameters in sweeps:
            measured = _measure(n, list(parameters))
            rows.append(
                [len(parameters), measured["cnmp"], measured["cnmp-batch"],
                 measured["agent-seq"], measured["agent-par"]]
            )
            cnmp_series.append(measured["cnmp"])
            seq_series.append(measured["agent-seq"])
        table(
            f"E3b — station-link bytes vs parameters (N={n} devices)",
            ["P", "cnmp", "cnmp-batch", "agent-seq", "agent-par"],
            rows,
        )
        # CNMP ~linear in P; agent tour nearly flat in P.
        assert cnmp_series[-1] > cnmp_series[0] * 3
        assert seq_series[-1] < seq_series[0] * 1.6
        # Crossover claim: with the full parameter set the tour agent beats
        # fine-grained CNMP on the station link.
        assert seq_series[-1] < cnmp_series[-1]
        benchmark.pedantic(_measure, args=(n, PARAMS[:1]), rounds=3, iterations=1)


class TestWalkWorkload:
    def test_bench_walk_diagnosis(self, benchmark, table):
        """Device diagnosis over the full MIB: on-site walk vs remote walk."""
        framework = ManFramework(n_devices=3, device_seed=9)
        try:
            # conventional: the station walks each device over the network
            framework.reset_measurement()
            for host in framework.device_hosts:
                bindings = framework.station.walk(host, "1.3.6.1.2.1")
                assert len(bindings) > 10
            cnmp_bytes = framework.total_bytes()
            cnmp_requests = framework.station.requests_sent

            # agents: each child walks its device locally, reports a summary
            framework.wait_idle()
            framework.reset_measurement()

            table_rows = framework.collect_with_naplets(["sysName"], mode="par")
            agent_bytes = framework.total_bytes()
            assert len(table_rows) == 3

            table(
                "E3c — full-MIB diagnosis of 3 devices",
                ["approach", "total bytes", "requests"],
                [
                    ["cnmp walk", cnmp_bytes, cnmp_requests],
                    ["agent on-site", agent_bytes, "3 transfers"],
                ],
            )
            # the remote walk pays one round trip per MIB variable;
            # agents pay one transfer per device
            assert cnmp_bytes > agent_bytes

            framework.wait_idle()
            benchmark.pedantic(
                lambda: framework.station.walk(framework.device_hosts[0], "1.3.6.1.2.1.1"),
                rounds=5,
                iterations=1,
            )
        finally:
            framework.shutdown()
