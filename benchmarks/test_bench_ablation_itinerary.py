"""E9 (ablation): itinerary/logic separation (§3's design rationale).

The same unmodified information-collection agent runs under three different
travel plans — seq tour, par broadcast, and the paper's Example 3
par-of-seq — demonstrating that changing the plan never touches agent code,
and measuring what each plan costs (bytes, virtual delay, clones).
"""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import (
    Itinerary,
    ParPattern,
    ResultReport,
    SeqPattern,
    par,
    seq,
    singleton,
)
from repro.server import deploy
from repro.simnet import VirtualNetwork, star
from tests.conftest import CollectorNaplet

DEVICES = ["dev00", "dev01", "dev02", "dev03"]


def _itineraries() -> dict[str, tuple[Itinerary, int]]:
    """name -> (itinerary, expected reports). The agent class never changes."""
    report = ResultReport("visited")
    return {
        "seq tour": (
            Itinerary(SeqPattern.of_servers(DEVICES, post_action=report)),
            1,
        ),
        "par broadcast": (
            Itinerary(ParPattern.of_servers(DEVICES, per_branch_action=report)),
            4,
        ),
        "par-of-seq (Ex. 3)": (
            Itinerary(
                par(
                    seq(
                        "dev00",
                        singleton("dev01", post_action=report),
                    ),
                    seq(
                        "dev02",
                        singleton("dev03", post_action=report),
                    ),
                )
            ),
            2,
        ),
    }


def _run(name: str, itinerary: Itinerary, expected: int) -> dict[str, object]:
    network = VirtualNetwork(star(len(DEVICES), latency=0.001))
    servers = deploy(network)
    listener = repro.NapletListener()
    agent = CollectorNaplet(f"ablate-{name}")
    agent.set_itinerary(itinerary)
    servers["station"].launch(agent, owner="bench", listener=listener)
    reports = listener.reports(expected, timeout=30)
    visited = sorted({host for r in reports for host in r.payload})
    clones = sum(s.events.count("clone-spawned") for s in servers.values())
    stats = {
        "visited": visited,
        "clones": clones,
        "bytes": network.meter.total_bytes,
        "virtual_ms": round(network.clock.virtual_time * 1000, 1),
    }
    for server in servers.values():
        server.wait_idle(5)
    network.shutdown()
    return stats


class TestItineraryAblation:
    def test_bench_three_plans_same_agent(self, benchmark, table):
        rows = []
        for name, (itinerary, expected) in _itineraries().items():
            stats = _run(name, itinerary, expected)
            # Every plan covers all four devices with the identical agent.
            assert stats["visited"] == DEVICES, name
            rows.append(
                [name, stats["clones"], stats["bytes"], stats["virtual_ms"]]
            )
        table(
            "E9 — same agent, three itineraries (4 devices)",
            ["itinerary", "clones", "wire bytes", "virtual delay (ms)"],
            rows,
        )
        clone_counts = [row[1] for row in rows]
        assert clone_counts == [0, 3, 1]  # tour / broadcast / two paths

        name, (itinerary, expected) = next(iter(_itineraries().items()))
        benchmark.pedantic(
            lambda: _run("seq tour", _itineraries()["seq tour"][0], 1),
            rounds=3,
            iterations=1,
        )
