"""E10 (ablation): NapletMonitor accounting overhead and quota-trip latency.

The monitor's checkpoint is the confinement mechanism (§5.2); this measures
what it costs per call (with and without quotas configured) and how quickly
a terminate/quota takes effect on a cooperative agent.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.server.messages import SystemControl
from repro.server.monitor import NapletMonitor, NapletOutcome, ResourceQuota
from tests.core.test_naplet import _identified


def _admit_spinner(monitor, quota=None):
    """Start an agent spinning on checkpoints; returns (block, done_event)."""
    agent = _identified()
    done = threading.Event()
    holder = {}

    def body():
        block = holder["block"]
        while True:
            block.checkpoint()

    def on_retire(naplet, outcome, error):
        holder["outcome"] = outcome
        done.set()

    monitor.admit(
        agent,
        body,
        on_retire,
        quota=quota,
        prepare=lambda b: holder.__setitem__("block", b),
    )
    return agent, holder, done


class TestMonitorOverhead:
    def test_bench_checkpoint_cost(self, benchmark, table):
        monitor = NapletMonitor("bench")
        agent = _identified()
        from repro.server.monitor import _ControlBlock

        bare = _ControlBlock(agent, ResourceQuota())
        quota_block = _ControlBlock(
            agent,
            ResourceQuota(cpu_seconds=3600, wall_seconds=3600, max_messages=10**9),
        )
        # time both variants manually for the table, benchmark the full one
        def time_block(block, n=20_000):
            start = time.perf_counter()
            for _ in range(n):
                block.checkpoint()
            return (time.perf_counter() - start) / n * 1e6

        no_quota_us = time_block(bare)
        with_quota_us = time_block(quota_block)
        table(
            "E10a — checkpoint cost per call",
            ["configuration", "µs/checkpoint"],
            [
                ["no quotas", f"{no_quota_us:.2f}"],
                ["cpu+wall+msg quotas", f"{with_quota_us:.2f}"],
            ],
        )
        # overhead stays in the microsecond regime either way
        assert with_quota_us < 100
        benchmark(quota_block.checkpoint)

    def test_bench_terminate_latency(self, benchmark, table):
        monitor = NapletMonitor("bench")
        samples = []
        for _ in range(5):
            agent, holder, done = _admit_spinner(monitor)
            start = time.perf_counter()
            monitor.interrupt(agent.naplet_id, SystemControl.TERMINATE)
            assert done.wait(5)
            samples.append((time.perf_counter() - start) * 1000)
            assert holder["outcome"] == NapletOutcome.TERMINATED
        table(
            "E10b — terminate-to-retired latency",
            ["sample", "latency (ms)"],
            [[i, f"{v:.2f}"] for i, v in enumerate(samples)],
        )
        assert max(samples) < 1000  # cooperative checkpoints react promptly

        def kill_one():
            agent, _holder, done = _admit_spinner(monitor)
            monitor.interrupt(agent.naplet_id, SystemControl.TERMINATE)
            assert done.wait(5)

        benchmark.pedantic(kill_one, rounds=10, iterations=1)

    def test_bench_quota_trip_latency(self, benchmark, table):
        monitor = NapletMonitor("bench")
        quota = ResourceQuota(cpu_seconds=0.02)
        agent, holder, done = _admit_spinner(monitor, quota=quota)
        start = time.perf_counter()
        assert done.wait(15)
        elapsed = time.perf_counter() - start
        assert holder["outcome"] == NapletOutcome.QUOTA
        table(
            "E10c — cpu-quota trip",
            ["metric", "value"],
            [["quota (cpu s)", quota.cpu_seconds], ["tripped after (s)", f"{elapsed:.3f}"]],
        )

        def trip_once():
            _agent, holder2, done2 = _admit_spinner(
                monitor, quota=ResourceQuota(cpu_seconds=0.005)
            )
            assert done2.wait(15)
            assert holder2["outcome"] == NapletOutcome.QUOTA

        benchmark.pedantic(trip_once, rounds=5, iterations=1)
