"""E11 (ablation): what do telemetry and the health plane cost a naplet?

Runs the same line tour through three otherwise-identical spaces —
telemetry off (no-op instruments, null spans), telemetry on with the
health plane dormant, and telemetry on with the health plane sampling at
its default cadence — and compares wall-clock per journey.  The
instrumentation sits on the migration control path and the health sampler
runs on its own thread, so this is the honest end-to-end number for both.
"""

from __future__ import annotations

import time

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import ServerConfig
from repro.simnet import VirtualNetwork, line
from tests.conftest import CollectorNaplet

ROUTE = ["s01", "s02", "s03"]
TOURS = 20


def _run_tours(servers, count: int) -> float:
    """Launch *count* sequential line tours; return total wall seconds."""
    start = time.perf_counter()
    for i in range(count):
        listener = repro.NapletListener()
        agent = CollectorNaplet(f"tour-{i}")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(ROUTE, post_action=ResultReport("visited"))
            )
        )
        servers["s00"].launch(agent, owner="bench", listener=listener)
        assert listener.next_report(timeout=30).payload == ROUTE
    return time.perf_counter() - start


def _space(telemetry: bool, health: bool = False, journal: bool = True):
    network = VirtualNetwork(line(4, prefix="s"))
    servers = repro.deploy(
        network,
        config=ServerConfig(
            telemetry_enabled=telemetry,
            health_enabled=health,
            journal_enabled=journal,
        ),
    )
    return network, servers


class TestTelemetryOverhead:
    def test_bench_tour_with_and_without_telemetry(self, benchmark, table):
        net_on, on = _space(telemetry=True, health=False)
        net_health, with_health = _space(telemetry=True, health=True)
        net_nj, no_journal = _space(telemetry=True, health=False, journal=False)
        net_off, off = _space(telemetry=False)
        try:
            # warm all spaces (code paths, caches) before timing
            _run_tours(on, 2)
            _run_tours(with_health, 2)
            _run_tours(no_journal, 2)
            _run_tours(off, 2)
            instrumented = _run_tours(on, TOURS)
            health_on = _run_tours(with_health, TOURS)
            journal_off = _run_tours(no_journal, TOURS)
            bare = _run_tours(off, TOURS)

            spans = sum(len(s.telemetry.tracer) for s in on.values())
            table(
                "E11 — telemetry/health overhead per 3-hop journey",
                ["configuration", "total (s)", "ms/journey", "spans kept"],
                [
                    [
                        "telemetry on",
                        f"{instrumented:.3f}",
                        f"{instrumented / TOURS * 1e3:.1f}",
                        spans,
                    ],
                    [
                        "telemetry + health plane",
                        f"{health_on:.3f}",
                        f"{health_on / TOURS * 1e3:.1f}",
                        sum(len(s.telemetry.tracer) for s in with_health.values()),
                    ],
                    [
                        "telemetry, journal off",
                        f"{journal_off:.3f}",
                        f"{journal_off / TOURS * 1e3:.1f}",
                        sum(len(s.telemetry.tracer) for s in no_journal.values()),
                    ],
                    [
                        "telemetry off",
                        f"{bare:.3f}",
                        f"{bare / TOURS * 1e3:.1f}",
                        sum(len(s.telemetry.tracer) for s in off.values()),
                    ],
                ],
            )
            benchmark.extra_info["instrumented_s"] = instrumented
            benchmark.extra_info["health_on_s"] = health_on
            benchmark.extra_info["journal_off_s"] = journal_off
            benchmark.extra_info["bare_s"] = bare

            # telemetry-off really records nothing
            assert all(len(s.telemetry.tracer) == 0 for s in off.values())
            assert off["s00"].telemetry.launches.value() == 0
            assert spans > 0
            # the layer must stay far below the migration cost itself;
            # generous bound to keep CI timing noise out of the signal
            assert instrumented <= bare * 4 + 0.5
            # the health plane samples off the hot path: enabling it at the
            # default cadence must cost the tours under 5% (plus a small
            # absolute cushion for scheduler jitter on loaded CI boxes)
            assert health_on <= instrumented * 1.05 + 0.25
            # ISSUE acceptance: the flight-recorder journal costs the tours
            # under 5% — it is one observer call per event/span plus a ring
            # append, never a lock on the migration path itself
            assert instrumented <= journal_off * 1.05 + 0.25
            # journal-off really journals nothing (observers short-circuit)
            assert all(s.journal.depth == 0 for s in no_journal.values())
            assert sum(s.journal.depth for s in on.values()) > 0
            # hop-cost attribution rode along for free: every tour hop left
            # a perf record and fed the byte/serialize histograms, and the
            # overhead bounds above were met with attribution enabled
            assert sum(
                len(s.journal.records(category="perf")) for s in on.values()
            ) >= TOURS * len(ROUTE)
            assert on["s00"].telemetry.hop_bytes.value(part="payload").count > 0
            assert on["s00"].telemetry.serialize_seconds.value(op="dumps").count > 0
            # and its sampler is genuinely running (first tick lands at the
            # default cadence, which may be after the short bench window)
            from repro.util.concurrency import wait_until

            assert wait_until(
                lambda: sum(s.health.samples_taken for s in with_health.values()) > 0,
                timeout=2.0,
            )

            def one_tour():
                _run_tours(on, 1)

            benchmark.pedantic(one_tour, rounds=5, iterations=1)
        finally:
            net_on.shutdown()
            net_health.shutdown()
            net_nj.shutdown()
            net_off.shutdown()
