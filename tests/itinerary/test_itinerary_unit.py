"""Itinerary driver: cursor semantics with a fake TravelOps.

These tests execute whole journeys without any server: the FakeOps records
dispatches, "runs" clones recursively, and raises NapletDeparted exactly
like the real Navigator — so Seq ordering, guard skipping, Alt selection
and backtracking, Par forking, and completion are all checked in isolation.
"""

from __future__ import annotations

import pytest

from repro.core.credential import SigningAuthority
from repro.core.errors import (
    ItineraryError,
    NapletCompleted,
    NapletDeparted,
    NapletMigrationError,
)
from repro.core.naplet_id import NapletID
from repro.itinerary.itinerary import Itinerary
from repro.itinerary.pattern import JoinPolicy, SeqPattern, alt, par, seq, singleton
from repro.itinerary.visit import Never, StateFlagClear
from tests.core.test_naplet import ProbeNaplet


class FakeOps:
    """TravelOps that executes journeys synchronously in-process."""

    def __init__(self, origin: str = "naplet://home", unreachable: set[str] | None = None):
        self._origin = origin
        self.unreachable = unreachable or set()
        self.dispatches: list[tuple[str, str]] = []  # (naplet_id, server)
        self.spawned: list[str] = []
        self.join_notes: list[tuple[str, str]] = []
        self._authority = SigningAuthority()
        self._authority.register_owner("t")

    @property
    def origin_urn(self) -> str:
        return self._origin

    def dispatch(self, naplet, destination):
        if destination in self.unreachable:
            raise NapletMigrationError(f"unreachable: {destination}")
        self.dispatches.append((str(naplet.naplet_id), destination))
        raise NapletDeparted(destination)

    def spawn(self, parent, clone, destination):
        if destination in self.unreachable:
            raise NapletMigrationError(f"unreachable: {destination}")
        self.spawned.append(str(clone.naplet_id))
        self.dispatches.append((str(clone.naplet_id), destination))
        # Simulate the clone's first visit (S then T), then run the rest of
        # its journey to completion, like a space would.
        visit = clone.itinerary.current_visit
        if visit is not None and visit.post_action is not None:
            visit.post_action.operate(clone)
        run_journey(clone, self)

    def issue_clone_credential(self, clone):
        clone._cred = self._authority.issue(clone.naplet_id, clone.codebase)

    def await_join(self, naplet, tokens, timeout):
        # In this fake, join notices were recorded synchronously by clones.
        noted = {token for token, _target in self.join_notes}
        missing = set(tokens) - noted
        assert not missing, f"join tokens never notified: {missing}"

    def notify_join(self, naplet, target, token):
        self.join_notes.append((token, str(target)))


def make_agent(pattern, **itin_kwargs) -> ProbeNaplet:
    agent = ProbeNaplet("unit")
    auth = SigningAuthority()
    auth.register_owner("t")
    nid = NapletID.create("t", "home", stamp="240101120000")
    agent._assign_identity(nid, auth.issue(nid, agent.codebase))
    agent.set_itinerary(Itinerary(pattern, **itin_kwargs))
    return agent


def run_journey(agent, ops) -> list[str]:
    """Drive step() to completion, simulating per-server business logic.

    Every advance is recorded in ``ops.dispatches`` (as the real dispatch
    path would) so clone and original movements can be asserted uniformly.
    """
    itinerary = agent.itinerary
    visited: list[str] = []
    while True:
        destination = itinerary.step(agent, ops)
        if destination is None:
            return visited
        visited.append(destination)
        ops.dispatches.append((str(agent.naplet_id), destination))
        # Simulate S at the server, then T (the post-action) as travel() would.
        visit = itinerary.current_visit
        if visit is not None and visit.post_action is not None:
            visit.post_action.operate(agent)


class TestSeqTraversal:
    def test_visits_in_declared_order(self):
        agent = make_agent(seq("a", "b", "c"))
        ops = FakeOps()
        assert run_journey(agent, ops) == ["a", "b", "c"]
        assert agent.itinerary.completed

    def test_nested_seq_flattens_in_order(self):
        agent = make_agent(seq(seq("a", "b"), seq("c", seq("d"))))
        assert run_journey(agent, FakeOps()) == ["a", "b", "c", "d"]

    def test_guard_skips_mid_route(self):
        pattern = SeqPattern(
            [
                singleton("a"),
                singleton("b", guard=Never()),
                singleton("c"),
            ]
        )
        agent = make_agent(pattern)
        assert run_journey(agent, FakeOps()) == ["a", "c"]

    def test_sequential_search_stops_early(self):
        """§3: conditional visits end the route once the search completes."""

        class Searcher(ProbeNaplet):
            pass

        pattern = SeqPattern.of_servers(
            ["s1", "s2", "s3", "s4"], guard=StateFlagClear("done")
        )
        agent = make_agent(pattern)

        itinerary = agent.itinerary
        ops = FakeOps()
        visited = []
        while True:
            destination = itinerary.step(agent, ops)
            if destination is None:
                break
            visited.append(destination)
            if destination == "s2":  # found it here
                agent.state.set("done", True)
        assert visited == ["s1", "s2"]

    def test_all_guards_false_completes_without_dispatch(self):
        agent = make_agent(seq(singleton("a", guard=Never()), singleton("b", guard=Never())))
        assert run_journey(agent, FakeOps()) == []
        assert agent.itinerary.completed


class TestAlt:
    def test_picks_first_admitting_branch(self):
        agent = make_agent(alt(singleton("a", guard=Never()), "b", "c"))
        assert run_journey(agent, FakeOps()) == ["b"]

    def test_alt_branch_runs_fully(self):
        agent = make_agent(seq(alt(seq("a1", "a2"), "b"), "tail"))
        assert run_journey(agent, FakeOps()) == ["a1", "a2", "tail"]

    def test_no_admitting_branch_skips_alt(self):
        agent = make_agent(seq(alt(singleton("a", guard=Never())), "tail"))
        assert run_journey(agent, FakeOps()) == ["tail"]


class TestParForking:
    def test_original_takes_first_branch(self):
        agent = make_agent(par("a", "b", "c"))
        ops = FakeOps()
        visited = run_journey(agent, ops)
        assert visited == ["a"]
        assert len(ops.spawned) == 2
        # clones visited their branches
        dispatched_servers = {server for _nid, server in ops.dispatches}
        assert dispatched_servers == {"a", "b", "c"}

    def test_clone_ids_extend_heritage(self):
        agent = make_agent(par("a", "b", "c"))
        ops = FakeOps()
        run_journey(agent, ops)
        assert ops.spawned == [
            "t@home:240101120000:0.1",
            "t@home:240101120000:0.2",
        ]

    def test_address_books_cross_wired(self):
        agent = make_agent(par("a", "b"))
        ops = FakeOps()
        run_journey(agent, ops)
        # original knows the clone
        assert len(agent.address_book) == 1
        entry = agent.address_book.entries()[0]
        assert entry.server_urn == "naplet://home"

    def test_terminate_policy_clones_stop_at_branch_end(self):
        agent = make_agent(seq(par(seq("a1", "a2"), seq("b1", "b2")), "tail"))
        ops = FakeOps()
        visited = run_journey(agent, ops)
        assert visited == ["a1", "a2", "tail"]
        clone_moves = [s for nid, s in ops.dispatches if nid.endswith(":0.1")]
        assert clone_moves == ["b1", "b2"]  # no 'tail' for the clone

    def test_continue_all_policy_clones_run_continuation(self):
        agent = make_agent(
            seq(par("a", "b", join=JoinPolicy.CONTINUE_ALL), "tail")
        )
        ops = FakeOps()
        visited = run_journey(agent, ops)
        assert visited == ["a", "tail"]
        clone_moves = [s for nid, s in ops.dispatches if nid.endswith(":0.1")]
        assert clone_moves == ["b", "tail"]

    def test_join_policy_waits_for_tokens(self):
        agent = make_agent(
            seq(par("a", "b", "c", join=JoinPolicy.JOIN), "tail")
        )
        ops = FakeOps()
        visited = run_journey(agent, ops)
        assert visited == ["a", "tail"]
        # both clones notified the original
        assert len(ops.join_notes) == 2
        assert all(target == "t@home:240101120000:0" for _t, target in ops.join_notes)

    def test_nested_par_on_original_branch_forks_second_clone(self):
        agent = make_agent(par(par("a", "b"), "c"))
        ops = FakeOps()
        run_journey(agent, ops)
        moves = dict((nid, server) for nid, server in ops.dispatches)
        assert {server for server in moves.values()} == {"a", "b", "c"}
        # the inner par belongs to the original, so its fork is clone :0.2
        assert moves["t@home:240101120000:0"] == "a"
        assert moves["t@home:240101120000:0.1"] == "c"
        assert moves["t@home:240101120000:0.2"] == "b"

    def test_nested_par_on_clone_branch_forks_grand_clone(self):
        agent = make_agent(par("c", par("a", "b")))
        ops = FakeOps()
        run_journey(agent, ops)
        moves = dict((nid, server) for nid, server in ops.dispatches)
        assert moves["t@home:240101120000:0"] == "c"
        assert moves["t@home:240101120000:0.1"] == "a"
        assert moves["t@home:240101120000:0.1.1"] == "b"


class TestTravelMethod:
    def test_travel_raises_departed_on_dispatch(self):
        agent = make_agent(seq("a", "b"))
        ops = FakeOps()

        class Ctx:
            dispatcher = ops

            def checkpoint(self):
                pass

        agent._bind_context(Ctx())  # type: ignore[arg-type]
        with pytest.raises(NapletDeparted):
            agent.travel()
        assert ops.dispatches == [("t@home:240101120000:0", "a")]

    def test_travel_raises_completed_at_end(self):
        agent = make_agent(seq(singleton("a", guard=Never())))
        ops = FakeOps()

        class Ctx:
            dispatcher = ops

            def checkpoint(self):
                pass

        agent._bind_context(Ctx())  # type: ignore[arg-type]
        with pytest.raises(NapletCompleted):
            agent.travel()
        assert agent.itinerary.completed

    def test_travel_skip_policy_records_failures(self):
        agent = make_agent(seq("bad", "good"), on_failure="skip")
        ops = FakeOps(unreachable={"bad"})

        class Ctx:
            dispatcher = ops

            def checkpoint(self):
                pass

        agent._bind_context(Ctx())  # type: ignore[arg-type]
        with pytest.raises(NapletDeparted) as exc_info:
            agent.travel()
        assert exc_info.value.destination == "good"
        assert [f.server for f in agent.itinerary.failures] == ["bad"]

    def test_travel_abort_policy_raises(self):
        agent = make_agent(seq("bad", "good"))
        ops = FakeOps(unreachable={"bad"})

        class Ctx:
            dispatcher = ops

            def checkpoint(self):
                pass

        agent._bind_context(Ctx())  # type: ignore[arg-type]
        with pytest.raises(NapletMigrationError):
            agent.travel()

    def test_alt_backtracks_on_dispatch_failure(self):
        agent = make_agent(alt("primary", "fallback"))
        ops = FakeOps(unreachable={"primary"})

        class Ctx:
            dispatcher = ops

            def checkpoint(self):
                pass

        agent._bind_context(Ctx())  # type: ignore[arg-type]
        with pytest.raises(NapletDeparted) as exc_info:
            agent.travel()
        assert exc_info.value.destination == "fallback"


class TestLifecycleErrors:
    def test_cannot_replace_pattern_after_start(self):
        agent = make_agent(seq("a"))
        agent.itinerary.step(agent, FakeOps())
        with pytest.raises(ItineraryError):
            agent.itinerary.set_itinerary_pattern(seq("b"))

    def test_pattern_required(self):
        itinerary = Itinerary()
        with pytest.raises(ItineraryError):
            _ = itinerary.pattern

    def test_invalid_on_failure_rejected(self):
        with pytest.raises(ItineraryError):
            Itinerary(seq("a"), on_failure="explode")

    def test_first_destination_only_once(self):
        agent = make_agent(seq("a"))
        ops = FakeOps()
        assert agent.itinerary.first_destination(agent, ops) == "a"
        with pytest.raises(ItineraryError):
            agent.itinerary.first_destination(agent, ops)

    def test_step_after_completion_returns_none(self):
        agent = make_agent(seq("a"))
        ops = FakeOps()
        run_journey(agent, ops)
        assert agent.itinerary.step(agent, ops) is None
