"""Stock operables (post-actions): ResultReport, SetStateFlag, chains."""

from __future__ import annotations

import pickle

from repro.itinerary.operable import (
    AppendNote,
    ChainOperable,
    NoOp,
    ResultReport,
    SetStateFlag,
)
from tests.core.test_naplet import ProbeNaplet


class RecordingListenerRef:
    """Stands in for a ListenerRef (duck-typed .report)."""

    def __init__(self):
        self.reports = []

    def report(self, naplet, payload):
        self.reports.append(payload)


def _agent_with_listener():
    agent = ProbeNaplet("op-test")
    ref = RecordingListenerRef()
    agent.set_listener(ref)  # type: ignore[arg-type]
    return agent, ref


class TestResultReport:
    def test_reports_named_state_key(self):
        agent, ref = _agent_with_listener()
        agent.state.set("visited", ["a", "b"])
        ResultReport("visited").operate(agent)
        assert ref.reports == [["a", "b"]]

    def test_reports_whole_state_when_unnamed(self):
        agent, ref = _agent_with_listener()
        agent.state.set("x", 1)
        agent.state.set("y", 2)
        ResultReport().operate(agent)
        assert ref.reports == [{"x": 1, "y": 2}]

    def test_no_listener_is_noop(self):
        agent = ProbeNaplet("silent")
        ResultReport("k").operate(agent)  # no raise


class TestStateOperables:
    def test_set_state_flag(self):
        agent = ProbeNaplet("p")
        SetStateFlag("done").operate(agent)
        assert agent.state.get("done") is True

    def test_set_state_flag_custom_value(self):
        agent = ProbeNaplet("p")
        SetStateFlag("phase", "report").operate(agent)
        assert agent.state.get("phase") == "report"

    def test_append_note_accumulates(self):
        agent = ProbeNaplet("p")
        AppendNote("notes", "first").operate(agent)
        AppendNote("notes", "second").operate(agent)
        assert agent.state.get("notes") == ["first", "second"]

    def test_noop(self):
        agent = ProbeNaplet("p")
        NoOp().operate(agent)
        assert len(agent.state) == 0


class TestChain:
    def test_runs_in_order(self):
        agent = ProbeNaplet("p")
        chain = ChainOperable((AppendNote("n", 1), AppendNote("n", 2), SetStateFlag("done")))
        chain.operate(agent)
        assert agent.state.get("n") == [1, 2]
        assert agent.state.get("done") is True

    def test_empty_chain(self):
        ChainOperable().operate(ProbeNaplet("p"))

    def test_callable_protocol(self):
        agent = ProbeNaplet("p")
        SetStateFlag("via-call")(agent)
        assert agent.state.get("via-call") is True


class TestSerialization:
    def test_operables_pickle(self):
        for op in (NoOp(), ResultReport("k"), SetStateFlag("d"), AppendNote("n", 1)):
            assert pickle.loads(pickle.dumps(op)) == op
