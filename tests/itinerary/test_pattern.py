"""Pattern algebra: Singleton / Seq / Alt / Par construction and queries."""

from __future__ import annotations

import pickle

import pytest

from repro.core.errors import ItineraryError
from repro.itinerary.operable import AppendNote, ChainOperable, NoOp
from repro.itinerary.pattern import (
    AltPattern,
    JoinPolicy,
    ParPattern,
    SeqPattern,
    SingletonPattern,
    alt,
    par,
    seq,
    singleton,
)
from repro.itinerary.visit import Never, StateFlagClear, Visit
from tests.core.test_naplet import ProbeNaplet


class TestSingleton:
    def test_to_builds_visit(self):
        pattern = SingletonPattern.to("s1", post_action=NoOp())
        assert pattern.servers() == ["s1"]
        assert pattern.visit_count() == 1

    def test_first_admitting_respects_guard(self):
        agent = ProbeNaplet("p")
        pattern = SingletonPattern.to("s1", guard=Never())
        assert pattern.first_admitting_visit(agent) is None


class TestSeq:
    def test_requires_children(self):
        with pytest.raises(ItineraryError):
            SeqPattern([])

    def test_of_servers_requires_servers(self):
        with pytest.raises(ItineraryError):
            SeqPattern.of_servers([])

    def test_visits_in_order(self):
        pattern = SeqPattern.of_servers(["a", "b", "c"])
        assert pattern.servers() == ["a", "b", "c"]

    def test_post_action_attaches_to_last_visit_only(self):
        """Example 1: results reported back after the last visit."""
        act = AppendNote("notes", "report")
        pattern = SeqPattern.of_servers(["a", "b", "c"], post_action=act)
        visits = list(pattern.visits())
        assert visits[0].post_action is None
        assert visits[1].post_action is None
        assert visits[2].post_action == act

    def test_per_visit_action_attaches_everywhere(self):
        act = AppendNote("notes", "x")
        pattern = SeqPattern.of_servers(["a", "b"], per_visit_action=act)
        assert all(v.post_action == act for v in pattern.visits())

    def test_per_visit_and_final_combine_on_last(self):
        per, final = AppendNote("n", "p"), AppendNote("n", "f")
        pattern = SeqPattern.of_servers(["a", "b"], per_visit_action=per, post_action=final)
        visits = list(pattern.visits())
        assert visits[0].post_action == per
        assert isinstance(visits[1].post_action, ChainOperable)
        assert visits[1].post_action.actions == (per, final)

    def test_guard_applies_to_all_but_first_by_default(self):
        """§3: 'all visits except the first one should be conditional'."""
        guard = StateFlagClear("done")
        pattern = SeqPattern.of_servers(["a", "b", "c"], guard=guard)
        visits = list(pattern.visits())
        assert not visits[0].conditional
        assert visits[1].guard == guard
        assert visits[2].guard == guard

    def test_guard_first_flag(self):
        guard = StateFlagClear("done")
        pattern = SeqPattern.of_servers(["a", "b"], guard=guard, guard_first=True)
        assert all(v.guard == guard for v in pattern.visits())

    def test_first_admitting_skips_guarded(self):
        agent = ProbeNaplet("p")
        agent.state.set("done", True)
        pattern = SeqPattern(
            [
                SingletonPattern.to("a", guard=StateFlagClear("done")),
                SingletonPattern.to("b"),
            ]
        )
        found = pattern.first_admitting_visit(agent)
        assert found is not None and found.server == "b"


class TestAlt:
    def test_requires_children(self):
        with pytest.raises(ItineraryError):
            AltPattern([])

    def test_select_picks_first_admitting(self):
        agent = ProbeNaplet("p")
        pattern = AltPattern(
            [
                SingletonPattern.to("a", guard=Never()),
                SingletonPattern.to("b"),
                SingletonPattern.to("c"),
            ]
        )
        assert pattern.select(agent) == 1
        assert pattern.select(agent, start=2) == 2

    def test_select_none_when_nothing_admits(self):
        agent = ProbeNaplet("p")
        pattern = AltPattern([SingletonPattern.to("a", guard=Never())])
        assert pattern.select(agent) is None
        assert pattern.first_admitting_visit(agent) is None


class TestPar:
    def test_requires_children(self):
        with pytest.raises(ItineraryError):
            ParPattern([])

    def test_of_servers_shape(self):
        act = NoOp()
        pattern = ParPattern.of_servers(["a", "b"], per_branch_action=act)
        assert pattern.servers() == ["a", "b"]
        assert all(v.post_action == act for v in pattern.visits())
        assert pattern.join is JoinPolicy.TERMINATE

    def test_first_admitting_uses_first_branch(self):
        agent = ProbeNaplet("p")
        pattern = ParPattern([SingletonPattern.to("x"), SingletonPattern.to("y")])
        assert pattern.first_admitting_visit(agent).server == "x"


class TestFunctionalConstructors:
    def test_strings_become_singletons(self):
        pattern = seq("a", "b")
        assert isinstance(pattern, SeqPattern)
        assert pattern.servers() == ["a", "b"]

    def test_nested_composition(self):
        pattern = par(seq("s0", "s1"), seq("s2", "s3"))
        assert pattern.servers() == ["s0", "s1", "s2", "s3"]
        assert isinstance(pattern.children[0], SeqPattern)

    def test_visit_objects_accepted(self):
        pattern = alt(Visit(server="a"), "b")
        assert pattern.servers() == ["a", "b"]

    def test_singleton_helper(self):
        assert singleton("s").servers() == ["s"]

    def test_par_kwargs(self):
        pattern = par("a", "b", join=JoinPolicy.JOIN, post_action=NoOp())
        assert pattern.join is JoinPolicy.JOIN
        assert isinstance(pattern.post_action, NoOp)

    def test_rejects_garbage(self):
        with pytest.raises(ItineraryError):
            seq(42)  # type: ignore[arg-type]


class TestSerialization:
    def test_pattern_trees_pickle(self):
        pattern = par(seq("a", "b"), alt("c", singleton("d", guard=Never())))
        copy = pickle.loads(pickle.dumps(pattern))
        assert copy.servers() == pattern.servers()
        assert isinstance(copy, ParPattern)
