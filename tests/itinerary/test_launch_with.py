"""launch_with(): the home-side travel loop (alt backtrack, skip, degenerate)."""

from __future__ import annotations

import pytest

from repro.core.errors import NapletMigrationError
from repro.itinerary.pattern import alt, seq, singleton
from repro.itinerary.visit import Never
from tests.itinerary.test_itinerary_unit import FakeOps, make_agent


class RecordingTransfer:
    def __init__(self, unreachable: set[str] | None = None):
        self.sent: list[str] = []
        self.unreachable = unreachable or set()

    def __call__(self, destination: str) -> None:
        if destination in self.unreachable:
            raise NapletMigrationError(f"unreachable: {destination}")
        self.sent.append(destination)


class TestLaunchWith:
    def test_transfers_to_first_visit(self):
        agent = make_agent(seq("a", "b"))
        transfer = RecordingTransfer()
        assert agent.itinerary.launch_with(agent, FakeOps(), transfer) is True
        assert transfer.sent == ["a"]

    def test_degenerate_returns_false(self):
        agent = make_agent(seq(singleton("a", guard=Never())))
        transfer = RecordingTransfer()
        assert agent.itinerary.launch_with(agent, FakeOps(), transfer) is False
        assert transfer.sent == []
        assert agent.itinerary.completed

    def test_alt_backtracks_at_launch(self):
        agent = make_agent(alt("primary", "mirror"))
        transfer = RecordingTransfer(unreachable={"primary"})
        assert agent.itinerary.launch_with(agent, FakeOps(), transfer) is True
        assert transfer.sent == ["mirror"]

    def test_skip_policy_at_launch(self):
        agent = make_agent(seq("down", "up"), on_failure="skip")
        transfer = RecordingTransfer(unreachable={"down"})
        assert agent.itinerary.launch_with(agent, FakeOps(), transfer) is True
        assert transfer.sent == ["up"]
        assert [f.server for f in agent.itinerary.failures] == ["down"]

    def test_abort_policy_raises_at_launch(self):
        agent = make_agent(seq("down", "up"))
        transfer = RecordingTransfer(unreachable={"down"})
        with pytest.raises(NapletMigrationError):
            agent.itinerary.launch_with(agent, FakeOps(), transfer)
        assert transfer.sent == []

    def test_all_alternatives_unreachable_degrades_to_skip(self):
        """An Alt exhausted by failures is skipped (like an Alt with no
        admitting branch), with every attempt recorded in failures."""
        agent = make_agent(alt("m1", "m2"))
        transfer = RecordingTransfer(unreachable={"m1", "m2"})
        assert agent.itinerary.launch_with(agent, FakeOps(), transfer) is False
        assert [f.server for f in agent.itinerary.failures] == ["m1", "m2"]
        assert agent.itinerary.completed

    def test_skip_everything_unreachable_completes(self):
        agent = make_agent(seq("m1", "m2"), on_failure="skip")
        transfer = RecordingTransfer(unreachable={"m1", "m2"})
        assert agent.itinerary.launch_with(agent, FakeOps(), transfer) is False
        assert len(agent.itinerary.failures) == 2
