"""Guards and visits (paper §3: <S>, <S;T>, <C -> S;T>)."""

from __future__ import annotations

import pickle

from repro.itinerary.operable import NoOp
from repro.itinerary.visit import (
    Always,
    Never,
    NotVisited,
    StateEquals,
    StateFlagClear,
    StateFlagSet,
    Visit,
)
from tests.core.test_naplet import ProbeNaplet


def _agent() -> ProbeNaplet:
    return ProbeNaplet("guard-test")


class TestStockGuards:
    def test_always(self):
        assert Always().admits(_agent())

    def test_never(self):
        assert not Never().admits(_agent())

    def test_state_flag_clear(self):
        agent = _agent()
        guard = StateFlagClear("done")
        assert guard.admits(agent)  # unset -> clear
        agent.state.set("done", False)
        assert guard.admits(agent)
        agent.state.set("done", True)
        assert not guard.admits(agent)

    def test_state_flag_set_is_inverse(self):
        agent = _agent()
        guard = StateFlagSet("ready")
        assert not guard.admits(agent)
        agent.state.set("ready", 1)
        assert guard.admits(agent)

    def test_state_equals(self):
        agent = _agent()
        guard = StateEquals("phase", "collect")
        assert not guard.admits(agent)
        agent.state.set("phase", "collect")
        assert guard.admits(agent)
        agent.state.set("phase", "report")
        assert not guard.admits(agent)

    def test_not_visited_consults_navigation_log(self):
        agent = _agent()
        guard = NotVisited("s1")
        assert guard.admits(agent)
        agent.navigation_log.record_arrival("s1")
        assert not guard.admits(agent)

    def test_guards_are_callable(self):
        assert Always()(_agent()) is True

    def test_guards_pickle(self):
        for guard in (Always(), Never(), StateFlagClear("k"), StateEquals("k", 1)):
            assert pickle.loads(pickle.dumps(guard)) == guard


class TestVisit:
    def test_defaults_unconditional(self):
        visit = Visit(server="s1")
        assert not visit.conditional
        assert visit.admits(_agent())

    def test_conditional_flag(self):
        visit = Visit(server="s1", guard=StateFlagClear("done"))
        assert visit.conditional

    def test_repr_mentions_parts(self):
        visit = Visit(server="s1", guard=StateFlagClear("done"), post_action=NoOp())
        text = repr(visit)
        assert "s1" in text and "StateFlagClear" in text and "NoOp" in text
