"""Par-level post-actions: when do they run relative to fork/join?"""

from __future__ import annotations

from repro.itinerary.operable import AppendNote
from repro.itinerary.pattern import JoinPolicy, ParPattern, SingletonPattern, seq
from tests.itinerary.test_itinerary_unit import FakeOps, make_agent, run_journey


def _par(join: JoinPolicy) -> ParPattern:
    return ParPattern(
        [SingletonPattern.to("a"), SingletonPattern.to("b")],
        post_action=AppendNote("notes", "par-act"),
        join=join,
    )


class TestParPostActionTiming:
    def test_terminate_policy_runs_act_at_fork(self):
        """Without a join, the pattern-level act runs on the original right
        after the clones are spawned (Example 2's ParPattern(_ip, act))."""
        agent = make_agent(seq(_par(JoinPolicy.TERMINATE), "tail"))
        ops = FakeOps()
        run_journey(agent, ops)
        # the act ran exactly once, on the original
        assert agent.state.get("notes") == ["par-act"]

    def test_join_policy_runs_act_after_join(self):
        agent = make_agent(seq(_par(JoinPolicy.JOIN), "tail"))
        ops = FakeOps()
        visited = run_journey(agent, ops)
        assert visited == ["a", "tail"]
        # clones notified before the act could run (FakeOps joins eagerly),
        # and the act ran once on the original
        assert agent.state.get("notes") == ["par-act"]
        assert len(ops.join_notes) == 1

    def test_act_does_not_leak_to_clones(self):
        agent = make_agent(_par(JoinPolicy.TERMINATE))
        ops = FakeOps()
        run_journey(agent, ops)
        # clones were spawned before the act ran on the original, so their
        # copied state cannot contain the note
        assert ops.spawned  # sanity: a clone existed
        assert agent.state.get("notes") == ["par-act"]

    def test_no_post_action_is_fine(self):
        agent = make_agent(ParPattern([SingletonPattern.to("a"), SingletonPattern.to("b")]))
        ops = FakeOps()
        assert run_journey(agent, ops) == ["a"]
