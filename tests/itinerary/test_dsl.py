"""Itinerary text DSL (extension): parsing and error reporting."""

from __future__ import annotations

import pytest

from repro.core.errors import ItineraryError
from repro.itinerary.dsl import parse
from repro.itinerary.pattern import (
    AltPattern,
    JoinPolicy,
    ParPattern,
    SeqPattern,
    SingletonPattern,
)
from repro.itinerary.visit import StateFlagClear


class TestShapes:
    def test_bare_name_is_singleton(self):
        pattern = parse("serverA")
        assert isinstance(pattern, SingletonPattern)
        assert pattern.servers() == ["serverA"]

    def test_seq(self):
        pattern = parse("seq(a, b, c)")
        assert isinstance(pattern, SeqPattern)
        assert pattern.servers() == ["a", "b", "c"]

    def test_alt(self):
        assert isinstance(parse("alt(a, b)"), AltPattern)

    def test_par(self):
        assert isinstance(parse("par(a, b)"), ParPattern)

    def test_paper_example3_shape(self):
        pattern = parse("par(seq(s0, s1), seq(s2, s3))")
        assert isinstance(pattern, ParPattern)
        assert [c.servers() for c in pattern.children] == [["s0", "s1"], ["s2", "s3"]]

    def test_deep_nesting(self):
        pattern = parse("seq(par(a, alt(b, c)), d)")
        assert pattern.servers() == ["a", "b", "c", "d"]

    def test_whitespace_insensitive(self):
        assert parse("  seq( a ,b )  ").servers() == ["a", "b"]

    def test_hostnames_with_punctuation(self):
        pattern = parse("seq(ece.eng.wayne.edu, node-07, x_y)")
        assert pattern.servers() == ["ece.eng.wayne.edu", "node-07", "x_y"]

    def test_combinator_names_usable_as_hosts_without_paren(self):
        # a bare name 'seq' not followed by '(' is just a server
        assert parse("seq(par, alt)").servers() == ["par", "alt"]


class TestGuardsAndJoin:
    def test_question_mark_attaches_guard(self):
        pattern = parse("seq(a, b?, c?)")
        visits = list(pattern.visits())
        assert not visits[0].conditional
        assert visits[1].guard == StateFlagClear("done")
        assert visits[2].guard == StateFlagClear("done")

    def test_custom_guard_key(self):
        pattern = parse("a?", guard_key="found")
        visit = next(iter(pattern.visits()))
        assert visit.guard == StateFlagClear("found")

    def test_join_policy_applied_to_par(self):
        pattern = parse("par(a, b)", join=JoinPolicy.JOIN)
        assert pattern.join is JoinPolicy.JOIN


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "seq(",
            "seq()",
            "seq(a,)",
            "seq(a b)",
            "seq(a))",
            ",a",
            "(a)",
            "a!!",
            "?",
        ],
    )
    def test_malformed_inputs_raise(self, bad):
        with pytest.raises(ItineraryError):
            parse(bad)

    def test_error_mentions_position(self):
        with pytest.raises(ItineraryError, match="trailing"):
            parse("seq(a) extra")
