"""RepeatPattern (extension) and the DSL renderer."""

from __future__ import annotations

import pytest

from repro.core.errors import ItineraryError
from repro.itinerary import (
    RepeatPattern,
    StateFlagClear,
    parse,
    render,
    repeat,
    seq,
    singleton,
)
from repro.itinerary.operable import SetStateFlag
from tests.itinerary.test_itinerary_unit import FakeOps, make_agent, run_journey


class TestRepeatPattern:
    def test_repeats_child_in_sequence(self):
        agent = make_agent(repeat(seq("a", "b"), 3))
        assert run_journey(agent, FakeOps()) == ["a", "b"] * 3

    def test_times_one_is_identity(self):
        agent = make_agent(repeat("a", 1))
        assert run_journey(agent, FakeOps()) == ["a"]

    def test_invalid_times_rejected(self):
        with pytest.raises(ItineraryError):
            repeat("a", 0)

    def test_visits_enumerates_all_rounds(self):
        pattern = repeat(seq("a", "b"), 4)
        assert pattern.visit_count() == 8
        assert pattern.servers() == ["a", "b"] * 4

    def test_guards_reevaluated_each_round(self):
        """A conditional round stops repeating once the flag trips."""
        pattern = repeat(
            seq(
                singleton("a", guard=StateFlagClear("done")),
                singleton(
                    "flagger",
                    guard=StateFlagClear("done"),
                    post_action=SetStateFlag("done"),
                ),
            ),
            5,
        )
        agent = make_agent(pattern)
        visited = run_journey(agent, FakeOps())
        # first round visits both; the post-action trips the flag, so the
        # remaining four rounds admit nothing
        assert visited == ["a", "flagger"]

    def test_nested_repeat(self):
        agent = make_agent(repeat(repeat("x", 2), 3))
        assert run_journey(agent, FakeOps()) == ["x"] * 6

    def test_mid_journey_pickle(self):
        import pickle

        agent = make_agent(repeat(seq("a", "b"), 2))
        ops = FakeOps()
        first = agent.itinerary.step(agent, ops)
        assert first == "a"
        restored = pickle.loads(pickle.dumps(agent.itinerary))
        rest = []
        while True:
            nxt = restored.step(agent, ops)
            if nxt is None:
                break
            rest.append(nxt)
        assert [first, *rest] == ["a", "b", "a", "b"]


class TestDslRepeat:
    def test_parse_repeat(self):
        pattern = parse("repeat(seq(a, b), 3)")
        assert isinstance(pattern, RepeatPattern)
        assert pattern.times == 3
        assert pattern.servers() == ["a", "b"] * 3

    def test_repeat_count_must_be_integer(self):
        with pytest.raises(ItineraryError):
            parse("repeat(a, many)")

    def test_repeat_requires_two_args(self):
        with pytest.raises(ItineraryError):
            parse("repeat(a)")


class TestRender:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "a?",
            "seq(a, b, c)",
            "alt(a, b)",
            "par(seq(s0, s1), seq(s2, s3))",
            "repeat(seq(a, b?), 4)",
            "seq(par(a, alt(b, c)), d)",
        ],
    )
    def test_roundtrip(self, text):
        pattern = parse(text)
        assert render(pattern) == text
        assert parse(render(pattern)).servers() == pattern.servers()

    def test_rejects_post_actions(self):
        pattern = singleton("a", post_action=SetStateFlag("x"))
        with pytest.raises(ItineraryError):
            render(pattern)

    def test_rejects_exotic_guards(self):
        from repro.itinerary import Never

        with pytest.raises(ItineraryError):
            render(singleton("a", guard=Never()))

    def test_custom_guard_key(self):
        pattern = parse("a?", guard_key="found")
        assert render(pattern, guard_key="found") == "a?"
        with pytest.raises(ItineraryError):
            render(pattern)  # default key doesn't match
