"""SnmpAgent: PDU handling, communities, and the network endpoint."""

from __future__ import annotations

import pickle

import pytest

from repro.snmp.agent import SnmpAgent, SnmpEndpoint, snmp_urn
from repro.snmp.device import DeviceProfile, ManagedDevice
from repro.snmp.mib import WELL_KNOWN_NAMES
from repro.snmp.oid import OID
from repro.snmp.protocol import (
    ErrorStatus,
    GetBulkRequest,
    GetNextRequest,
    GetRequest,
    SetRequest,
    VarBind,
)
from repro.transport.base import Frame
from repro.transport.inmemory import InMemoryTransport

SYS_NAME = OID.parse(WELL_KNOWN_NAMES["sysName"])
SYS_DESCR = OID.parse(WELL_KNOWN_NAMES["sysDescr"])


@pytest.fixture
def agent():
    device = ManagedDevice(DeviceProfile(hostname="dev01"), seed=1)
    return SnmpAgent(device)


class TestGet:
    def test_single_oid(self, agent):
        response = agent.handle(GetRequest("public", (SYS_NAME,)))
        assert response.ok
        assert response.bindings[0].value == "dev01"

    def test_multi_varbind(self, agent):
        response = agent.handle(GetRequest("public", (SYS_NAME, SYS_DESCR)))
        assert len(response.bindings) == 2
        assert response.values()[0] == "dev01"

    def test_no_such_name(self, agent):
        response = agent.handle(GetRequest("public", (OID.parse("9.9.9.0"),)))
        assert response.error_status == ErrorStatus.NO_SUCH_NAME
        assert response.error_index == 1

    def test_error_index_points_at_offender(self, agent):
        response = agent.handle(
            GetRequest("public", (SYS_NAME, OID.parse("9.9.9.0")))
        )
        assert response.error_index == 2


class TestCommunities:
    def test_wrong_community_auth_failure(self, agent):
        response = agent.handle(GetRequest("wrong", (SYS_NAME,)))
        assert response.error_status == ErrorStatus.AUTH_FAILURE

    def test_rw_community_can_read(self, agent):
        assert agent.handle(GetRequest("private", (SYS_NAME,))).ok

    def test_ro_community_cannot_write(self, agent):
        response = agent.handle(
            SetRequest("public", (VarBind(SYS_NAME, "hacked"),))
        )
        assert response.error_status == ErrorStatus.AUTH_FAILURE

    def test_rw_community_can_write(self, agent):
        response = agent.handle(
            SetRequest("private", (VarBind(SYS_NAME, "renamed"),))
        )
        assert response.ok
        assert agent.handle(GetRequest("public", (SYS_NAME,))).values() == ["renamed"]


class TestGetNextAndBulk:
    def test_get_next(self, agent):
        response = agent.handle(GetNextRequest("public", (OID.parse("1.3.6.1.2.1.1"),)))
        assert response.ok
        assert response.bindings[0].oid == OID.parse("1.3.6.1.2.1.1.1.0")

    def test_get_next_past_end(self, agent):
        last = agent.mib.oids()[-1]
        response = agent.handle(GetNextRequest("public", (last,)))
        assert response.error_status == ErrorStatus.NO_SUCH_NAME

    def test_get_bulk_repetitions(self, agent):
        response = agent.handle(
            GetBulkRequest("public", (OID.parse("1.3.6.1.2.1.1"),), max_repetitions=4)
        )
        assert response.ok
        assert len(response.bindings) == 4
        oids = [b.oid for b in response.bindings]
        assert oids == sorted(oids)

    def test_get_bulk_non_repeaters(self, agent):
        response = agent.handle(
            GetBulkRequest(
                "public",
                (OID.parse("1.3.6.1.2.1.1"), OID.parse("1.3.6.1.2.1.4")),
                non_repeaters=1,
                max_repetitions=3,
            )
        )
        assert response.ok
        assert len(response.bindings) == 1 + 3

    def test_walk_helper(self, agent):
        bindings = agent.walk("1.3.6.1.2.1.1")
        names = [str(b.oid) for b in bindings]
        assert WELL_KNOWN_NAMES["sysName"] in names
        assert all(str(b.oid).startswith("1.3.6.1.2.1.1") for b in bindings)

    def test_walk_wrong_community_empty(self, agent):
        assert agent.walk("1.3.6.1.2.1.1", community="nope") == []


class TestSet:
    def test_read_only_variable(self, agent):
        response = agent.handle(
            SetRequest("private", (VarBind(SYS_DESCR, "x"),))
        )
        assert response.error_status == ErrorStatus.READ_ONLY

    def test_unknown_oid(self, agent):
        response = agent.handle(
            SetRequest("private", (VarBind(OID.parse("9.9.9.0"), "x"),))
        )
        assert response.error_status == ErrorStatus.NO_SUCH_NAME

    def test_atomic_staging(self, agent):
        """A bad binding anywhere aborts the whole set."""
        response = agent.handle(
            SetRequest(
                "private",
                (VarBind(SYS_NAME, "newname"), VarBind(OID.parse("9.9.9.0"), "x")),
            )
        )
        assert not response.ok
        # first binding must NOT have been applied
        assert agent.handle(GetRequest("public", (SYS_NAME,))).values() == ["dev01"]


class TestStats:
    def test_requests_served_counts(self, agent):
        agent.handle(GetRequest("public", (SYS_NAME,)))
        agent.handle(GetRequest("public", (SYS_NAME,)))
        assert agent.requests_served == 2

    def test_unknown_pdu_gen_err(self, agent):
        assert agent.handle("not-a-pdu").error_status == ErrorStatus.GEN_ERR


class TestEndpoint:
    def test_frames_round_trip(self, agent):
        transport = InMemoryTransport()
        endpoint = SnmpEndpoint(agent, transport, "dev01")
        frame = Frame(
            kind="snmp-pdu",
            source="naplet://station",
            dest=snmp_urn("dev01"),
            payload=pickle.dumps(GetRequest("public", (SYS_NAME,))),
        )
        response = pickle.loads(transport.request(frame))
        assert response.values() == ["dev01"]
        assert transport.meter.total_frames == 2  # request + reply
        endpoint.close()
        assert not transport.is_registered(snmp_urn("dev01"))
