"""SNMP traps: senders, sinks, MIB side effects."""

from __future__ import annotations

import pytest

from repro.snmp.device import DeviceProfile, ManagedDevice
from repro.snmp.oid import OID
from repro.snmp.trap import TrapSender, TrapSink, TrapType, trap_sink_urn
from repro.transport.inmemory import InMemoryTransport


@pytest.fixture
def wired():
    transport = InMemoryTransport()
    sink = TrapSink(transport, "station")
    device = ManagedDevice(DeviceProfile(hostname="dev01", n_interfaces=3), seed=4)
    sender = TrapSender(device, transport, sink.urn)
    return transport, sink, device, sender


class TestDelivery:
    def test_cold_start_reaches_sink(self, wired):
        _transport, sink, _device, sender = wired
        sender.cold_start()
        trap = sink.next_trap(timeout=2)
        assert trap.trap_type == TrapType.COLD_START
        assert trap.source == "dev01"
        assert sink.received == 1
        assert sender.sent == 1

    def test_traps_are_metered(self, wired):
        transport, sink, _device, sender = wired
        sender.cold_start()
        sink.next_trap(timeout=2)
        assert transport.meter.kind_stats("snmp-trap").frames == 1

    def test_try_next_nonblocking(self, wired):
        _transport, sink, _device, sender = wired
        assert sink.try_next() is None
        sender.cold_start()
        assert sink.try_next() is not None

    def test_callback_invoked(self):
        transport = InMemoryTransport()
        seen = []
        sink = TrapSink(transport, "station", callback=lambda t: seen.append(t.source))
        device = ManagedDevice(DeviceProfile(hostname="dev09"), seed=1)
        TrapSender(device, transport, sink.urn).cold_start()
        assert seen == ["dev09"]

    def test_unreachable_sink_is_silent_loss(self, wired):
        transport, sink, _device, sender = wired
        transport.partition_host("station")
        sender.cold_start()  # no raise: traps are unacknowledged datagrams
        assert sender.sent == 0

    def test_sink_close_unregisters(self, wired):
        transport, sink, _device, _sender = wired
        sink.close()
        assert not transport.is_registered(trap_sink_urn("station"))


class TestOperationalEvents:
    def test_link_down_mutates_mib_and_notifies(self, wired):
        _transport, sink, device, sender = wired
        sender.link_down(2)
        assert device.if_oper_status(1) == 2  # interface index 2 is row 1
        trap = sink.next_trap(timeout=2)
        assert trap.trap_type == TrapType.LINK_DOWN
        binding = trap.varbind("1.3.6.1.2.1.2.2.1.1.2")
        assert binding is not None and binding.value == 2

    def test_link_up_restores(self, wired):
        _transport, sink, device, sender = wired
        sender.link_down(1)
        sender.link_up(1)
        assert device.if_oper_status(0) == 1
        sink.next_trap(timeout=2)
        trap = sink.next_trap(timeout=2)
        assert trap.trap_type == TrapType.LINK_UP

    def test_cpu_high_carries_load(self, wired):
        _transport, sink, device, sender = wired
        sender.cpu_high()
        trap = sink.next_trap(timeout=2)
        assert trap.trap_type == TrapType.CPU_HIGH
        binding = trap.varbind(OID.parse("1.3.6.1.4.1.9999.1.1.0"))
        assert 0.0 <= binding.value <= 1.0

    def test_uptime_stamped(self, wired):
        _transport, sink, _device, sender = wired
        sender.cold_start()
        assert sink.next_trap(timeout=2).uptime_ticks >= 0
