"""OID value type: parsing, ordering, prefixes."""

from __future__ import annotations

import pickle

import pytest

from repro.snmp.oid import OID


class TestParse:
    def test_dotted_string(self):
        oid = OID.parse("1.3.6.1.2.1.1.5.0")
        assert oid.parts == (1, 3, 6, 1, 2, 1, 1, 5, 0)
        assert str(oid) == "1.3.6.1.2.1.1.5.0"
        assert oid.dotted == str(oid)

    def test_leading_dot_tolerated(self):
        assert OID.parse(".1.3.6") == OID.parse("1.3.6")

    def test_parse_idempotent_on_oid(self):
        oid = OID.parse("1.3")
        assert OID.parse(oid) is oid

    def test_parse_tuple(self):
        assert OID.parse((1, 3, 6)).parts == (1, 3, 6)

    @pytest.mark.parametrize("bad", ["", "1.x.3", "1..3", "abc"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            OID.parse(bad)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OID(())

    def test_negative_arc_rejected(self):
        with pytest.raises(ValueError):
            OID((1, -3))


class TestOrdering:
    def test_lexicographic(self):
        assert OID.parse("1.3.6.1") < OID.parse("1.3.6.2")
        assert OID.parse("1.3.6") < OID.parse("1.3.6.0")  # prefix sorts first
        assert OID.parse("1.3.10") > OID.parse("1.3.9")  # numeric, not textual

    def test_sorted_walk_order(self):
        oids = [OID.parse(t) for t in ("1.3.6.1.2", "1.3.6.1.1.0", "1.3.6.1.1")]
        assert [str(o) for o in sorted(oids)] == [
            "1.3.6.1.1",
            "1.3.6.1.1.0",
            "1.3.6.1.2",
        ]

    def test_equality_and_hash(self):
        assert OID.parse("1.3") == OID.parse("1.3")
        assert hash(OID.parse("1.3")) == hash(OID.parse("1.3"))


class TestStructure:
    def test_child_and_parent(self):
        base = OID.parse("1.3.6")
        child = base.child(1, 0)
        assert str(child) == "1.3.6.1.0"
        assert child.parent() == OID.parse("1.3.6.1")

    def test_root_parent_none(self):
        assert OID.parse("1").parent() is None

    def test_prefix_tests(self):
        root = OID.parse("1.3.6.1.2.1.1")
        inside = OID.parse("1.3.6.1.2.1.1.5.0")
        outside = OID.parse("1.3.6.1.2.1.2.1.0")
        assert root.is_prefix_of(inside)
        assert root.is_prefix_of(root)
        assert not root.is_prefix_of(outside)
        assert root.strictly_contains(inside)
        assert not root.strictly_contains(root)

    def test_len_and_iter(self):
        oid = OID.parse("1.3.6")
        assert len(oid) == 3
        assert list(oid) == [1, 3, 6]


class TestEncoding:
    def test_encoded_size_reasonable(self):
        small = OID.parse("1.3.6.1.2.1.1.5.0")
        assert 5 <= small.encoded_size() <= 15

    def test_large_arcs_take_more_octets(self):
        small = OID.parse("1.3.6.1")
        large = OID.parse("1.3.6.200000")
        assert large.encoded_size() > small.encoded_size()

    def test_pickles(self):
        oid = OID.parse("1.3.6.1")
        assert pickle.loads(pickle.dumps(oid)) == oid
