"""PDU types and size estimation."""

from __future__ import annotations

import pickle

from repro.snmp.oid import OID
from repro.snmp.protocol import (
    ErrorStatus,
    GetRequest,
    SetRequest,
    SnmpResponse,
    VarBind,
    approx_ber_size,
)


class TestResponse:
    def test_ok_property(self):
        assert SnmpResponse().ok
        assert not SnmpResponse(error_status=ErrorStatus.NO_SUCH_NAME).ok

    def test_values(self):
        response = SnmpResponse(
            bindings=(VarBind(OID.parse("1.1"), 1), VarBind(OID.parse("1.2"), "x"))
        )
        assert response.values() == [1, "x"]


class TestBerSize:
    def test_grows_with_varbinds(self):
        one = GetRequest("public", (OID.parse("1.3.6.1.2.1.1.5.0"),))
        three = GetRequest(
            "public",
            tuple(OID.parse(f"1.3.6.1.2.1.1.{i}.0") for i in (1, 3, 5)),
        )
        assert approx_ber_size(three) > approx_ber_size(one)

    def test_community_length_counts(self):
        short = GetRequest("a", (OID.parse("1.3"),))
        long = GetRequest("a-much-longer-community", (OID.parse("1.3"),))
        assert approx_ber_size(long) > approx_ber_size(short)

    def test_response_values_count(self):
        small = SnmpResponse(bindings=(VarBind(OID.parse("1.3"), 1),))
        big = SnmpResponse(bindings=(VarBind(OID.parse("1.3"), "x" * 100),))
        assert approx_ber_size(big) > approx_ber_size(small)

    def test_set_request_sized(self):
        pdu = SetRequest("private", (VarBind(OID.parse("1.3.6.1.2.1.1.5.0"), "name"),))
        assert approx_ber_size(pdu) > 20

    def test_plausible_absolute_scale(self):
        """A single-OID v1 get is a few dozen octets on real wire."""
        pdu = GetRequest("public", (OID.parse("1.3.6.1.2.1.1.5.0"),))
        assert 25 <= approx_ber_size(pdu) <= 90


class TestPickling:
    def test_pdus_round_trip(self):
        pdu = GetRequest("public", (OID.parse("1.3.6"),))
        assert pickle.loads(pickle.dumps(pdu)) == pdu
