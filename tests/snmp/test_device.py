"""ManagedDevice: deterministic synthetic dynamics."""

from __future__ import annotations

import pytest

from repro.snmp.device import DeviceProfile, ManagedDevice


@pytest.fixture
def device():
    return ManagedDevice(DeviceProfile(hostname="dev01", n_interfaces=3), seed=7)


class TestDeterminism:
    def test_same_seed_same_readings(self):
        a = ManagedDevice(DeviceProfile(hostname="x"), seed=5)
        b = ManagedDevice(DeviceProfile(hostname="x"), seed=5)
        assert a.if_in_octets(0, now=100.0) == b.if_in_octets(0, now=100.0)
        assert a.cpu_load(now=42.0) == b.cpu_load(now=42.0)

    def test_different_seeds_differ(self):
        a = ManagedDevice(DeviceProfile(hostname="x"), seed=1)
        b = ManagedDevice(DeviceProfile(hostname="x"), seed=2)
        assert a.if_in_octets(0, now=1000.0) != b.if_in_octets(0, now=1000.0)

    def test_default_seed_from_hostname(self):
        a = ManagedDevice(DeviceProfile(hostname="dev42"))
        b = ManagedDevice(DeviceProfile(hostname="dev42"))
        assert a.if_in_octets(0, now=500.0) == b.if_in_octets(0, now=500.0)


class TestCounters:
    def test_counters_monotone_in_time(self, device):
        for reader in (
            lambda t: device.if_in_octets(1, now=t),
            lambda t: device.if_out_octets(1, now=t),
            lambda t: device.ip_in_receives(now=t),
            lambda t: device.tcp_active_opens(now=t),
            lambda t: device.udp_in_datagrams(now=t),
            lambda t: device.sys_uptime_ticks(now=t),
        ):
            assert reader(10.0) <= reader(20.0) <= reader(200.0)

    def test_counters_zero_at_birth(self, device):
        assert device.if_in_octets(0, now=0.0) == 0
        assert device.sys_uptime_ticks(now=0.0) == 0

    def test_uptime_is_ticks(self, device):
        assert device.sys_uptime_ticks(now=2.5) == 250

    def test_wall_clock_default(self, device):
        # without explicit now, elapsed time since construction is used
        assert device.if_in_octets(0) >= 0


class TestGauges:
    def test_cpu_load_bounded(self, device):
        for t in range(0, 200, 7):
            load = device.cpu_load(now=float(t))
            assert 0.0 <= load <= 1.0

    def test_tcp_estab_nonnegative(self, device):
        assert all(device.tcp_curr_estab(now=float(t)) >= 0 for t in range(0, 100, 11))


class TestInterfaces:
    def test_oper_status_toggles(self, device):
        assert device.if_oper_status(1) == 1
        device.set_interface_down(1)
        assert device.if_oper_status(1) == 2
        device.set_interface_up(1)
        assert device.if_oper_status(1) == 1

    def test_n_interfaces(self, device):
        assert device.n_interfaces == 3


class TestWritableFields:
    def test_get_set(self, device):
        assert device.get_field("sysName") == "dev01"
        device.set_field("sysName", "renamed")
        assert device.get_field("sysName") == "renamed"

    def test_unknown_field_rejected(self, device):
        with pytest.raises(KeyError):
            device.set_field("madeUp", "x")
        with pytest.raises(KeyError):
            device.get_field("madeUp")
