"""MibTree + the RFC1213-like MIB-II layout."""

from __future__ import annotations

import pytest

from repro.snmp.device import DeviceProfile, ManagedDevice
from repro.snmp.mib import (
    WELL_KNOWN_NAMES,
    Access,
    MibTree,
    MibVariable,
    build_mib2,
)
from repro.snmp.oid import OID


@pytest.fixture
def device():
    return ManagedDevice(DeviceProfile(hostname="dev01", n_interfaces=2), seed=3)


@pytest.fixture
def mib(device):
    return build_mib2(device)


class TestMibTree:
    def test_register_get(self):
        tree = MibTree()
        tree.register(MibVariable(oid=OID.parse("1.1.0"), name="x", reader=lambda: 42))
        assert tree.get(OID.parse("1.1.0")).read() == 42

    def test_duplicate_oid_rejected(self):
        tree = MibTree()
        var = MibVariable(oid=OID.parse("1.1.0"), name="x", reader=lambda: 1)
        tree.register(var)
        with pytest.raises(ValueError):
            tree.register(MibVariable(oid=OID.parse("1.1.0"), name="y", reader=lambda: 2))

    def test_get_next_lexicographic(self):
        tree = MibTree()
        for text in ("1.1.0", "1.2.0", "1.10.0"):
            tree.register(MibVariable(oid=OID.parse(text), name=text, reader=lambda: 0))
        nxt = tree.get_next(OID.parse("1.1.0"))
        assert str(nxt.oid) == "1.2.0"
        assert str(tree.get_next(OID.parse("1.2.0")).oid) == "1.10.0"
        assert tree.get_next(OID.parse("1.10.0")) is None

    def test_get_next_from_nonexistent_oid(self):
        tree = MibTree()
        tree.register(MibVariable(oid=OID.parse("1.5.0"), name="x", reader=lambda: 0))
        assert str(tree.get_next(OID.parse("1.3")).oid) == "1.5.0"

    def test_walk_subtree(self, mib):
        system = list(mib.walk(OID.parse("1.3.6.1.2.1.1")))
        names = [v.name for v in system]
        assert names[0] == "sysDescr"
        assert "sysName" in names
        assert all(str(v.oid).startswith("1.3.6.1.2.1.1") for v in system)

    def test_read_only_write_rejected(self, mib):
        descr = mib.get(OID.parse(WELL_KNOWN_NAMES["sysDescr"]))
        with pytest.raises(PermissionError):
            descr.write("nope")


class TestMib2Layout:
    def test_well_known_oids_exist(self, mib):
        for name, oid in WELL_KNOWN_NAMES.items():
            variable = mib.get(OID.parse(oid))
            assert variable is not None, f"{name} missing at {oid}"

    def test_sys_group_values(self, mib, device):
        assert mib.get(OID.parse("1.3.6.1.2.1.1.5.0")).read() == "dev01"
        assert "managed device" in mib.get(OID.parse("1.3.6.1.2.1.1.1.0")).read()

    def test_if_number_matches_profile(self, mib):
        assert mib.get(OID.parse("1.3.6.1.2.1.2.1.0")).read() == 2

    def test_if_table_columns_per_interface(self, mib):
        # ifInOctets for both interfaces (column 10, indices 1 and 2)
        for idx in (1, 2):
            var = mib.get(OID.parse(f"1.3.6.1.2.1.2.2.1.10.{idx}"))
            assert var is not None
            assert var.read() >= 0

    def test_if_descr(self, mib):
        assert mib.get(OID.parse("1.3.6.1.2.1.2.2.1.2.1")).read() == "eth0"

    def test_sys_name_read_write(self, mib, device):
        var = mib.get(OID.parse(WELL_KNOWN_NAMES["sysName"]))
        assert var.access == Access.READ_WRITE
        var.write("renamed")
        assert device.get_field("sysName") == "renamed"
        assert var.read() == "renamed"

    def test_dynamic_values_reflect_device(self, mib, device):
        load_oid = OID.parse(WELL_KNOWN_NAMES["cpuLoad"])
        assert mib.get(load_oid).read() == device.cpu_load()

    def test_walk_everything_is_sorted(self, mib):
        oids = [v.oid for v in mib.walk()]
        assert oids == sorted(oids)
        assert len(oids) == len(mib)

    def test_full_walk_via_get_next(self, mib):
        """A get-next chain from the root covers the whole tree in order."""
        seen = []
        cursor = OID.parse("1")
        while True:
            variable = mib.get_next(cursor)
            if variable is None:
                break
            seen.append(variable.oid)
            cursor = variable.oid
        assert seen == mib.oids()
