"""ManagementStation: the centralized CNMP baseline over the wire."""

from __future__ import annotations

import pytest

from repro.snmp.agent import SnmpAgent, SnmpEndpoint
from repro.snmp.device import DeviceProfile, ManagedDevice
from repro.snmp.mib import WELL_KNOWN_NAMES
from repro.snmp.station import ManagementStation
from repro.transport.inmemory import InMemoryTransport


@pytest.fixture
def setup():
    transport = InMemoryTransport()
    endpoints = {}
    for i in range(3):
        hostname = f"dev{i:02d}"
        agent = SnmpAgent(ManagedDevice(DeviceProfile(hostname=hostname), seed=i))
        endpoints[hostname] = SnmpEndpoint(agent, transport, hostname)
    station = ManagementStation(transport, hostname="station")
    return transport, station, sorted(endpoints)


class TestPolling:
    def test_fine_grained_one_request_per_oid(self, setup):
        transport, station, hosts = setup
        oids = [WELL_KNOWN_NAMES["sysName"], WELL_KNOWN_NAMES["sysUpTime"]]
        values = station.get(hosts[0], oids, batch=False)
        assert values[WELL_KNOWN_NAMES["sysName"]] == "dev00"
        assert station.requests_sent == 2

    def test_batch_single_request(self, setup):
        transport, station, hosts = setup
        oids = [WELL_KNOWN_NAMES["sysName"], WELL_KNOWN_NAMES["sysUpTime"]]
        values = station.get(hosts[0], oids, batch=True)
        assert len(values) == 2
        assert station.requests_sent == 1

    def test_poll_all_covers_devices(self, setup):
        _transport, station, hosts = setup
        table = station.poll_all(hosts, [WELL_KNOWN_NAMES["sysName"]])
        assert set(table) == set(hosts)
        for host in hosts:
            assert table[host][WELL_KNOWN_NAMES["sysName"]] == host

    def test_traffic_proportional_to_devices_and_oids(self, setup):
        transport, station, hosts = setup
        transport.meter.reset()
        station.poll_all(hosts, [WELL_KNOWN_NAMES["sysName"]])
        one_param = transport.meter.total_bytes
        transport.meter.reset()
        station.poll_all(
            hosts,
            [WELL_KNOWN_NAMES["sysName"], WELL_KNOWN_NAMES["sysUpTime"],
             WELL_KNOWN_NAMES["cpuLoad"]],
        )
        three_params = transport.meter.total_bytes
        assert three_params > 2 * one_param  # ~linear in P

    def test_unknown_oid_omitted(self, setup):
        _transport, station, hosts = setup
        values = station.get(hosts[0], ["9.9.9.0"])
        assert values == {}


class TestWalk:
    def test_walk_matches_local_walk(self, setup):
        transport, station, hosts = setup
        remote = station.walk(hosts[0], "1.3.6.1.2.1.1")
        assert [str(b.oid) for b in remote][0] == "1.3.6.1.2.1.1.1.0"
        assert len(remote) >= 6

    def test_walk_costs_one_round_trip_per_step(self, setup):
        _transport, station, hosts = setup
        before = station.requests_sent
        bindings = station.walk(hosts[0], "1.3.6.1.2.1.1")
        # one get-next per binding plus the final out-of-subtree probe
        assert station.requests_sent - before == len(bindings) + 1


class TestSet:
    def test_set_round_trip(self, setup):
        _transport, station, hosts = setup
        response = station.set(hosts[0], WELL_KNOWN_NAMES["sysName"], "managed-00")
        assert response.ok
        values = station.get(hosts[0], [WELL_KNOWN_NAMES["sysName"]])
        assert values[WELL_KNOWN_NAMES["sysName"]] == "managed-00"
