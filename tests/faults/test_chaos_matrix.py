"""Chaos matrix: seeded fault plans vs. the resilience machinery.

Every case runs on both transports (see ``chaos_space``) and asserts the
space *converges*: the journey completes in order, every landing happened
exactly once, and the home directory holds no orphaned record.
"""

from __future__ import annotations

import pytest

import repro
from repro.faults import FaultPlan
from repro.itinerary import Itinerary, ResultReport, SeqPattern, alt, seq, singleton
from repro.server.admin import SpaceAdmin
from repro.transport.base import FrameKind, urn_of
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet

pytestmark = pytest.mark.chaos

ROUTE = ["c01", "c02", "c03"]


def _run_route(servers, name: str, route=None, pattern=None, timeout=20):
    """Launch a collector over *route* (or *pattern*) and return its report."""
    listener = repro.NapletListener()
    agent = CollectorNaplet(name)
    if pattern is None:
        pattern = SeqPattern.of_servers(route, post_action=ResultReport("visited"))
    agent.set_itinerary(Itinerary(pattern))
    nid = servers["c00"].launch(agent, owner="ops", listener=listener)
    return nid, listener.next_report(timeout=timeout)


def _assert_converged(servers, nid, visited_route):
    """Exactly-once landings, a retired agent, and no directory orphans."""
    admin = SpaceAdmin(servers)
    assert wait_until(lambda: admin.locate(nid) is None, timeout=5)
    landings = sum(s.telemetry.landings.value() for s in servers.values())
    assert landings == len(visited_route)
    # The home (HOME-mode authority) record points at the final landing
    # host — not at a rolled-back source or a host that never saw it.
    record = servers["c00"].local_directory.lookup(nid)
    assert record is not None
    assert record.server_urn == urn_of(visited_route[-1])
    # Footprint chain is intact: each visited host knows the next hop.
    trace = admin.trace(nid)
    hosts = [fp for fp in trace if fp.outcome is not None or fp.departed_to]
    assert len(hosts) == len(trace)


FAULT_CASES = [
    pytest.param(
        lambda p: p.drop(kind=FrameKind.NAPLET_TRANSFER, nth=1),
        id="drop-first-transfer",
    ),
    pytest.param(
        lambda p: p.drop(kind=FrameKind.NAPLET_TRANSFER, times=2),
        id="drop-two-transfers",
    ),
    pytest.param(
        lambda p: p.duplicate(kind=FrameKind.NAPLET_TRANSFER, times=2),
        id="duplicate-transfers",
    ),
    pytest.param(
        lambda p: p.corrupt(kind=FrameKind.NAPLET_TRANSFER, nth=1),
        id="corrupt-first-transfer",
    ),
    pytest.param(
        lambda p: p.crash_during_transfer(when="after"),
        id="crash-after-first-transfer",
    ),
    pytest.param(
        lambda p: p.kill_link("c00", "c01", sends=2),
        id="kill-launch-link-briefly",
    ),
    pytest.param(
        lambda p: p.delay(0.01, kind=FrameKind.NAPLET_TRANSFER, times=3),
        id="delay-transfers",
    ),
    pytest.param(
        lambda p: p.drop(kind=FrameKind.NAPLET_TRANSFER, nth=1)
        .duplicate(kind=FrameKind.NAPLET_TRANSFER, times=1)
        .delay(0.005, kind=FrameKind.NAPLET_TRANSFER, times=2),
        id="drop-then-duplicate-then-delay",
    ),
]


class TestChaosMatrix:
    @pytest.mark.parametrize("build_faults", FAULT_CASES)
    def test_journey_completes_exactly_once(self, chaos_space, build_faults):
        plan = FaultPlan(seed=7)
        build_faults(plan)
        servers, transport = chaos_space(plan)
        nid, report = _run_route(servers, "chaos-tour", route=ROUTE)
        assert report.payload == ROUTE
        _assert_converged(servers, nid, ROUTE)
        assert transport.metrics.snapshot().total("fault_injected_total") >= 1.0

    def test_partitioned_primary_fails_over_to_alt_mirror(self, chaos_space):
        plan = FaultPlan(seed=11).partition("c02")
        servers, _ = chaos_space(plan)
        pattern = seq(
            alt("c02", "c01"),
            singleton("c03", post_action=ResultReport("visited")),
        )
        nid, report = _run_route(servers, "mirror-chaos", pattern=pattern)
        assert report.payload == ["c01", "c03"]
        _assert_converged(servers, nid, ["c01", "c03"])
        # The partitioned primary burned the retry budget before failover.
        assert servers["c00"].telemetry.migration_retries.value() >= 1

    def test_duplicate_transfers_are_detected_not_relanded(self, chaos_space):
        plan = FaultPlan(seed=3).duplicate(kind=FrameKind.NAPLET_TRANSFER, times=3)
        servers, _ = chaos_space(plan)
        nid, report = _run_route(servers, "dup-tour", route=ROUTE)
        assert report.payload == ROUTE
        _assert_converged(servers, nid, ROUTE)
        duplicates = sum(
            s.telemetry.duplicate_transfers.value() for s in servers.values()
        )
        assert duplicates >= 1

    def test_acceptance_drop_plus_partition_with_dead_letter_requeue(
        self, chaos_space
    ):
        """The ISSUE's acceptance scenario, end to end.

        A seeded plan drops the first NAPLET_TRANSFER and partitions one
        host; the journey still completes via retry + Alt failover, and a
        message dead-lettered against the partition is requeued (and
        re-routed to the target's real location) after heal.
        """
        from repro.core.errors import NapletCommunicationError
        from tests.conftest import StallNaplet

        plan = (
            FaultPlan(seed=42)
            .drop(kind=FrameKind.NAPLET_TRANSFER, nth=1)
            .partition("c02")
        )
        servers, transport = chaos_space(plan)

        # Journey: Alt primary c02 is partitioned; retries exhaust, the
        # itinerary falls through to the c01 mirror, whose first transfer
        # frame is dropped and retried.
        pattern = seq(
            alt("c02", "c01"),
            singleton("c03", post_action=ResultReport("visited")),
        )
        nid, report = _run_route(servers, "acceptance", pattern=pattern)
        assert report.payload == ["c01", "c03"]
        _assert_converged(servers, nid, ["c01", "c03"])
        assert servers["c00"].telemetry.migration_retries.value() >= 1

        # Dead letter: park a resident at c01, then force a message through
        # the partitioned host; retries exhaust and the message is queued.
        sitter = StallNaplet("sitter", spin_seconds=30.0)
        sitter.set_itinerary(Itinerary(seq("c01")))
        sitter_id = servers["c00"].launch(sitter, owner="ops")
        assert wait_until(
            lambda: servers["c01"].manager.is_resident(sitter_id), timeout=10
        )
        with pytest.raises(NapletCommunicationError):
            servers["c00"].messenger.post(
                None, sitter_id, {"op": "ping"}, dest_urn=urn_of("c02")
            )
        assert len(servers["c00"].messenger.dead_letters) == 1
        assert servers["c00"].telemetry.dead_letters.value() == 1

        # Heal: the plan clears, dead letters requeue automatically, and the
        # redelivery re-resolves the target to where it actually lives.
        transport.heal()
        assert len(servers["c00"].messenger.dead_letters) == 0
        assert servers["c00"].telemetry.dead_letters_requeued.value() == 1
        mailbox = servers["c01"].messenger.mailbox_of(sitter_id)
        assert mailbox is not None and len(mailbox) == 1
        SpaceAdmin(servers).terminate(sitter_id)
