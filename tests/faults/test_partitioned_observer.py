"""Chaos: a partitioned observer must decay to unknown, never to idle.

The observatory scenario from DESIGN.md §6.8 end to end, on both
transports: a server cut off from the space keeps ordering on its held
digests while they are younger than ``stale_after``, then decays every
peer to *unknown* and falls back to static declaration order, and
recovers — fresh digests, load order restored — after ``heal()``.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

import repro
from repro.faults import FaultPlan
from repro.itinerary import Itinerary, ResultReport, alt, seq, singleton
from repro.transport.base import Frame, FrameKind
from repro.util.concurrency import wait_until

from tests.conftest import CollectorNaplet
from tests.faults.conftest import resilient_config

pytestmark = pytest.mark.chaos

_STALE_AFTER = 0.4


def _observer_config():
    return dataclasses.replace(
        resilient_config(),
        # Manual beats only: the test drives every heartbeat itself.
        load_cadence=60.0,
        load_stale_after=_STALE_AFTER,
    )


def _warm_links(servers) -> None:
    for a in servers.values():
        for b in servers.values():
            if a is not b:
                a.transport.request(
                    Frame(kind=FrameKind.PING, source=a.urn, dest=b.urn)
                )


def _beat_until_fresh(servers, observer_host: str, peers: tuple[str, ...]) -> None:
    """Beat the peers until *observer_host* holds fresh digests for them.

    Delivery is asynchronous on the TCP wire, so one beat may not have
    landed by the time the beat call returns; repeat until merged.
    """
    view = servers[observer_host].observatory.view

    def _fresh() -> bool:
        for peer in peers:
            servers[peer].observatory.beat_now()
        return all(view.fresh_digest(p) is not None for p in peers)

    assert wait_until(_fresh, timeout=10)


def _probe(name: str):
    agent = CollectorNaplet(name)
    agent.set_itinerary(Itinerary(seq(alt("c01", "c02"))))
    return agent


class TestPartitionedObserver:
    def test_decay_to_static_order_then_recovery_after_heal(self, chaos_space):
        plan = FaultPlan(seed=7)
        servers, _transport = chaos_space(plan, config=_observer_config())
        observer = servers["c00"].observatory
        _warm_links(servers)
        _beat_until_fresh(servers, "c00", ("c01", "c02"))

        # Whole network: every peer is fresh, so load order applies — the
        # decision is a real ranking, not a fallback.
        order = observer.order_branches(_probe("pre"), alt("c01", "c02"))
        assert order is not None
        pre = servers["c00"].journal.records(kind="load")[-1]
        assert pre.detail["fallback"] is None

        plan.partition("c00")

        # Just partitioned: held digests are still younger than
        # stale_after, so the observer keeps navigating on them.
        assert observer.order_branches(_probe("held"), alt("c01", "c02")) is not None

        # Past stale_after every peer decays to unknown — the digests are
        # still held (queryable, aged) but never treated as idle scores.
        time.sleep(_STALE_AFTER + 0.1)
        assert observer.view.digest("c01") is not None
        assert observer.view.fresh_digest("c01") is None
        assert observer.order_branches(_probe("stale"), alt("c01", "c02")) is None
        record = servers["c00"].journal.records(kind="load")[-1]
        assert "stale" in record.detail["fallback"]
        assert record.detail["changed"] is False
        described = observer.view.describe()
        assert described["c01"]["score"] is None  # unknown, not idle

        plan.heal()

        # Fresh heartbeats resume; the view recovers and so does load
        # order — and a real journey routes through the space again.
        _beat_until_fresh(servers, "c00", ("c01", "c02"))
        assert observer.order_branches(_probe("healed"), alt("c01", "c02")) is not None
        healed = servers["c00"].journal.records(kind="load")[-1]
        assert healed.detail["fallback"] is None

        listener = repro.NapletListener()
        agent = CollectorNaplet("post-heal-tour")
        agent.set_itinerary(
            Itinerary(
                seq(
                    alt("c01", "c02"),
                    singleton("c03", post_action=ResultReport("visited")),
                )
            )
        )
        servers["c00"].launch(agent, owner="ops", listener=listener)
        report = listener.next_report(timeout=20)
        assert report.payload[-1] == "c03"
        assert report.payload[0] in ("c01", "c02")

    def test_partitioned_beats_are_counted_not_fatal(self, chaos_space):
        plan = FaultPlan(seed=7)
        servers, _transport = chaos_space(plan, config=_observer_config())
        _warm_links(servers)
        _beat_until_fresh(servers, "c01", ("c00",))
        plan.partition("c00")
        # The cut-off observer's own heartbeat must not raise; failed
        # sends either drop silently (injector) or count as failures
        # (virtual network) — in both cases nothing new merges at c01.
        before = servers["c01"].observatory.view.digest("c00")
        servers["c00"].observatory.beat_now()
        time.sleep(0.1)  # let any (wrongly) delivered frame land
        assert servers["c01"].observatory.view.digest("c00") == before
