"""FaultPlan grammar and FaultInjector mechanics (no servers involved)."""

from __future__ import annotations

import pytest

from repro.core.errors import NapletCommunicationError
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.telemetry.metrics import MetricsRegistry
from repro.transport.base import Frame, FrameKind, urn_of


def frame(kind=FrameKind.MESSAGE, src="a", dst="b", payload=b"payload-bytes"):
    return Frame(kind=kind, source=urn_of(src), dest=urn_of(dst), payload=payload)


class FakeTransport:
    """Inner transport double recording every delivery."""

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.sent: list[Frame] = []
        self.requested: list[Frame] = []
        self.registered: dict[str, object] = {}

    def send(self, f: Frame) -> None:
        self.sent.append(f)

    def request(self, f: Frame, timeout=None) -> bytes:
        self.requested.append(f)
        return b"reply"

    def register(self, urn, handler):
        self.registered[urn] = handler


class TestFaultPlan:
    def test_rule_matches_kind_src_dst(self):
        rule = FaultRule("drop", kind=FrameKind.MESSAGE, src="a", dst="b")
        assert rule.matches(frame())
        assert not rule.matches(frame(kind=FrameKind.CONTROL))
        assert not rule.matches(frame(src="x"))
        assert not rule.matches(frame(dst="x"))

    def test_src_dst_match_host_portion_of_urns(self):
        rule = FaultRule("drop", src="a")
        assert rule.matches(frame(src="a"))

    def test_nth_fires_exactly_once_on_the_nth_match(self):
        plan = FaultPlan().drop(kind=FrameKind.MESSAGE, nth=2)
        decisions = [plan.decide(frame()) for _ in range(4)]
        assert [d.drop for d in decisions] == [False, True, False, False]

    def test_times_caps_firings(self):
        plan = FaultPlan().drop(times=2)
        assert [plan.decide(frame()).drop for _ in range(4)] == [
            True, True, False, False,
        ]

    def test_kill_link_is_directional_and_bounded(self):
        plan = FaultPlan().kill_link("a", "b", sends=1)
        assert plan.decide(frame(src="a", dst="b")).drop
        assert not plan.decide(frame(src="b", dst="a")).drop
        assert not plan.decide(frame(src="a", dst="b")).drop  # budget spent

    def test_probability_is_deterministic_under_a_seed(self):
        def firing_pattern(seed):
            plan = FaultPlan(seed=seed)
            plan.rule(FaultRule("drop", probability=0.5))
            return [plan.decide(frame()).drop for _ in range(32)]

        assert firing_pattern(7) == firing_pattern(7)
        assert firing_pattern(7) != firing_pattern(8)
        assert any(firing_pattern(7))
        assert not all(firing_pattern(7))

    def test_partition_drops_both_directions_before_rules(self):
        plan = FaultPlan().partition("b")
        out = plan.decide(frame(src="a", dst="b"))
        back = plan.decide(frame(src="b", dst="a"))
        assert out.drop and back.drop
        assert out.labels == ["partition"]

    def test_composing_delay_duplicate_corrupt(self):
        plan = (
            FaultPlan()
            .delay(0.25, kind=FrameKind.MESSAGE)
            .duplicate(kind=FrameKind.MESSAGE)
            .corrupt(kind=FrameKind.MESSAGE)
        )
        decision = plan.decide(frame())
        assert decision.delay == 0.25
        assert decision.duplicate and decision.corrupt and not decision.terminal

    def test_terminal_drop_stops_rule_evaluation(self):
        plan = FaultPlan().drop().delay(1.0)
        decision = plan.decide(frame())
        assert decision.drop and decision.delay == 0.0

    def test_crash_during_transfer_is_one_shot(self):
        plan = FaultPlan().crash_during_transfer(when="after")
        transfer = frame(kind=FrameKind.NAPLET_TRANSFER)
        assert plan.decide(transfer).crash_after
        assert not plan.decide(transfer).crash_after
        assert not plan.decide(frame()).crash_after  # wrong kind never matched

    def test_heal_clears_partitions_and_exhausts_rules(self):
        plan = FaultPlan().drop().partition("b")
        plan.heal()
        assert not plan.decide(frame(src="a", dst="b")).drop
        assert not plan.is_partitioned("b")

    def test_full_heal_notifies_listeners_but_partial_does_not(self):
        plan = FaultPlan().partition("b")
        calls = []
        plan.on_heal(lambda: calls.append(True))
        plan.heal_host("b")  # partial: other faults may still be active
        assert calls == []
        plan.heal()
        assert len(calls) == 1

    def test_summary_reports_match_and_fire_counts(self):
        plan = FaultPlan().drop(times=1)
        plan.decide(frame())
        plan.decide(frame())
        (row,) = plan.summary()
        assert row["fired"] == 1 and row["matched"] == 2 and row["exhausted"]


class TestFaultInjector:
    def test_clean_frames_pass_through_untouched(self):
        inner = FakeTransport()
        injector = FaultInjector(inner, FaultPlan())
        f = frame()
        injector.send(f)
        assert injector.request(frame()) == b"reply"
        assert inner.sent == [f] and len(inner.requested) == 1

    def test_dropped_send_is_silent_but_dropped_request_raises(self):
        inner = FakeTransport()
        injector = FaultInjector(inner, FaultPlan().drop(times=2))
        injector.send(frame())  # one-way loss: no error, nothing delivered
        with pytest.raises(NapletCommunicationError):
            injector.request(frame())
        assert inner.sent == [] and inner.requested == []

    def test_refuse_dial_raises_before_any_bytes_move(self):
        inner = FakeTransport()
        injector = FaultInjector(inner, FaultPlan().refuse_dial())
        with pytest.raises(NapletCommunicationError, match="injected"):
            injector.request(frame())
        assert inner.requested == []

    def test_duplicate_delivers_twice(self):
        inner = FakeTransport()
        injector = FaultInjector(inner, FaultPlan().duplicate(times=1))
        injector.request(frame())
        assert len(inner.requested) == 2

    def test_corrupt_mangles_leading_payload_bytes(self):
        inner = FakeTransport()
        injector = FaultInjector(inner, FaultPlan().corrupt(times=1))
        injector.send(frame(payload=b"hello world"))
        (delivered,) = inner.sent
        assert delivered.payload.startswith(b"\xde\xad")
        assert delivered.payload[2:] == b"llo world"

    def test_crash_after_delivers_then_raises(self):
        inner = FakeTransport()
        plan = FaultPlan()
        plan.rule(FaultRule("crash", when="after", times=1))
        injector = FaultInjector(inner, plan)
        with pytest.raises(NapletCommunicationError):
            injector.request(frame())
        assert len(inner.requested) == 1  # the exchange DID complete remotely

    def test_fault_counter_lands_on_the_inner_registry(self):
        inner = FakeTransport()
        injector = FaultInjector(inner, FaultPlan().drop(times=1))
        injector.send(frame())
        assert inner.metrics.snapshot().total("fault_injected_total") == 1.0

    def test_attribute_fallthrough_reaches_the_inner_transport(self):
        inner = FakeTransport()
        injector = FaultInjector(inner, FaultPlan())
        handler = object()
        injector.register("naplet://x", handler)
        assert inner.registered["naplet://x"] is handler
        assert injector.metrics is inner.metrics
