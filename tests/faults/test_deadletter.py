"""Dead-letter queue semantics: capture, bounds, requeue, admin surface."""

from __future__ import annotations

import pytest

import repro
from repro.core.errors import NapletCommunicationError
from repro.faults import DeadLetter, DeadLetterQueue, FaultPlan, RetryPolicy
from repro.itinerary import Itinerary, seq
from repro.server import ServerConfig, deploy
from repro.server.admin import SpaceAdmin
from repro.simnet import VirtualNetwork, full_mesh
from repro.transport.base import urn_of
from repro.util.concurrency import wait_until
from tests.conftest import StallNaplet

pytestmark = pytest.mark.chaos


def letter(n=0, reason="nope"):
    return DeadLetter(message=f"m{n}", dest_urn="naplet://x", reason=reason)


class TestDeadLetterQueue:
    def test_fifo_capture_and_drain(self):
        queue = DeadLetterQueue(capacity=8)
        for n in range(3):
            queue.put(letter(n))
        assert len(queue) == 3
        assert [l.message for l in queue.drain()] == ["m0", "m1", "m2"]
        assert len(queue) == 0

    def test_capacity_evicts_oldest(self):
        queue = DeadLetterQueue(capacity=2)
        for n in range(4):
            queue.put(letter(n))
        assert [l.message for l in queue.peek()] == ["m2", "m3"]
        assert queue.stats()["evicted"] == 2

    def test_redeliver_requeues_failures_in_order(self):
        queue = DeadLetterQueue(capacity=8)
        for n in range(3):
            queue.put(letter(n))

        def deliver(item: DeadLetter) -> None:
            if item.message == "m1":
                raise NapletCommunicationError("still down")

        delivered, requeued = queue.redeliver(deliver)
        assert (delivered, requeued) == (2, 1)
        (stuck,) = queue.peek()
        assert stuck.message == "m1"
        assert stuck.requeues == 1 and stuck.attempts == 2
        assert stuck.reason == "still down"

    def test_describe_is_json_friendly(self):
        description = letter(reason="partitioned").describe()
        assert description["reason"] == "partitioned"
        assert description["dest"] == "naplet://x"


class TestDeadLetterIntegration:
    @pytest.fixture
    def dlq_space(self):
        plan = FaultPlan(seed=5).partition("c02")
        network = VirtualNetwork(full_mesh(3, prefix="c"), fault_plan=plan)
        config = ServerConfig(
            message_retry=RetryPolicy(max_attempts=2, base_delay=0.001, jitter=0.0)
        )
        servers = deploy(network, config=config)
        yield network, servers, plan
        network.shutdown()

    def _park_sitter(self, servers):
        sitter = StallNaplet("dlq-sitter", spin_seconds=30.0)
        sitter.set_itinerary(Itinerary(seq("c01")))
        sitter_id = servers["c00"].launch(sitter, owner="ops")
        assert wait_until(
            lambda: servers["c01"].manager.is_resident(sitter_id), timeout=10
        )
        return sitter_id

    def test_exhausted_retries_dead_letter_and_still_raise(self, dlq_space):
        network, servers, _ = dlq_space
        sitter_id = self._park_sitter(servers)
        with pytest.raises(NapletCommunicationError):
            servers["c00"].messenger.post(
                None, sitter_id, {"n": 1}, dest_urn=urn_of("c02")
            )
        # Retried once (budget 2), then dead-lettered.
        assert servers["c00"].telemetry.message_retries.value() == 1
        assert servers["c00"].telemetry.dead_letters.value() == 1

    def test_admin_surfaces_and_requeues_the_backlog(self, dlq_space):
        network, servers, _ = dlq_space
        sitter_id = self._park_sitter(servers)
        for n in range(2):
            with pytest.raises(NapletCommunicationError):
                servers["c00"].messenger.post(
                    None, sitter_id, {"n": n}, dest_urn=urn_of("c02")
                )
        admin = SpaceAdmin(servers)
        assert admin.dead_letter_depth() == 2
        backlog = admin.dead_letters("c00")["c00"]
        assert len(backlog) == 2 and all(b["dest"] == urn_of("c02") for b in backlog)

        # Heal only the transport-level partition, then requeue via admin:
        # redelivery re-resolves the sitter to c01 and both messages land.
        network.heal_host("c02")
        delivered, requeued = admin.requeue_dead_letters()
        assert (delivered, requeued) == (2, 0)
        assert admin.dead_letter_depth() == 0
        mailbox = servers["c01"].messenger.mailbox_of(sitter_id)
        assert mailbox is not None and len(mailbox) == 2
        admin.terminate(sitter_id)

    def test_network_heal_requeues_automatically(self, dlq_space):
        network, servers, _ = dlq_space
        sitter_id = self._park_sitter(servers)
        with pytest.raises(NapletCommunicationError):
            servers["c00"].messenger.post(
                None, sitter_id, {"op": "late"}, dest_urn=urn_of("c02")
            )
        assert len(servers["c00"].messenger.dead_letters) == 1
        network.heal()  # clears the plan AND flushes dead letters
        assert len(servers["c00"].messenger.dead_letters) == 0
        assert servers["c00"].telemetry.dead_letters_requeued.value() == 1
        mailbox = servers["c01"].messenger.mailbox_of(sitter_id)
        assert mailbox is not None and len(mailbox) == 1
        SpaceAdmin(servers).terminate(sitter_id)

    def test_unreachable_target_requeues_until_it_heals(self, dlq_space):
        network, servers, plan = dlq_space
        sitter_id = self._park_sitter(servers)
        with pytest.raises(NapletCommunicationError):
            servers["c00"].messenger.post(
                None, sitter_id, {"op": "stuck"}, dest_urn=urn_of("c02")
            )
        admin = SpaceAdmin(servers)
        # Darken the sitter's real host too: the requeue attempt re-resolves
        # to c01, still cannot get through, and the letter bounces back.
        plan.partition("c01")
        delivered, requeued = admin.requeue_dead_letters("c00")
        assert (delivered, requeued) == (0, 1)
        (stuck,) = servers["c00"].messenger.dead_letters.peek()
        # Original retry budget (2) plus the bounced redelivery attempt.
        assert stuck.requeues == 1 and stuck.attempts == 3
        # Partial heals lift the partitions without auto-requeue; the
        # operator retries explicitly and the letter finally lands.
        plan.heal_host("c01")
        plan.heal_host("c02")
        delivered, requeued = admin.requeue_dead_letters("c00")
        assert (delivered, requeued) == (1, 0)
        mailbox = servers["c01"].messenger.mailbox_of(sitter_id)
        assert mailbox is not None and len(mailbox) == 1
        admin.terminate(sitter_id)
