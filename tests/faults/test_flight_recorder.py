"""Acceptance: the flight recorder under fault injection and clock skew.

Three servers whose journal clocks disagree by ±5 seconds run a multi-hop
journey with a seeded fault plan injecting delays.  The harvested merge
must be free of causal inversions — every hop's depart precedes its land
— while the *wall-clock* order of the very same records demonstrably
inverts, proving the hybrid logical clocks (not lucky timing) produce the
causal order.  A napletlog-style journey query then reconstructs the
exact itinerary order from the merged timeline.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.faults import FaultPlan
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import NapletServer, ServerConfig, SpaceAdmin
from repro.simnet import VirtualNetwork, full_mesh
from repro.telemetry.journal import causal_key

from tests.conftest import CollectorNaplet

pytestmark = pytest.mark.chaos

_NAPLETLOG = Path(__file__).resolve().parents[2] / "tools" / "napletlog.py"

# Visits per stop along the tour (h00 is home); revisits make extra hops.
ROUTE = ["h01", "h02", "h01", "h02"]
SKEWS = {"h00": +5.0, "h01": -5.0, "h02": 0.0}


@pytest.fixture(scope="module")
def napletlog():
    spec = importlib.util.spec_from_file_location("napletlog", _NAPLETLOG)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("napletlog", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def skewed_space():
    """Three servers with ±5s journal-clock skew over a faulty network."""
    plan = FaultPlan(seed=29).delay(0.002)
    network = VirtualNetwork(full_mesh(3, prefix="h"), fault_plan=plan)
    base = ServerConfig(health_cadence=0.05)
    servers = {}
    for hostname, skew in SKEWS.items():
        config = dataclasses.replace(
            base,
            journal_time_source=lambda skew=skew: time.time() + skew,
        )
        servers[hostname] = NapletServer.attach(network.host(hostname), config)
    try:
        yield network, servers
    finally:
        network.shutdown()


def _run_tour(servers):
    listener = repro.NapletListener()
    agent = CollectorNaplet("skew-tour")
    agent.set_itinerary(
        Itinerary(SeqPattern.of_servers(ROUTE, post_action=ResultReport("visited")))
    )
    nid = servers["h00"].launch(agent, owner="alice", listener=listener)
    report = listener.next_report(timeout=20)
    assert report.payload == ROUTE
    return nid


def _hop_pairs(records, nid):
    """(depart_index, arrive_index) per hop of *nid*, in record order."""
    key = str(nid)
    departs = [
        i
        for i, r in enumerate(records)
        if r.kind == "naplet-depart" and r.naplet == key
    ]
    arrives = [
        i
        for i, r in enumerate(records)
        if r.kind == "naplet-arrive" and r.naplet == key
    ]
    assert len(departs) == len(arrives) == len(ROUTE)
    return list(zip(departs, arrives))


class TestFlightRecorderAcceptance:
    def test_skewed_merge_has_zero_causal_inversions(self, skewed_space):
        network, servers = skewed_space
        nid = _run_tour(servers)
        admin = SpaceAdmin(servers)
        assert admin.wait_space_idle()

        # The fault plan really fired, and the injections were journaled.
        assert network.fault_records()
        merged = admin.harvest_journal()
        assert any(r.kind == "fault-injected" for r in merged)
        assert merged == sorted(merged, key=causal_key)

        # Causal order: every hop's depart strictly precedes its land,
        # despite the departing server's clock running 5s behind (h01) or
        # ahead (h00) of the landing server's.
        for depart_i, arrive_i in _hop_pairs(merged, nid):
            assert depart_i < arrive_i

        # Proof the HLC does the work: ordering the same records by raw
        # wall time DOES invert at least one hop (a depart minted at
        # wall+5 sorts after its landing minted at wall-5).
        by_wall = sorted(merged, key=lambda r: (r.wall, r.server, r.seq))
        inversions = [
            (d, a) for d, a in _hop_pairs(by_wall, nid) if d > a
        ]
        assert inversions, "skew produced no wall-order inversion to correct"

    def test_napletlog_journey_reconstructs_the_itinerary(
        self, skewed_space, napletlog
    ):
        _network, servers = skewed_space
        nid = _run_tour(servers)
        admin = SpaceAdmin(servers)
        assert admin.wait_space_idle()
        merged = admin.harvest_journal()

        selected = napletlog.order_records(
            napletlog.filter_records(merged, journey=str(nid), kind="naplet-arrive"),
            causal=True,
        )
        assert [r.server for r in selected] == ROUTE

        # The text rendering stays one line per record, causally ordered.
        lines = napletlog.render_lines(selected)
        assert len(lines) == len(ROUTE) + 2  # header + records + count
        assert all("naplet-arrive" in line for line in lines[1:-1])

    def test_journey_filter_keeps_the_whole_trace(self, skewed_space, napletlog):
        _network, servers = skewed_space
        nid = _run_tour(servers)
        admin = SpaceAdmin(servers)
        assert admin.wait_space_idle()
        merged = admin.harvest_journal()
        journey = napletlog.journey_records(merged, str(nid))
        kinds = {r.kind for r in journey}
        # Spans recorded under the naplet's trace id come along with the
        # event records naming the naplet directly.
        assert {"naplet-launch", "naplet-depart", "naplet-arrive", "hop"} <= kinds
