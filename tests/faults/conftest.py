"""Fixtures for the chaos suite: one space factory over both transports.

Every test in ``tests/faults`` runs twice — once on the synchronous
:class:`InMemoryTransport` (via :class:`VirtualNetwork`'s ``fault_plan``
hook) and once on the pooled :class:`TcpTransport` wrapped directly in a
:class:`FaultInjector` — so the resilience machinery is proven against
both the simulated and the real wire.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import pytest

from repro.codeshipping.codebase import CodeBaseRegistry
from repro.core.credential import SigningAuthority
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.server import NapletServer, ServerConfig, deploy
from repro.simnet import VirtualNetwork, full_mesh
from repro.transport.tcp import TcpTransport

CHAOS_HOSTS = ("c00", "c01", "c02", "c03")


def resilient_config() -> ServerConfig:
    """A config whose retry budgets outlast every fault the suite injects."""
    return ServerConfig(
        migration_retry=RetryPolicy(
            max_attempts=5, base_delay=0.005, multiplier=1.5, max_delay=0.05, jitter=0.0
        ),
        message_retry=RetryPolicy(
            max_attempts=4, base_delay=0.005, multiplier=1.5, max_delay=0.05, jitter=0.0
        ),
    )


# Spaces alive during the current chaos test, so a failure can harvest
# their flight-recorder journals (see pytest_runtest_makereport below).
_LIVE_SPACES: list[dict] = []


def _spaces_in(funcargs) -> list[dict]:
    """Duck-typed scan of a test's fixtures for server dicts."""
    found = []
    for value in funcargs.values():
        parts = value if isinstance(value, tuple) else (value,)
        for part in parts:
            if (
                isinstance(part, dict)
                and part
                and all(hasattr(s, "journal") for s in part.values())
            ):
                found.append(part)
    return found


def _dump_chaos_artifacts(nodeid: str, spaces, directory: str) -> list[str]:
    """Harvest every live space's journal into *directory*; return paths.

    Written by the failure hook so a CI run that trips a chaos test
    uploads the space's black box: the causally merged journal as JSON
    plus its Chrome-trace rendering.
    """
    from repro.server import SpaceAdmin
    from repro.telemetry import journal_chrome_trace

    stem = re.sub(r"[^A-Za-z0-9_.-]+", "_", nodeid).strip("_")
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    seen: set[int] = set()
    for index, servers in enumerate(spaces):
        if id(servers) in seen:
            continue
        seen.add(id(servers))
        records = SpaceAdmin(servers).harvest_journal()
        journal_path = out / f"{stem}.space{index}.journal.json"
        journal_path.write_text(
            json.dumps({"records": [r.describe() for r in records]}, indent=1),
            encoding="utf-8",
        )
        trace_path = out / f"{stem}.space{index}.trace.json"
        trace_path.write_text(
            json.dumps(journal_chrome_trace(records)), encoding="utf-8"
        )
        written.extend([str(journal_path), str(trace_path)])
    return written


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    directory = os.environ.get("NAPLET_CHAOS_ARTIFACTS")
    if not directory or report.when != "call" or not report.failed:
        return
    try:  # best effort: never mask the real failure
        spaces = _spaces_in(item.funcargs) + list(_LIVE_SPACES)
        written = _dump_chaos_artifacts(item.nodeid, spaces, directory)
        if written:
            report.sections.append(
                ("chaos artifacts", "\n".join(written))
            )
    except Exception:  # noqa: BLE001 - diagnostics must not fail the run
        pass


@pytest.fixture(params=["inmemory", "tcp"])
def chaos_space(request):
    """Factory: ``(plan, config) -> (servers, faulty_transport)``.

    The returned transport is the injector-wrapped one shared by every
    server; ``transport.heal()`` clears the plan and (through the on_heal
    hook) requeues dead letters space-wide on both transports.
    """
    cleanups = []

    def _build(plan: FaultPlan, config: ServerConfig | None = None):
        config = config or resilient_config()
        if request.param == "inmemory":
            network = VirtualNetwork(
                full_mesh(len(CHAOS_HOSTS), prefix="c"), fault_plan=plan
            )
            servers = deploy(network, config=config)
            cleanups.append(network.shutdown)
            _LIVE_SPACES.append(servers)
            return servers, network.transport
        transport = TcpTransport()
        injector = FaultInjector(transport, plan)
        authority = SigningAuthority()
        registry = CodeBaseRegistry()
        servers = {
            name: NapletServer(
                hostname=name,
                transport=injector,
                authority=authority,
                code_registry=registry,
                config=config,
            )
            for name in CHAOS_HOSTS
        }
        # Same requeue-on-heal contract VirtualNetwork wires up.
        plan.on_heal(
            lambda: [s.messenger.requeue_dead_letters() for s in servers.values()]
        )

        def _shutdown():
            for server in servers.values():
                server.shutdown()
            transport.close()

        cleanups.append(_shutdown)
        _LIVE_SPACES.append(servers)
        return servers, injector

    yield _build
    _LIVE_SPACES.clear()
    for cleanup in reversed(cleanups):
        cleanup()
