"""Fixtures for the chaos suite: one space factory over both transports.

Every test in ``tests/faults`` runs twice — once on the synchronous
:class:`InMemoryTransport` (via :class:`VirtualNetwork`'s ``fault_plan``
hook) and once on the pooled :class:`TcpTransport` wrapped directly in a
:class:`FaultInjector` — so the resilience machinery is proven against
both the simulated and the real wire.
"""

from __future__ import annotations

import pytest

from repro.codeshipping.codebase import CodeBaseRegistry
from repro.core.credential import SigningAuthority
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.server import NapletServer, ServerConfig, deploy
from repro.simnet import VirtualNetwork, full_mesh
from repro.transport.tcp import TcpTransport

CHAOS_HOSTS = ("c00", "c01", "c02", "c03")


def resilient_config() -> ServerConfig:
    """A config whose retry budgets outlast every fault the suite injects."""
    return ServerConfig(
        migration_retry=RetryPolicy(
            max_attempts=5, base_delay=0.005, multiplier=1.5, max_delay=0.05, jitter=0.0
        ),
        message_retry=RetryPolicy(
            max_attempts=4, base_delay=0.005, multiplier=1.5, max_delay=0.05, jitter=0.0
        ),
    )


@pytest.fixture(params=["inmemory", "tcp"])
def chaos_space(request):
    """Factory: ``(plan, config) -> (servers, faulty_transport)``.

    The returned transport is the injector-wrapped one shared by every
    server; ``transport.heal()`` clears the plan and (through the on_heal
    hook) requeues dead letters space-wide on both transports.
    """
    cleanups = []

    def _build(plan: FaultPlan, config: ServerConfig | None = None):
        config = config or resilient_config()
        if request.param == "inmemory":
            network = VirtualNetwork(
                full_mesh(len(CHAOS_HOSTS), prefix="c"), fault_plan=plan
            )
            servers = deploy(network, config=config)
            cleanups.append(network.shutdown)
            return servers, network.transport
        transport = TcpTransport()
        injector = FaultInjector(transport, plan)
        authority = SigningAuthority()
        registry = CodeBaseRegistry()
        servers = {
            name: NapletServer(
                hostname=name,
                transport=injector,
                authority=authority,
                code_registry=registry,
                config=config,
            )
            for name in CHAOS_HOSTS
        }
        # Same requeue-on-heal contract VirtualNetwork wires up.
        plan.on_heal(
            lambda: [s.messenger.requeue_dead_letters() for s in servers.values()]
        )

        def _shutdown():
            for server in servers.values():
                server.shutdown()
            transport.close()

        cleanups.append(_shutdown)
        return servers, injector

    yield _build
    for cleanup in reversed(cleanups):
        cleanup()
