"""The CI failure hook: harvest journals + traces when a chaos test dies.

The hook itself (``pytest_runtest_makereport`` in this package's
conftest) only fires on failure, so these tests exercise its two halves
directly: finding live spaces among a test's fixtures, and dumping their
flight-recorder journals as JSON + Chrome trace artifacts.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import SpaceAdmin, deploy
from repro.simnet import VirtualNetwork, line
from repro.telemetry.journal import JournalRecord

from tests.conftest import CollectorNaplet
from tests.faults.conftest import _dump_chaos_artifacts, _spaces_in

pytestmark = pytest.mark.chaos


@pytest.fixture
def toured_space():
    network = VirtualNetwork(line(2, prefix="s"))
    servers = deploy(network)
    listener = repro.NapletListener()
    agent = CollectorNaplet("artifact-tour")
    agent.set_itinerary(
        Itinerary(SeqPattern.of_servers(["s01"], post_action=ResultReport("v")))
    )
    servers["s00"].launch(agent, owner="ops", listener=listener)
    listener.next_report(timeout=15)
    assert SpaceAdmin(servers).wait_space_idle()
    try:
        yield servers
    finally:
        network.shutdown()


class TestSpacesIn:
    def test_finds_server_dicts_in_plain_and_tuple_fixtures(self, toured_space):
        funcargs = {
            "plain": toured_space,
            "tupled": (object(), toured_space),
            "noise": {"s00": "not a server"},
            "scalar": 7,
        }
        found = _spaces_in(funcargs)
        assert len(found) == 2
        assert all(space is toured_space for space in found)

    def test_empty_fixtures_find_nothing(self):
        assert _spaces_in({"request": object(), "n": 3}) == []


class TestDumpArtifacts:
    def test_dump_writes_journal_and_trace_per_space(
        self, toured_space, tmp_path
    ):
        written = _dump_chaos_artifacts(
            "tests/faults/test_x.py::TestY::test_z[inmemory]",
            [toured_space, toured_space],  # duplicates collapse
            str(tmp_path),
        )
        assert len(written) == 2
        journal_path, trace_path = written
        assert journal_path.endswith(".journal.json")
        assert trace_path.endswith(".trace.json")

        dump = json.loads((tmp_path / journal_path.rsplit("/", 1)[-1]).read_text())
        records = [JournalRecord.from_dict(d) for d in dump["records"]]
        assert any(r.kind == "naplet-arrive" for r in records)

        trace = json.loads((tmp_path / trace_path.rsplit("/", 1)[-1]).read_text())
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "hop" in names

    def test_nodeid_is_sanitized_into_the_filename(self, toured_space, tmp_path):
        written = _dump_chaos_artifacts(
            "tests/a.py::T::t[tcp]", [toured_space], str(tmp_path)
        )
        for path in written:
            name = path.rsplit("/", 1)[-1]
            assert "::" not in name and "[" not in name
            assert name.startswith("tests_a.py_T_t_tcp")

    def test_no_spaces_writes_nothing(self, tmp_path):
        assert _dump_chaos_artifacts("n", [], str(tmp_path)) == []
        assert list(tmp_path.iterdir()) == []
