"""CodeBase / CodeBaseRegistry: bundling and registration."""

from __future__ import annotations

import pytest

from repro.codeshipping.codebase import SHIPPING_STAMP, CodeBase, CodeBaseRegistry
from repro.core.errors import CodeShippingError
from tests.transport.shipped_fixture import StampedPayload


class TestCodeBase:
    def test_needs_name(self):
        with pytest.raises(CodeShippingError):
            CodeBase("")

    def test_add_source_and_read_back(self):
        codebase = CodeBase("cb")
        codebase.add_source("mod", "X = 1\n")
        assert codebase.source_of("mod") == "X = 1\n"
        assert "mod" in codebase

    def test_duplicate_module_rejected(self):
        codebase = CodeBase("cb")
        codebase.add_source("mod", "X = 1\n")
        with pytest.raises(CodeShippingError):
            codebase.add_source("mod", "X = 2\n")

    def test_missing_module_raises(self):
        with pytest.raises(CodeShippingError):
            CodeBase("cb").source_of("ghost")

    def test_add_class_captures_module_and_stamps(self):
        codebase = CodeBase("cb-stamp")
        codebase.add_class(StampedPayload)
        stamp = StampedPayload.__dict__.get(SHIPPING_STAMP) or getattr(
            StampedPayload, SHIPPING_STAMP
        )
        assert stamp[0] == "cb-stamp"
        assert stamp[2] == "StampedPayload"
        assert StampedPayload.__module__ in codebase

    def test_total_bytes(self):
        codebase = CodeBase("cb")
        codebase.add_source("m", "x = 'é'\n")
        assert codebase.total_bytes == len("x = 'é'\n".encode())

    def test_dedents_source(self):
        codebase = CodeBase("cb")
        codebase.add_source("m", "    X = 1\n")
        assert codebase.source_of("m") == "X = 1\n"


class TestRegistry:
    def test_create_and_get(self):
        registry = CodeBaseRegistry()
        codebase = registry.create("cb")
        assert registry.get("cb") is codebase
        assert "cb" in registry
        assert registry.names() == ["cb"]

    def test_duplicate_create_rejected(self):
        registry = CodeBaseRegistry()
        registry.create("cb")
        with pytest.raises(CodeShippingError):
            registry.create("cb")

    def test_add_existing_codebase(self):
        registry = CodeBaseRegistry()
        registry.add(CodeBase("external"))
        assert "external" in registry
        with pytest.raises(CodeShippingError):
            registry.add(CodeBase("external"))

    def test_unknown_codebase_raises(self):
        with pytest.raises(CodeShippingError):
            CodeBaseRegistry().get("ghost")
