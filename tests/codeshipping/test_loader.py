"""RestrictedLoader: best-effort confinement of shipped source."""

from __future__ import annotations

import pytest

from repro.codeshipping.loader import (
    DEFAULT_ALLOWED_IMPORTS,
    DENIED_BUILTINS,
    RestrictedLoader,
)
from repro.core.errors import CodeShippingError


@pytest.fixture
def loader():
    return RestrictedLoader()


class TestExecution:
    def test_executes_classes_and_functions(self, loader):
        module = loader.execute(
            "class A:\n    x = 1\n\ndef f(n):\n    return n + 1\n", "m1"
        )
        assert module.A.x == 1
        assert module.f(2) == 3

    def test_module_not_in_sys_modules(self, loader):
        import sys

        loader.execute("y = 2", "isolated_mod_xyz")
        assert "isolated_mod_xyz" not in sys.modules

    def test_allowed_imports_work(self, loader):
        module = loader.execute("import math\nv = math.sqrt(9)", "m2")
        assert module.v == 3.0

    def test_allowed_submodule_import(self, loader):
        module = loader.execute(
            "from repro.core.naplet_id import NapletID\n"
            "nid = NapletID.parse('a@h:240101120000:0')\n",
            "m3",
        )
        assert str(module.nid) == "a@h:240101120000:0"

    def test_syntax_error_wrapped(self, loader):
        with pytest.raises(CodeShippingError):
            loader.execute("def broken(:", "bad")

    def test_runtime_error_wrapped(self, loader):
        with pytest.raises(CodeShippingError):
            loader.execute("raise ValueError('boom')", "boom")


class TestConfinement:
    @pytest.mark.parametrize("module", ["os", "sys", "subprocess", "socket", "pickle"])
    def test_denied_imports(self, loader, module):
        with pytest.raises(CodeShippingError):
            loader.execute(f"import {module}", f"deny_{module}")

    def test_denied_submodule_of_denied_root(self, loader):
        with pytest.raises(CodeShippingError):
            loader.execute("import os.path", "deny_os_path")

    @pytest.mark.parametrize("name", sorted(DENIED_BUILTINS))
    def test_denied_builtins_absent(self, loader, name):
        with pytest.raises(CodeShippingError):
            loader.execute(f"x = {name}", f"builtin_{name}")

    def test_custom_allowlist(self):
        loader = RestrictedLoader(allowed_imports=("math",))
        loader.execute("import math", "ok")
        with pytest.raises(CodeShippingError):
            loader.execute("import repro", "denied_repro")

    def test_safe_builtins_still_available(self, loader):
        module = loader.execute(
            "vals = sorted([3, 1, 2])\ntext = str(len(vals))", "safe"
        )
        assert module.vals == [1, 2, 3]
        assert module.text == "3"

    def test_default_allowlist_contents(self):
        assert "repro" in DEFAULT_ALLOWED_IMPORTS
        assert "os" not in DEFAULT_ALLOWED_IMPORTS
