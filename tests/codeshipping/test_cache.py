"""CodeCache: lazy resolution, fetch accounting, eager installs."""

from __future__ import annotations

import pytest

from repro.codeshipping.codebase import CodeBaseRegistry, CodeCache
from repro.core.errors import CodeShippingError

SOURCE = """
class Widget:
    kind = "shipped"

    def __init__(self, n):
        self.n = n

class Outer:
    class Inner:
        tag = "nested"

NOT_A_CLASS = 42
"""


@pytest.fixture
def registry():
    reg = CodeBaseRegistry()
    codebase = reg.create("cb://widgets")
    codebase.add_source("widgets", SOURCE)
    return reg


class TestResolution:
    def test_miss_then_hit(self, registry):
        cache = CodeCache(registry)
        widget_cls = cache.resolve("cb://widgets", "widgets", "Widget")
        assert widget_cls.kind == "shipped"
        assert (cache.hits, cache.misses) == (0, 1)
        again = cache.resolve("cb://widgets", "widgets", "Widget")
        assert again is widget_cls
        assert (cache.hits, cache.misses) == (1, 1)

    def test_nested_qualname(self, registry):
        cache = CodeCache(registry)
        inner = cache.resolve("cb://widgets", "widgets", "Outer.Inner")
        assert inner.tag == "nested"

    def test_resolved_class_is_stamped_for_reshipping(self, registry):
        from repro.codeshipping.codebase import SHIPPING_STAMP

        cache = CodeCache(registry)
        cls = cache.resolve("cb://widgets", "widgets", "Widget")
        assert getattr(cls, SHIPPING_STAMP) == ("cb://widgets", "widgets", "Widget")

    def test_missing_qualname_raises(self, registry):
        cache = CodeCache(registry)
        with pytest.raises(CodeShippingError):
            cache.resolve("cb://widgets", "widgets", "Ghost")

    def test_non_class_target_raises(self, registry):
        cache = CodeCache(registry)
        with pytest.raises(CodeShippingError):
            cache.resolve("cb://widgets", "widgets", "NOT_A_CLASS")

    def test_unknown_codebase_raises(self, registry):
        cache = CodeCache(registry)
        with pytest.raises(CodeShippingError):
            cache.resolve("cb://ghost", "widgets", "Widget")

    def test_per_cache_isolation(self, registry):
        """Two caches (two 'servers') each resolve their own class object."""
        a, b = CodeCache(registry), CodeCache(registry)
        cls_a = a.resolve("cb://widgets", "widgets", "Widget")
        cls_b = b.resolve("cb://widgets", "widgets", "Widget")
        assert cls_a is not cls_b
        assert a.misses == b.misses == 1


class TestFetchObserver:
    def test_observer_called_on_miss_only(self, registry):
        fetches = []
        cache = CodeCache(registry, fetch_observer=lambda cb, mod, n: fetches.append((cb, mod, n)))
        cache.resolve("cb://widgets", "widgets", "Widget")
        cache.resolve("cb://widgets", "widgets", "Outer")
        assert len(fetches) == 1
        cb, mod, nbytes = fetches[0]
        assert (cb, mod) == ("cb://widgets", "widgets")
        assert nbytes == len(registry.get("cb://widgets").source_of("widgets").encode())


class TestEagerInstall:
    def test_install_source_preempts_fetch(self, registry):
        empty_registry = CodeBaseRegistry()
        cache = CodeCache(empty_registry)
        cache.install_source("cb://widgets", "widgets", SOURCE)
        cls = cache.resolve("cb://widgets", "widgets", "Widget")
        assert cls.kind == "shipped"
        assert cache.misses == 0

    def test_install_is_idempotent(self, registry):
        cache = CodeCache(CodeBaseRegistry())
        cache.install_source("cb", "m", "class A: pass")
        cache.install_source("cb", "m", "class A: pass")
        assert cache.cached_modules() == [("cb", "m")]
