"""tools/napletlog.py: filters, ordering, rendering, dump round-trip, CLI.

``tools/`` is not a package, so the module is loaded by file path.  The
pure halves (filter/order/render) run on synthetic records; the CLI runs
end to end against a dump file written by a live space.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import SpaceAdmin
from repro.simnet import line
from repro.telemetry.journal import SpaceJournal

from tests.conftest import CollectorNaplet

pytestmark = pytest.mark.health

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "napletlog.py"


@pytest.fixture(scope="module")
def napletlog():
    spec = importlib.util.spec_from_file_location("napletlog", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("napletlog", module)
    spec.loader.exec_module(module)
    return module


def _synthetic_records():
    journal = SpaceJournal("s00", time_source=lambda: 100.0)
    journal.append(kind="naplet-launch", naplet="n1", detail={"owner": "alice"})
    journal.append(kind="naplet-depart", naplet="n1", detail={"dest": "naplet://s01"})
    journal.append(kind="message-dead-lettered", category="deadletter", naplet="n2")
    other = SpaceJournal("s01", time_source=lambda: 200.0)
    other.append(kind="naplet-arrive", naplet="n1", trace_id="t1")
    return journal.snapshot() + other.snapshot()


class TestFilters:
    def test_filters_compose_with_and_semantics(self, napletlog):
        records = _synthetic_records()
        assert len(napletlog.filter_records(records)) == 4
        assert [
            r.kind for r in napletlog.filter_records(records, naplet="n1")
        ] == ["naplet-launch", "naplet-depart", "naplet-arrive"]
        assert [
            r.kind
            for r in napletlog.filter_records(records, naplet="n1", server="s01")
        ] == ["naplet-arrive"]
        assert [
            r.kind for r in napletlog.filter_records(records, category="deadletter")
        ] == ["message-dead-lettered"]
        assert [
            r.kind for r in napletlog.filter_records(records, since=150.0)
        ] == ["naplet-arrive"]
        assert len(napletlog.filter_records(records, until=150.0)) == 3

    def test_journey_filter_resolves_naplet_to_its_trace(self, napletlog):
        records = _synthetic_records()
        journey = napletlog.journey_records(records, "n1")
        assert [r.kind for r in journey] == [
            "naplet-launch",
            "naplet-depart",
            "naplet-arrive",
        ]
        # ...and a trace id picks up records stamped with it.
        assert [r.kind for r in napletlog.journey_records(records, "t1")] == [
            "naplet-arrive"
        ]

    def test_order_records_causal_vs_wall(self, napletlog):
        records = _synthetic_records()
        causal = napletlog.order_records(records, causal=True)
        wall = napletlog.order_records(records, causal=False)
        assert [r.kind for r in causal] == [
            "naplet-launch",
            "naplet-depart",
            "message-dead-lettered",
            "naplet-arrive",
        ]
        assert causal == wall  # no skew here: the two orders agree

    def test_render_lines_has_header_and_count(self, napletlog):
        lines = napletlog.render_lines(_synthetic_records())
        assert lines[0].startswith("hlc")
        assert lines[-1] == "(4 records)"
        assert len(lines) == 6


class TestDumpRoundTrip:
    def test_dump_then_load_preserves_records(self, napletlog, tmp_path):
        records = _synthetic_records()
        path = tmp_path / "journal.json"
        napletlog.dump_records(str(path), records)
        loaded = napletlog.load_records(str(path))
        assert loaded == records

    def test_load_accepts_a_bare_list(self, napletlog, tmp_path):
        records = _synthetic_records()
        path = tmp_path / "bare.json"
        path.write_text(
            json.dumps([r.describe() for r in records]), encoding="utf-8"
        )
        assert napletlog.load_records(str(path)) == records


class TestCli:
    @pytest.fixture()
    def dumpfile(self, napletlog, space, tmp_path):
        """A dump of a live 3-server journey, plus the tour's naplet id."""
        _network, servers = space(line(3, prefix="s"))
        listener = repro.NapletListener()
        agent = CollectorNaplet("cli-tour")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(
                    ["s01", "s02"], post_action=ResultReport("visited")
                )
            )
        )
        nid = servers["s00"].launch(agent, owner="alice", listener=listener)
        listener.next_report(timeout=15)
        admin = SpaceAdmin(servers)
        assert admin.wait_space_idle()
        path = tmp_path / "space.json"
        napletlog.dump_records(str(path), admin.harvest_journal())
        return str(path), str(nid)

    def test_journey_query_reconstructs_the_route(
        self, napletlog, dumpfile, capsys
    ):
        path, nid = dumpfile
        assert (
            napletlog.main([path, "--journey", nid, "--kind", "naplet-arrive",
                            "--causal"])
            == 0
        )
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if "naplet-arrive" in l]
        assert [l.split()[1] for l in lines] == ["s01", "s02"]

    def test_limit_keeps_the_tail(self, napletlog, dumpfile, capsys):
        path, _nid = dumpfile
        assert napletlog.main([path, "--limit", "2", "--causal"]) == 0
        out = capsys.readouterr().out
        assert "(2 records)" in out

    def test_chrome_output_is_a_valid_trace(
        self, napletlog, dumpfile, tmp_path, capsys
    ):
        path, nid = dumpfile
        trace_path = tmp_path / "trace.json"
        assert (
            napletlog.main([path, "--journey", nid, "--chrome", str(trace_path)])
            == 0
        )
        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert {"hop", "landing"} <= names

    def test_no_input_is_an_error(self, napletlog):
        with pytest.raises(SystemExit):
            napletlog.main([])


class TestLoadRecords:
    """Observatory records (DESIGN.md §6.8) flow through the same CLI."""

    def _dump_with_load(self, napletlog, tmp_path):
        journal = SpaceJournal("s00", time_source=lambda: 100.0)
        journal.append(kind="naplet-launch", naplet="n1")
        journal.append(
            kind="load",
            category="load",
            naplet="n1",
            detail={"pattern": "alt", "order": [1, 0], "changed": True},
        )
        journal.append(
            kind="load-digest",
            category="load",
            detail={"peer": "s01", "score": 3.0},
        )
        path = tmp_path / "load.json"
        napletlog.dump_records(str(path), journal.snapshot())
        return str(path)

    def test_kind_load_selects_only_ordering_decisions(
        self, napletlog, tmp_path, capsys
    ):
        path = self._dump_with_load(napletlog, tmp_path)
        assert napletlog.main([path, "--kind", "load"]) == 0
        out = capsys.readouterr().out
        assert "(1 records)" in out
        assert "order=[1, 0]" in out

    def test_category_load_selects_decisions_and_digests(
        self, napletlog, tmp_path, capsys
    ):
        path = self._dump_with_load(napletlog, tmp_path)
        assert napletlog.main([path, "--category", "load"]) == 0
        out = capsys.readouterr().out
        assert "(2 records)" in out

    def test_journey_plus_kind_load_reconstructs_one_decision(
        self, napletlog, tmp_path, capsys
    ):
        path = self._dump_with_load(napletlog, tmp_path)
        assert napletlog.main([path, "--journey", "n1", "--kind", "load"]) == 0
        out = capsys.readouterr().out
        assert "changed=True" in out
