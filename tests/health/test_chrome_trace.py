"""Chrome trace export: valid JSON, one consistent timeline, fault pins.

Covers the ISSUE acceptance: an exported trace for a 3-hop journey in a
chaos space must be valid JSON with monotonically consistent timestamps
and contain the injected-fault annotation events.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.faults import FaultPlan
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import ServerConfig, SpaceAdmin, deploy
from repro.simnet import VirtualNetwork, line
from repro.telemetry import chrome_trace, write_chrome_trace
from repro.telemetry.trace import Span

from tests.conftest import CollectorNaplet

pytestmark = [pytest.mark.health, pytest.mark.chaos]


@pytest.fixture
def chaos_journey(space):
    """3-hop tour under injected delays: (admin, journey, fault_records)."""
    plan = FaultPlan(seed=13).delay(0.002)
    network, servers = space(
        VirtualNetwork(line(4, prefix="s"), fault_plan=plan),
        config=ServerConfig(health_cadence=0.05),
    )
    listener = repro.NapletListener()
    agent = CollectorNaplet("trace-tour")
    agent.set_itinerary(
        Itinerary(
            SeqPattern.of_servers(
                ["s01", "s02", "s03"], post_action=ResultReport("visited")
            )
        )
    )
    admin = SpaceAdmin(servers)
    nid = servers["s00"].launch(agent, owner="alice", listener=listener)
    listener.next_report(timeout=15)
    assert admin.wait_space_idle()
    return admin, admin.journey(nid), network.fault_records()


def _non_meta(trace: dict) -> list[dict]:
    return [e for e in trace["traceEvents"] if e["ph"] != "M"]


class TestChromeTrace:
    def test_three_hop_chaos_trace_is_valid_and_consistent(self, chaos_journey):
        admin, journey, records = chaos_journey
        assert records, "the fault plan injected nothing?"
        trace = chrome_trace(
            journey,
            profiles=admin.top_naplets_by_cpu(),
            fault_records=records,
        )
        # Valid JSON end to end.
        decoded = json.loads(json.dumps(trace))
        assert decoded["displayTimeUnit"] == "ms"
        events = _non_meta(decoded)
        # Monotonically consistent: sorted, non-negative, shared origin.
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        assert all(t >= 0 for t in timestamps)
        # The journey's hops and landings are there as complete events.
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "hop" in names and "landing" in names
        assert sum(1 for e in events if e["ph"] == "X" and e["name"] == "hop") == 3
        # Injected faults are pinned as instant annotations.
        faults = [e for e in events if e["ph"] == "i"]
        assert faults and all(e["cat"] == "fault" for e in faults)
        assert all(e["args"]["labels"] == ["delay"] for e in faults)

    def test_metadata_names_every_process_and_thread(self, chaos_journey):
        _admin, journey, records = chaos_journey
        trace = chrome_trace(journey, fault_records=records)
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        named_pids = {
            e["pid"] for e in metadata if e["name"] == "process_name"
        }
        used_pids = {e["pid"] for e in _non_meta(trace)}
        assert used_pids <= named_pids
        process_names = {
            e["args"]["name"] for e in metadata if e["name"] == "process_name"
        }
        assert {"s00", "s01", "fault-injector"} <= process_names

    def test_write_chrome_trace_round_trips_through_disk(self, chaos_journey, tmp_path):
        _admin, journey, records = chaos_journey
        path = tmp_path / "journey.json"
        written = write_chrome_trace(str(path), journey, fault_records=records)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == json.loads(json.dumps(written))
        assert loaded["traceEvents"]

    def test_profile_samples_become_counter_events(self):
        from repro.health.profile import ResourceProfile, ResourceSample

        profile = ResourceProfile("nap-1")
        for i in range(3):
            profile.append(
                ResourceSample(
                    wall=1000.0 + i,
                    mono=float(i),
                    cpu_seconds=0.1 * i,
                    wall_seconds=float(i),
                    messages_sent=i,
                    message_bytes=100 * i,
                )
            )
        trace = chrome_trace(profiles=[("s01", profile)])
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 3
        assert counters[0]["name"] == "resources nap-1"
        assert counters[-1]["args"] == {"cpu_seconds": 0.2, "message_bytes": 200}

    def test_error_spans_keep_their_status(self):
        span = Span(
            trace_id="t",
            span_id="s",
            parent_id=None,
            name="hop",
            server="a",
            start_wall=1.0,
            start_mono=1.0,
            duration=0.1,
            status="error",
        )
        trace = chrome_trace([span])
        event = _non_meta(trace)[0]
        assert event["cat"] == "span,error"
        assert event["args"]["status"] == "error"

    def test_empty_inputs_yield_an_empty_but_valid_trace(self):
        trace = chrome_trace([])
        assert trace["traceEvents"] == []
        json.dumps(trace)


class TestInstantEvents:
    """Regression: dead-letter transitions and Alt failovers render as
    instant (``"i"``) events pinned to their server's row."""

    @staticmethod
    def _event(kind: str, mono: float = 1.0, **detail):
        from repro.util.eventlog import EventRecord

        return EventRecord(kind=kind, detail=detail, wall=1000.0 + mono, mono=mono)

    def test_instant_kinds_become_pinned_instants(self):
        events = [
            ("s00", self._event("message-dead-lettered", 1.0, target="n1")),
            ("s00", self._event("dead-letters-requeued", 2.0, delivered=3)),
            ("s01", self._event("alt-failover", 3.0, failed="s02", error="down")),
            ("s01", self._event("naplet-launch", 4.0, naplet="n1")),  # not instant
        ]
        trace = chrome_trace(events=events)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == [
            "message-dead-lettered",
            "dead-letters-requeued",
            "alt-failover",
        ]
        assert all(e["cat"] == "event" and e["s"] == "t" for e in instants)
        assert instants[0]["args"] == {"target": "n1"}
        assert instants[2]["args"] == {"failed": "s02", "error": "down"}
        # Each instant pins to its server's process row.
        names_by_pid = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names_by_pid[instants[0]["pid"]] == "s00"
        assert names_by_pid[instants[2]["pid"]] == "s01"
        json.dumps(trace)

    def test_instants_share_the_monotonic_origin_with_spans(self):
        span = Span(
            trace_id="t", span_id="s", parent_id=None, name="hop", server="s00",
            start_wall=1001.0, start_mono=1.0, duration=0.5,
        )
        trace = chrome_trace(
            [span], events=[("s00", self._event("alt-failover", 1.25))]
        )
        by_ph = {e["ph"]: e for e in _non_meta(trace)}
        assert by_ph["X"]["ts"] == 0.0
        assert by_ph["i"]["ts"] == pytest.approx(0.25e6)

    def test_journal_records_render_as_instants(self):
        from repro.telemetry import journal_chrome_trace
        from repro.telemetry.journal import SpaceJournal

        journal = SpaceJournal("s00")
        journal.observe_event(self._event("message-dead-lettered", 1.0, target="n1"))
        journal.observe_event(self._event("dead-letters-requeued", 2.0, requeued=1))
        journal.observe_event(self._event("naplet-arrive", 3.0, naplet="n1"))
        trace = journal_chrome_trace(journal.snapshot())
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == [
            "message-dead-lettered",
            "dead-letters-requeued",
        ]

    def test_live_alt_failover_lands_in_journal_and_trace(self, space):
        """A partitioned Alt primary burns over to its mirror; the burn is
        journaled as an ``alt-failover`` event and rendered as an instant."""
        import repro
        from repro.faults import FaultPlan, RetryPolicy
        from repro.itinerary import Itinerary
        from repro.itinerary.pattern import alt, seq, singleton
        from repro.simnet import full_mesh
        from repro.telemetry import journal_chrome_trace

        plan = FaultPlan(seed=11).partition("s02")
        network, servers = space(
            VirtualNetwork(full_mesh(4, prefix="s"), fault_plan=plan),
            config=ServerConfig(
                migration_retry=RetryPolicy(
                    max_attempts=3, base_delay=0.005, multiplier=1.5,
                    max_delay=0.02, jitter=0.0,
                )
            ),
        )
        listener = repro.NapletListener()
        agent = CollectorNaplet("mirror-tour")
        agent.set_itinerary(
            Itinerary(
                seq(
                    alt("s02", "s01"),
                    singleton("s03", post_action=ResultReport("visited")),
                )
            )
        )
        servers["s00"].launch(agent, owner="alice", listener=listener)
        report = listener.next_report(timeout=15)
        assert report.payload == ["s01", "s03"]
        admin = SpaceAdmin(servers)
        assert admin.wait_space_idle()
        burns = admin.harvest_journal(kind="alt-failover")
        assert burns and burns[0].detail["failed"] == "s02"
        trace = journal_chrome_trace(admin.harvest_journal())
        instants = [e for e in _non_meta(trace) if e["ph"] == "i"]
        assert any(e["name"] == "alt-failover" for e in instants)
