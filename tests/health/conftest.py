"""Agents and fixtures for the health-plane suite.

Module-level agent classes so pickle can ship them by reference during
in-process migrations (same convention as the top-level conftest).
"""

from __future__ import annotations

import time

import repro


class WedgedNaplet(repro.Naplet):
    """Sleeps without checkpointing: no CPU, no messages — the watchdog's prey."""

    def on_start(self) -> None:
        while True:
            time.sleep(0.05)


class SleepyNaplet(repro.Naplet):
    """Stalls (no checkpoints) for a bounded nap, then wakes and finishes.

    Long enough asleep to trip the watchdog, awake soon after — the
    recovery path: the finding must clear once progress resumes/retires.
    """

    def __init__(self, name: str, nap_seconds: float = 0.4, **kwargs) -> None:
        super().__init__(name, **kwargs)
        self.nap_seconds = nap_seconds

    def on_start(self) -> None:
        time.sleep(self.nap_seconds)
        self.checkpoint()
        self.state.set("woke", True)


class BusyNaplet(repro.Naplet):
    """Burns CPU (checkpointing) for a bounded time, then travels on."""

    def __init__(self, name: str, busy_seconds: float = 0.3, **kwargs) -> None:
        super().__init__(name, **kwargs)
        self.busy_seconds = busy_seconds

    def on_start(self) -> None:
        deadline = time.monotonic() + self.busy_seconds
        total = 0
        while time.monotonic() < deadline:
            total += sum(i * i for i in range(2000))
            self.checkpoint()
        self.state.set("total", total)
        self.travel()
