"""Unit tests for ResourceProfile / ProfileTable (no servers involved)."""

from __future__ import annotations

import pytest

from repro.health.profile import ProfileTable, ResourceProfile, ResourceSample

pytestmark = pytest.mark.health


def sample(
    mono: float,
    cpu: float = 0.0,
    msgs: int = 0,
    nbytes: int = 0,
    wall: float | None = None,
) -> ResourceSample:
    return ResourceSample(
        wall=wall if wall is not None else 1000.0 + mono,
        mono=mono,
        cpu_seconds=cpu,
        wall_seconds=mono,
        messages_sent=msgs,
        message_bytes=nbytes,
    )


class TestResourceProfile:
    def test_first_sample_counts_as_progress(self):
        profile = ResourceProfile("nap-1")
        assert profile.append(sample(1.0)) is True
        assert profile.last_progress_mono == 1.0

    def test_identical_samples_show_no_progress(self):
        profile = ResourceProfile("nap-1")
        profile.append(sample(1.0, cpu=0.5))
        assert profile.append(sample(2.0, cpu=0.5)) is False
        assert profile.last_progress_mono == 1.0
        assert profile.stalled_for(5.0) == pytest.approx(4.0)

    def test_cpu_delta_is_progress(self):
        profile = ResourceProfile("nap-1")
        profile.append(sample(1.0, cpu=0.5))
        assert profile.append(sample(2.0, cpu=0.6)) is True
        assert profile.stalled_for(2.0) == 0.0

    def test_message_and_byte_deltas_are_progress(self):
        profile = ResourceProfile("nap-1")
        profile.append(sample(1.0, msgs=1, nbytes=10))
        assert profile.append(sample(2.0, msgs=2, nbytes=10)) is True
        assert profile.append(sample(3.0, msgs=2, nbytes=20)) is True
        assert profile.append(sample(4.0, msgs=2, nbytes=20)) is False

    def test_cpu_jitter_below_epsilon_is_not_progress(self):
        profile = ResourceProfile("nap-1")
        profile.append(sample(1.0, cpu=0.5))
        assert profile.append(sample(2.0, cpu=0.5 + 1e-9)) is False

    def test_window_bounds_samples(self):
        profile = ResourceProfile("nap-1", window=3)
        for i in range(10):
            profile.append(sample(float(i)))
        assert len(profile) == 3
        assert profile.samples[0].mono == 7.0

    def test_cpu_rate_and_bandwidth_over_window(self):
        profile = ResourceProfile("nap-1")
        profile.append(sample(0.0, cpu=0.0, nbytes=0))
        profile.append(sample(2.0, cpu=1.0, nbytes=2000))
        assert profile.cpu_rate() == pytest.approx(0.5)
        assert profile.bandwidth() == pytest.approx(1000.0)

    def test_rates_need_two_samples(self):
        profile = ResourceProfile("nap-1")
        assert profile.cpu_rate() == 0.0
        assert profile.bandwidth() == 0.0
        profile.append(sample(1.0, cpu=5.0))
        assert profile.cpu_rate() == 0.0

    def test_series_extracts_one_attribute(self):
        profile = ResourceProfile("nap-1")
        profile.append(sample(1.0, cpu=0.1))
        profile.append(sample(2.0, cpu=0.3))
        assert profile.series("cpu_seconds") == [(1.0, 0.1), (2.0, 0.3)]

    def test_describe_is_json_shaped(self):
        import json

        profile = ResourceProfile("nap-1")
        profile.append(sample(1.0, cpu=0.25, msgs=3, nbytes=99))
        described = json.loads(json.dumps(profile.describe()))
        assert described["naplet"] == "nap-1"
        assert described["cpu_seconds"] == 0.25
        assert described["messages_sent"] == 3
        assert described["resident"] is True


class TestProfileTable:
    def test_touch_creates_then_reuses(self):
        table = ProfileTable(capacity=4)
        first = table.touch("a")
        assert table.touch("a") is first
        assert len(table) == 1

    def test_capacity_evicts_least_recently_touched(self):
        table = ProfileTable(capacity=2)
        table.touch("a")
        table.touch("b")
        table.touch("a")  # refresh a; b is now oldest
        table.touch("c")
        assert table.get("b") is None
        assert table.get("a") is not None
        assert table.evicted == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ProfileTable(capacity=0)

    def test_mark_non_resident_flips_absentees(self):
        table = ProfileTable()
        table.touch("a")
        table.touch("b")
        table.mark_non_resident({"a"})
        assert table.get("a").resident is True
        assert table.get("b").resident is False

    def test_top_by_cpu_orders_hottest_first(self):
        table = ProfileTable()
        for nid, cpu in (("cold", 0.1), ("hot", 2.0), ("warm", 0.7)):
            table.touch(nid).append(sample(1.0, cpu=cpu))
        table.touch("empty")  # no samples: excluded
        top = table.top_by_cpu(2)
        assert [p.naplet_id for p in top] == ["hot", "warm"]

    def test_iteration_yields_profiles(self):
        table = ProfileTable()
        table.touch("a")
        table.touch("b")
        assert {p.naplet_id for p in table} == {"a", "b"}
