"""Journey.critical_path(): per-hop serialize/wire/landing/execute split."""

from __future__ import annotations

import pytest

from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.telemetry.journey import CriticalPath, HopBreakdown, stitch
from repro.telemetry.trace import Span

import repro
from tests.conftest import CollectorNaplet

pytestmark = pytest.mark.health


def _hop(
    span_id: str,
    start: float,
    duration: float,
    source: str,
    dest: str,
    serialize: float = 0.0,
) -> Span:
    return Span(
        trace_id="t1",
        span_id=span_id,
        parent_id=None,
        name="hop",
        server=source,
        start_wall=1000.0 + start,
        start_mono=start,
        duration=duration,
        attributes={"source": source, "dest": dest, "serialize_s": serialize},
    )


def _landing(span_id: str, parent: str, start: float, duration: float, server: str) -> Span:
    return Span(
        trace_id="t1",
        span_id=span_id,
        parent_id=parent,
        name="landing",
        server=server,
        start_wall=1000.0 + start,
        start_mono=start,
        duration=duration,
    )


class TestSegmentMath:
    def test_single_hop_attribution(self):
        spans = [
            _hop("h1", start=0.0, duration=1.0, source="a", dest="b", serialize=0.2),
            _landing("l1", parent="h1", start=0.5, duration=0.3, server="b"),
        ]
        path = stitch(spans).critical_path()
        assert len(path) == 1
        hop = path.hops[0]
        assert hop.serialize == pytest.approx(0.2)
        assert hop.landing == pytest.approx(0.3)
        assert hop.wire == pytest.approx(0.5)  # 1.0 - 0.2 - 0.3
        assert hop.execute == 0.0  # final hop
        assert hop.dominant == "wire"

    def test_execute_is_the_gap_between_hops(self):
        spans = [
            _hop("h1", start=0.0, duration=1.0, source="a", dest="b"),
            _hop("h2", start=3.0, duration=1.0, source="b", dest="c"),
        ]
        path = stitch(spans).critical_path()
        assert path.hops[0].execute == pytest.approx(2.0)  # 3.0 - (0.0 + 1.0)
        assert path.hops[1].execute == 0.0

    def test_wire_clamps_when_remote_clock_overshoots(self):
        # Landing longer than the hop (cross-host clocks): wire floors at 0.
        spans = [
            _hop("h1", start=0.0, duration=0.5, source="a", dest="b", serialize=0.1),
            _landing("l1", parent="h1", start=0.1, duration=0.9, server="b"),
        ]
        hop = stitch(spans).critical_path().hops[0]
        assert hop.wire == 0.0

    def test_hops_ordered_by_monotonic_start(self):
        spans = [
            _hop("h2", start=5.0, duration=1.0, source="b", dest="c"),
            _hop("h1", start=0.0, duration=1.0, source="a", dest="b"),
        ]
        path = stitch(spans).critical_path()
        assert [h.source for h in path.hops] == ["a", "b"]

    def test_totals_and_dominant_segment(self):
        path = CriticalPath(
            hops=(
                HopBreakdown("a", "b", total=1.0, serialize=0.1, wire=0.6, landing=0.3, execute=2.0),
                HopBreakdown("b", "c", total=1.0, serialize=0.2, wire=0.5, landing=0.3, execute=0.0),
            )
        )
        assert path.total == pytest.approx(4.0)
        totals = path.segment_totals()
        assert totals["wire"] == pytest.approx(1.1)
        assert path.dominant_segment() == "execute"

    def test_empty_journey_has_empty_path(self):
        path = stitch([]).critical_path()
        assert len(path) == 0
        assert path.dominant_segment() is None
        assert path.render() == "(no hops)"

    def test_render_lists_every_hop_and_the_journey_row(self):
        spans = [
            _hop("h1", start=0.0, duration=1.0, source="a", dest="b", serialize=0.2),
        ]
        text = stitch(spans).critical_path().render()
        assert "a -> b" in text
        assert "(journey)" in text
        assert "dominant" in text

    def test_bytes_column_reads_the_hop_span_attribute(self):
        spans = [
            _hop("h1", start=0.0, duration=1.0, source="a", dest="b"),
            _hop("h2", start=2.0, duration=1.0, source="b", dest="c"),
        ]
        spans[0].attributes["bytes"] = 1500
        spans[1].attributes["bytes"] = 2500
        path = stitch(spans).critical_path()
        assert [h.bytes for h in path.hops] == [1500, 2500]
        assert path.total_bytes == 4000
        text = path.render()
        assert "bytes" in text
        assert "4000" in text

    def test_bytes_default_to_zero_for_legacy_spans(self):
        path = stitch(
            [_hop("h1", start=0.0, duration=1.0, source="a", dest="b")]
        ).critical_path()
        assert path.hops[0].bytes == 0
        assert path.total_bytes == 0


class TestLiveJourney:
    def test_three_hop_tour_attributes_every_segment(self, small_line):
        """A real tour: serialize measured on the hop, landings matched,
        and the sum of parts never exceeds the hop total."""
        _network, servers = small_line
        listener = repro.NapletListener()
        agent = CollectorNaplet("cp")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(
                    ["s01", "s02", "s03"], post_action=ResultReport("visited")
                )
            )
        )
        from repro.server import SpaceAdmin

        admin = SpaceAdmin(servers)
        nid = servers["s00"].launch(agent, owner="alice", listener=listener)
        listener.next_report(timeout=10)
        assert admin.wait_space_idle()

        path = admin.journey(nid).critical_path()
        assert len(path) == 3
        assert [h.source for h in path.hops] == ["s00", "s01", "s02"]
        for hop in path.hops:
            assert hop.total > 0
            assert hop.serialize > 0  # navigator measured dumps()
            assert hop.landing > 0
            assert hop.serialize + hop.landing <= hop.total + 1e-9
        assert path.hops[-1].execute == 0.0
