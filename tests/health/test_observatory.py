"""The space load observatory: digests, the merged view, load-aware order.

Covers DESIGN.md §6.8 bottom-up: LoadDigest scoring and round-trips,
SpaceView HLC merging and staleness decay (stale → unknown, never idle),
the heartbeat's no-dial guarantee over already-open channels, and the
three-rung ordering fallback ladder with its journal evidence.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.health.observatory import LoadDigest, SpaceView
from repro.itinerary import Itinerary
from repro.itinerary.pattern import alt, seq
from repro.server import ServerConfig, SpaceAdmin
from repro.simnet import full_mesh, line
from repro.transport.base import Frame, FrameKind
from repro.util.hlc import HybridLogicalClock

from tests.conftest import CollectorNaplet

pytestmark = pytest.mark.health


def _digest(server: str, clock: HybridLogicalClock | None = None, **load) -> LoadDigest:
    clock = clock or HybridLogicalClock(server)
    return LoadDigest(server=server, seq=1, hlc=clock.now().encode(), **load)


def _warm_links(servers) -> None:
    """Open every directed in-memory link with a ping, as real traffic would."""
    for a in servers.values():
        for b in servers.values():
            if a is not b:
                a.transport.request(
                    Frame(kind=FrameKind.PING, source=a.urn, dest=b.urn)
                )


class TestLoadDigest:
    def test_score_sums_queue_depths_and_caps_cpu(self):
        digest = _digest(
            "s00", residents=2, active=1, worker_backlog=3,
            dead_letter_depth=1, cpu_rate=2.5,
        )
        assert digest.score() == pytest.approx(2 + 1 + 3 + 1 + 2.5)
        spinning = dataclasses.replace(digest, cpu_rate=500.0)
        assert spinning.score() == pytest.approx(2 + 1 + 3 + 1 + 8.0)

    def test_describe_from_dict_round_trip(self):
        digest = _digest("s01", residents=4, bandwidth=12.5, egress_bytes=900)
        assert LoadDigest.from_dict(digest.describe()) == digest

    def test_from_dict_defaults_missing_load_fields(self):
        sparse = LoadDigest.from_dict(
            {"server": "s02", "seq": 3, "hlc": _digest("s02").hlc}
        )
        assert sparse.residents == 0 and sparse.score() == 0.0


class TestSpaceView:
    def test_merge_keeps_only_strictly_newer_stamps(self):
        view = SpaceView()
        clock = HybridLogicalClock("s01")
        old = _digest("s01", clock, residents=1)
        new = _digest("s01", clock, residents=7)
        assert view.observe(new)
        # Duplicated and reordered heartbeats cannot roll the view back.
        assert not view.observe(new)
        assert not view.observe(old)
        assert view.digest("s01").residents == 7

    def test_stale_digest_decays_to_unknown_not_idle(self):
        view = SpaceView(stale_after=5.0)
        assert view.observe(_digest("s01"), now_mono=100.0)
        assert view.fresh_digest("s01", now_mono=104.0) is not None
        assert view.fresh_digest("s01", now_mono=106.0) is None
        # ...but the digest and its age are still queryable.
        assert view.digest("s01") is not None
        assert view.staleness("s01", now_mono=106.0) == pytest.approx(6.0)

    def test_describe_nulls_the_score_of_stale_peers(self):
        view = SpaceView(stale_after=1.0)
        view.observe(_digest("s01", residents=3), now_mono=0.0)
        fresh = view.describe(now_mono=0.5)["s01"]
        stale = view.describe(now_mono=2.0)["s01"]
        assert fresh["fresh"] and fresh["score"] == pytest.approx(3.0)
        assert not stale["fresh"] and stale["score"] is None

    def test_malformed_stamp_never_corrupts_the_view(self):
        view = SpaceView()
        bad = LoadDigest(server="s01", seq=1, hlc="not a stamp")
        assert not view.observe(bad)
        assert view.peers() == []

    def test_forget_and_unknown_peer(self):
        view = SpaceView()
        assert view.staleness("ghost") is None
        view.observe(_digest("s01"))
        view.forget("s01")
        assert view.peers() == []


class TestHeartbeat:
    def test_beat_reaches_only_already_open_channels(self, space):
        _net, servers = space(line(3, prefix="s"))
        # No traffic yet: no live links, so a beat sends nothing — the
        # observatory never dials.
        assert servers["s00"].observatory.beat_now() == 0
        _warm_links(servers)
        opened_before = servers["s00"].transport.connections_opened()
        assert servers["s00"].observatory.beat_now() == 2
        assert servers["s00"].transport.connections_opened() == opened_before
        for peer in ("s01", "s02"):
            assert servers[peer].observatory.view.digest("s00") is not None

    def test_receipt_is_journaled_and_gauged(self, space):
        _net, servers = space(line(2, prefix="s"))
        _warm_links(servers)
        servers["s00"].observatory.beat_now()
        records = servers["s01"].journal.records(kind="load-digest")
        assert records and records[-1].category == "load"
        assert records[-1].detail["peer"] == "s00"
        snapshot = servers["s01"].telemetry.registry.snapshot()
        assert snapshot.total("naplet_load_digests_received_total") >= 1.0
        family = snapshot.family("naplet_peer_load")
        assert any("s00" in str(labels) for labels in family.samples)

    def test_malformed_frame_is_rejected_politely(self, space):
        _net, servers = space(line(2, prefix="s"))
        reply = servers["s01"].observatory.handle_load_frame(
            Frame(
                kind=FrameKind.LOAD,
                source=servers["s00"].urn,
                dest=servers["s01"].urn,
                payload=b"garbage",
            )
        )
        assert pickle.loads(reply) == {
            "ok": False, "reason": "malformed load digest",
        }

    def test_dormant_observatory_acks_but_never_merges(self, space):
        _net, servers = space(
            line(2, prefix="s"), config=ServerConfig(observatory_enabled=False)
        )
        obs = servers["s01"].observatory
        assert not obs.enabled and obs._thread is None
        assert obs.beat_now() == 0
        digest = servers["s00"].observatory.local_digest()
        reply = obs.handle_load_frame(
            Frame(
                kind=FrameKind.LOAD,
                source=servers["s00"].urn,
                dest=servers["s01"].urn,
                payload=pickle.dumps(digest.describe()),
            )
        )
        assert pickle.loads(reply) == {"ok": True, "merged": False}
        assert obs.view.peers() == []

    def test_local_digest_counts_residency_and_dead_letters(self, space):
        _net, servers = space(line(2, prefix="s"))
        digest = servers["s00"].observatory.local_digest()
        assert digest.server == "s00"
        assert digest.residents == 0
        assert digest.dead_letter_depth == 0
        assert digest.stamp().node == "s00"


class TestOrderingLadder:
    """order_branches: rung by rung, then the live Alt integration."""

    @pytest.fixture()
    def mesh(self, space):
        _net, servers = space(full_mesh(3, prefix="s"))
        _warm_links(servers)
        return servers

    def _alt_pattern(self):
        return alt("s01", "s02")

    def test_rung1_dormant_or_static_config_returns_none(self, space):
        _net, servers = space(
            line(3, prefix="s"),
            config=ServerConfig(load_aware_navigation=False),
        )
        obs = servers["s00"].observatory
        agent = CollectorNaplet("r1")
        agent.set_itinerary(Itinerary(seq(self._alt_pattern())))
        assert obs.order_branches(agent, self._alt_pattern()) is None
        assert servers["s00"].journal.records(kind="load") == []

    def test_rung2_unknown_candidate_falls_back_and_journals_why(self, mesh):
        obs = mesh["s00"].observatory
        clock = mesh["s00"].journal.clock
        # s01 has a digest, s02 was never heard: static order, explained.
        obs.view.observe(_digest("s01", clock, residents=9))
        agent = CollectorNaplet("r2")
        agent.set_itinerary(Itinerary(seq(self._alt_pattern())))
        assert obs.order_branches(agent, self._alt_pattern()) is None
        record = mesh["s00"].journal.records(kind="load")[-1]
        assert record.detail["fallback"].startswith("s02: no digest")
        assert record.detail["changed"] is False
        assert obs.reroutes() == 0

    def test_rung2_stale_candidate_is_unknown_not_idle(self, mesh):
        obs = mesh["s00"].observatory
        clock = mesh["s00"].journal.clock
        obs.view.observe(_digest("s01", clock, residents=9))
        # s02 idle but heard long ago: must NOT win on its stale zero.
        obs.view.observe(_digest("s02", clock), now_mono=-1000.0)
        agent = CollectorNaplet("r2b")
        agent.set_itinerary(Itinerary(seq(self._alt_pattern())))
        assert obs.order_branches(agent, self._alt_pattern()) is None
        record = mesh["s00"].journal.records(kind="load")[-1]
        assert "stale" in record.detail["fallback"]

    def test_rung3_skew_reorders_and_counts_a_reroute(self, mesh):
        obs = mesh["s00"].observatory
        clock = mesh["s00"].journal.clock
        obs.view.observe(_digest("s01", clock, residents=5, active=3))
        obs.view.observe(_digest("s02", clock))
        agent = CollectorNaplet("r3")
        agent.set_itinerary(Itinerary(seq(self._alt_pattern())))
        assert obs.order_branches(agent, self._alt_pattern()) == (1, 0)
        assert obs.reroutes() == 1
        record = mesh["s00"].journal.records(kind="load")[-1]
        assert record.detail["order"] == [1, 0]
        assert record.detail["changed"] is True
        scores = {c["server"]: c["score"] for c in record.detail["candidates"]}
        assert scores["s01"] == pytest.approx(8.0)
        assert scores["s02"] == pytest.approx(0.0)

    def test_rung3_equal_scores_reproduce_declaration_order(self, mesh):
        obs = mesh["s00"].observatory
        clock = mesh["s00"].journal.clock
        obs.view.observe(_digest("s01", clock, residents=2))
        obs.view.observe(_digest("s02", clock, residents=2))
        agent = CollectorNaplet("r3b")
        agent.set_itinerary(Itinerary(seq(self._alt_pattern())))
        assert obs.order_branches(agent, self._alt_pattern()) == (0, 1)
        assert obs.reroutes() == 0
        assert mesh["s00"].journal.records(kind="load")[-1].detail["changed"] is False

    def test_local_server_is_always_fresh(self, mesh):
        obs = mesh["s00"].observatory
        clock = mesh["s00"].journal.clock
        obs.view.observe(_digest("s01", clock, residents=9))
        pattern = alt("s01", "s00")
        agent = CollectorNaplet("local")
        agent.set_itinerary(Itinerary(seq(pattern)))
        # s00 never appears in its own view, yet ordering works: the
        # local digest is computed on demand (stale_s == 0).
        assert obs.order_branches(agent, pattern) == (1, 0)

    def test_live_alt_prefers_the_less_loaded_mirror(self, mesh):
        obs = mesh["s00"].observatory
        clock = mesh["s00"].journal.clock
        obs.view.observe(_digest("s01", clock, residents=5, active=3))
        obs.view.observe(_digest("s02", clock))
        agent = CollectorNaplet("tour")
        agent.set_itinerary(Itinerary(seq(self._alt_pattern())))
        mesh["s00"].launch(agent, owner="test")
        admin = SpaceAdmin(mesh)
        assert admin.wait_space_idle()
        landed = [
            r for r in mesh["s02"].journal.snapshot() if r.kind == "naplet-arrive"
        ]
        assert landed, "the idle mirror should have been chosen first"
        assert not [
            r for r in mesh["s01"].journal.snapshot() if r.kind == "naplet-arrive"
        ]
        assert obs.reroutes() == 1


class TestSurfaces:
    def test_space_admin_exposes_every_observatory(self, space):
        _net, servers = space(line(2, prefix="s"))
        _warm_links(servers)
        servers["s01"].observatory.beat_now()
        view = SpaceAdmin(servers).space_view()
        assert sorted(view) == ["s00", "s01"]
        assert view["s00"]["enabled"] is True
        assert "s01" in view["s00"]["peers"]

    def test_load_service_is_registered_and_answers(self, space):
        _net, servers = space(line(2, prefix="s"))
        manager = servers["s00"].resource_manager
        assert "load" in manager.open_service_names()
        service = manager._open_services["load"]
        assert service.status()["observatory"] == "enabled"
        assert service.digest()["server"] == "s00"
        assert "peers" in service.view()

    def test_describe_reports_lifecycle_and_local_digest(self, space):
        _net, servers = space(line(2, prefix="s"))
        info = servers["s00"].observatory.describe()
        assert info["enabled"] and info["server"] == "s00"
        assert info["local"]["server"] == "s00"
        assert info["reroutes"] == 0
