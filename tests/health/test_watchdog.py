"""The watchdog: stuck naplets, dead-letter backlogs, wedged servers.

The live tests drive a real space (background sampler thread); the
deterministic rule tests build a quiet space (huge cadence, so the
thread never fires) and call ``sample_now()`` by hand.
"""

from __future__ import annotations

import pytest

from repro.faults.deadletter import DeadLetter
from repro.health.findings import FindingKind, Severity
from repro.itinerary import Itinerary
from repro.itinerary.pattern import singleton
from repro.server import ServerConfig
from repro.util.concurrency import wait_until

from tests.health.conftest import WedgedNaplet

pytestmark = pytest.mark.health


def _launch_wedged(servers, dest: str = "s01"):
    agent = WedgedNaplet("wedged")
    agent.set_itinerary(Itinerary(singleton(dest)))
    return servers["s00"].launch(agent, owner="ops")


class TestStuckNaplet:
    def test_wedged_naplet_is_found_within_one_sampling_period(self, space):
        """ISSUE acceptance: a naplet that stops checkpointing gets flagged
        soon after the stuck deadline elapses."""
        from repro.simnet import line

        _network, servers = space(
            line(2, prefix="s"),
            config=ServerConfig(health_cadence=0.05, health_stuck_deadline=0.15),
        )
        nid = _launch_wedged(servers)
        plane = servers["s01"].health
        assert wait_until(lambda: plane.findings(), timeout=5.0)
        finding = plane.findings()[0]
        assert finding.kind == FindingKind.STUCK_NAPLET
        assert finding.subject == str(nid)
        assert finding.severity in (Severity.WARNING, Severity.CRITICAL)
        assert "no CPU/message progress" in finding.detail
        profile = plane.profile(nid)
        assert profile is not None and len(profile.samples) >= 2
        assert profile.latest.cpu_seconds == pytest.approx(0.0, abs=0.05)

    def test_finding_escalates_to_critical_past_twice_the_deadline(self, space):
        from repro.simnet import line

        _network, servers = space(
            line(2, prefix="s"),
            config=ServerConfig(health_cadence=0.03, health_stuck_deadline=0.1),
        )
        _launch_wedged(servers)
        plane = servers["s01"].health
        assert wait_until(
            lambda: any(f.severity == Severity.CRITICAL for f in plane.findings()),
            timeout=5.0,
        )
        # Escalation reuses the finding: still exactly one per (kind, subject).
        assert len(plane.findings()) == 1

    def test_busy_naplet_is_never_flagged(self, space):
        from repro.simnet import line

        from tests.health.conftest import BusyNaplet

        _network, servers = space(
            line(2, prefix="s"),
            config=ServerConfig(health_cadence=0.03, health_stuck_deadline=0.2),
        )
        agent = BusyNaplet("busy", busy_seconds=0.6)
        agent.set_itinerary(Itinerary(singleton("s01")))
        servers["s00"].launch(agent, owner="ops")
        assert servers["s01"].wait_idle(timeout=10.0)
        assert servers["s01"].health.findings() == []

    def test_finding_clears_when_the_naplet_recovers(self, space):
        from repro.simnet import line

        from tests.health.conftest import SleepyNaplet

        _network, servers = space(
            line(2, prefix="s"),
            config=ServerConfig(health_cadence=0.03, health_stuck_deadline=0.1),
        )
        agent = SleepyNaplet("sleepy", nap_seconds=0.5)
        agent.set_itinerary(Itinerary(singleton("s01")))
        servers["s00"].launch(agent, owner="ops")
        plane = servers["s01"].health
        assert wait_until(lambda: plane.findings(), timeout=5.0)
        # The nap ends, the naplet checkpoints and retires; the watchdog
        # must retire the finding with it.
        assert wait_until(lambda: not plane.findings(), timeout=5.0)
        resolved = plane.resolved_findings()
        assert any(f.kind == FindingKind.STUCK_NAPLET for f in resolved)


@pytest.fixture
def quiet_space(space):
    """2-host space whose sampler thread effectively never fires."""
    from repro.simnet import line

    network, servers = space(
        line(2, prefix="s"),
        config=ServerConfig(health_cadence=60.0, health_stuck_deadline=0.1),
    )
    return network, servers


class TestDeadLetterBacklog:
    def _bury(self, server, n: int = 1) -> None:
        for i in range(n):
            server.messenger.dead_letters.put(
                DeadLetter(message=f"msg-{i}", dest_urn="naplet://gone", reason="test")
            )

    def test_growing_backlog_raises_then_escalates(self, quiet_space):
        _network, servers = quiet_space
        plane = servers["s00"].health
        for _ in range(3):
            self._bury(servers["s00"], 1)
            plane.sample_now()
        kinds = {f.kind for f in plane.findings()}
        assert FindingKind.DEAD_LETTER_BACKLOG in kinds
        backlog = next(
            f for f in plane.findings() if f.kind == FindingKind.DEAD_LETTER_BACKLOG
        )
        assert backlog.severity == Severity.CRITICAL  # grew 3 samples running
        assert backlog.data["depth"] == 3

    def test_drained_backlog_clears_the_finding(self, quiet_space):
        _network, servers = quiet_space
        plane = servers["s00"].health
        self._bury(servers["s00"], 2)
        plane.sample_now()
        assert plane.findings()
        servers["s00"].messenger.dead_letters.drain()
        plane.sample_now()
        assert not plane.findings()


class _BackloggedTransport:
    """Duck-typed transport wrapper reporting a fixed worker backlog."""

    def __init__(self, inner, backlog: int) -> None:
        self._inner = inner
        self.backlog = backlog

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def worker_backlog(self, urn=None) -> int:
        return self.backlog


class TestWedgedServer:
    def test_sustained_worker_backlog_raises_critical(self, quiet_space, monkeypatch):
        _network, servers = quiet_space
        server = servers["s00"]
        monkeypatch.setattr(
            server, "transport", _BackloggedTransport(server.transport, 7)
        )
        plane = server.health
        plane.sample_now()  # streak 1: not yet
        assert not any(
            f.kind == FindingKind.WEDGED_SERVER for f in plane.findings()
        )
        plane.sample_now()  # streak 2: wedged
        wedged = next(
            f for f in plane.findings() if f.kind == FindingKind.WEDGED_SERVER
        )
        assert wedged.severity == Severity.CRITICAL
        assert wedged.data["worker_backlog"] == 7

    def test_backlog_recovery_clears_the_finding(self, quiet_space, monkeypatch):
        _network, servers = quiet_space
        server = servers["s00"]
        wrapper = _BackloggedTransport(server.transport, 5)
        monkeypatch.setattr(server, "transport", wrapper)
        plane = server.health
        plane.sample_now()
        plane.sample_now()
        assert any(f.kind == FindingKind.WEDGED_SERVER for f in plane.findings())
        wrapper.backlog = 0
        plane.sample_now()
        assert not any(f.kind == FindingKind.WEDGED_SERVER for f in plane.findings())


class TestInstruments:
    def test_findings_are_counted_and_gauged(self, quiet_space):
        _network, servers = quiet_space
        server = servers["s00"]
        server.messenger.dead_letters.put(
            DeadLetter(message="m", dest_urn="naplet://gone", reason="test")
        )
        server.health.sample_now()
        snap = server.telemetry.registry.snapshot()
        assert snap.total("naplet_health_findings_total") >= 1
        assert snap.total("naplet_health_active_findings") == len(
            server.health.findings()
        )

    def test_describe_is_json_shaped(self, quiet_space):
        import json

        _network, servers = quiet_space
        plane = servers["s00"].health
        plane.sample_now()
        described = json.loads(json.dumps(plane.describe()))
        assert described["enabled"] is True
        assert described["server"] == "s00"
        assert described["samples_taken"] >= 1


class TestDormantPlane:
    def test_health_disabled_means_no_thread_and_empty_queries(self, space):
        from repro.simnet import line

        _network, servers = space(
            line(2, prefix="s"), config=ServerConfig(health_enabled=False)
        )
        plane = servers["s00"].health
        assert plane.enabled is False
        assert plane._thread is None
        plane.sample_now()  # no-op, not an error
        assert plane.samples_taken == 0
        assert plane.findings() == []
        assert plane.describe()["enabled"] is False


class TestCriticalEvidence:
    """CRITICAL findings carry a flight-recorder slice as evidence
    (DESIGN.md §6.5): the journal records mentioning the subject, frozen
    at the moment of escalation."""

    def _bury(self, server, n: int = 1) -> None:
        for i in range(n):
            server.messenger.dead_letters.put(
                DeadLetter(message=f"msg-{i}", dest_urn="naplet://gone", reason="test")
            )

    def test_critical_finding_attaches_a_journal_slice(self, quiet_space):
        from repro.telemetry.journal import JournalRecord

        _network, servers = quiet_space
        server = servers["s00"]
        plane = server.health
        for _ in range(3):
            self._bury(server, 1)
            plane.sample_now()
        backlog = next(
            f for f in plane.findings() if f.kind == FindingKind.DEAD_LETTER_BACKLOG
        )
        assert backlog.severity == Severity.CRITICAL
        evidence = [
            JournalRecord.from_dict(d) for d in backlog.data["journal_slice"]
        ]
        assert evidence
        assert all(r.mentions("s00") for r in evidence)
        # The WARNING raised two samples earlier was journaled, so the
        # evidence shows the finding's own history leading to escalation.
        assert any(r.kind == "health-finding" for r in evidence)

    def test_warning_findings_carry_no_slice(self, quiet_space):
        _network, servers = quiet_space
        server = servers["s00"]
        self._bury(server, 1)
        server.health.sample_now()
        backlog = next(
            f
            for f in server.health.findings()
            if f.kind == FindingKind.DEAD_LETTER_BACKLOG
        )
        assert backlog.severity == Severity.WARNING
        assert "journal_slice" not in backlog.data

    def test_still_critical_refresh_keeps_the_escalation_slice(self, quiet_space):
        _network, servers = quiet_space
        server = servers["s00"]
        plane = server.health
        for _ in range(3):
            self._bury(server, 1)
            plane.sample_now()
        backlog = next(
            f for f in plane.findings() if f.kind == FindingKind.DEAD_LETTER_BACKLOG
        )
        frozen = backlog.data["journal_slice"]
        assert frozen
        # New journal traffic after escalation must not dilute the evidence.
        server.events.record("poke", naplet="nap-after")
        self._bury(server, 1)
        plane.sample_now()  # still CRITICAL: a refresh, not a fresh raise
        refreshed = next(
            f for f in plane.findings() if f.kind == FindingKind.DEAD_LETTER_BACKLOG
        )
        assert refreshed.severity == Severity.CRITICAL
        assert refreshed.data["journal_slice"] == frozen
        assert not any(
            d["kind"] == "poke" for d in refreshed.data["journal_slice"]
        )

    def test_disabled_journal_means_no_slice_key(self, space):
        from repro.simnet import line

        _network, servers = space(
            line(2, prefix="s"),
            config=ServerConfig(
                health_cadence=60.0,
                health_stuck_deadline=0.1,
                journal_enabled=False,
            ),
        )
        server = servers["s00"]
        for _ in range(3):
            self._bury(server, 1)
            server.health.sample_now()
        backlog = next(
            f
            for f in server.health.findings()
            if f.kind == FindingKind.DEAD_LETTER_BACKLOG
        )
        assert backlog.severity == Severity.CRITICAL
        assert "journal_slice" not in backlog.data
