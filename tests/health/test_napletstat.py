"""tools/napletstat.py: the renderer and the live --once acceptance path.

``tools/`` is not a package, so the module is loaded by file path.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.itinerary import Itinerary
from repro.itinerary.pattern import singleton
from repro.server import ServerConfig, SpaceAdmin
from repro.simnet import line
from repro.util.concurrency import wait_until

from tests.health.conftest import WedgedNaplet

pytestmark = pytest.mark.health

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "napletstat.py"


@pytest.fixture(scope="module")
def napletstat():
    spec = importlib.util.spec_from_file_location("napletstat", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("napletstat", module)
    spec.loader.exec_module(module)
    return module


class TestRender:
    def test_synthetic_rows_render_all_sections(self, napletstat):
        rows = [
            {
                "server": "s00",
                "status": {"health": "enabled"},
                "residents": 2,
                "health": {
                    "samples_taken": 10,
                    "dead_letter_depth": 3,
                    "findings": [
                        {
                            "kind": "stuck_naplet",
                            "severity": "warning",
                            "server": "s00",
                            "subject": "nap-1",
                            "detail": "no progress for 2s",
                            "first_seen": 1.0,
                        }
                    ],
                    "profiles": [
                        {
                            "naplet": "nap-1",
                            "resident": True,
                            "cpu_seconds": 1.5,
                            "cpu_rate": 0.4,
                            "bandwidth": 2048.0,
                            "messages_sent": 7,
                        },
                        {
                            "naplet": "nap-2",
                            "resident": False,
                            "cpu_seconds": 9.0,
                            "cpu_rate": 0.0,
                            "bandwidth": 0.0,
                            "messages_sent": 0,
                        },
                    ],
                },
            },
        ]
        output = napletstat.render(rows, top=5)
        assert "servers=1" in output
        assert "stuck_naplet" in output and "no progress for 2s" in output
        assert "dead letters space-wide: 3" in output
        # nap-2 has more CPU: listed first in the top table.
        assert output.index("nap-2") < output.index("nap-1@") if "nap-1@" in output else True
        lines = output.splitlines()
        top_rows = [l for l in lines if l.strip().startswith("nap-")]
        assert top_rows[0].strip().startswith("nap-2")

    def test_findings_sorted_most_severe_first(self, napletstat):
        rows = [
            {
                "server": "s00",
                "status": {"health": "enabled"},
                "health": {
                    "findings": [
                        {"kind": "a", "severity": "warning", "subject": "x",
                         "detail": "", "first_seen": 1.0},
                        {"kind": "b", "severity": "critical", "subject": "y",
                         "detail": "", "first_seen": 2.0},
                    ],
                    "profiles": [],
                },
            }
        ]
        output = napletstat.render(rows)
        assert output.index("critical") < output.index("warning")

    def test_unreachable_server_row_is_shown_not_fatal(self, napletstat):
        rows = [
            {"server": "s00", "error": "connection refused"},
            {"server": "s01", "status": {"health": "enabled"}, "health": {"profiles": []}},
        ]
        output = napletstat.render(rows)
        assert "unreachable: connection refused" in output
        assert "(space is healthy)" in output

    def test_empty_space_renders_placeholders(self, napletstat):
        output = napletstat.render([])
        assert "(no resource profiles yet)" in output
        assert "(space is healthy)" in output


class TestLiveDashboard:
    def test_once_renders_a_wedged_naplet_finding(self, napletstat, space):
        """ISSUE acceptance: the dashboard shows the stuck_naplet finding."""
        _network, servers = space(
            line(2, prefix="s"),
            config=ServerConfig(health_cadence=0.05, health_stuck_deadline=0.15),
        )
        agent = WedgedNaplet("wedged")
        agent.set_itinerary(Itinerary(singleton("s01")))
        servers["s00"].launch(agent, owner="ops")
        admin = SpaceAdmin(servers)
        assert wait_until(lambda: admin.space_findings(), timeout=5.0)

        rows = napletstat.rows_from_admin(admin)
        output = napletstat.render(rows)
        assert "stuck_naplet" in output
        assert "no CPU/message progress" in output
        assert "findings: 1" in output

    def test_rows_carry_wire_bytes_and_render_shows_them(self, napletstat, space):
        """Perf plane: the dashboard's in-B/out-B columns read the
        transport's per-endpoint byte counters."""
        import repro
        from repro.itinerary import ResultReport, SeqPattern
        from tests.conftest import CollectorNaplet

        _network, servers = space(line(2, prefix="s"))
        listener = repro.NapletListener()
        agent = CollectorNaplet("bytes-tour")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(["s01"], post_action=ResultReport("visited"))
            )
        )
        servers["s00"].launch(agent, owner="ops", listener=listener)
        listener.next_report(timeout=15)
        admin = SpaceAdmin(servers)
        assert admin.wait_space_idle()

        rows = napletstat.rows_from_admin(admin)
        by_server = {row["server"]: row["metrics"] for row in rows}
        assert by_server["s00"]["egress_bytes"] > 0  # shipped the naplet out
        assert by_server["s01"]["ingress_bytes"] > 0  # and s01 took it in
        output = napletstat.render(rows)
        assert "in-B" in output and "out-B" in output

    def test_render_tolerates_rows_without_wire_metrics(self, napletstat):
        # Probe harvests from older servers may lack the byte counters.
        rows = [{"server": "s00", "status": {}, "health": {"profiles": []}}]
        output = napletstat.render(rows)
        assert "s00" in output and "0.0" in output

    def test_rows_match_the_probe_harvest_shape(self, napletstat, space):
        """The renderer must accept harvest_via_probe rows unchanged."""
        import repro
        from repro.health import harvest_via_probe

        _network, servers = space(line(2, prefix="s"))
        listener = repro.NapletListener()
        rows = harvest_via_probe(
            servers["s00"], ["s00", "s01"], listener, timeout=15.0
        )
        assert len(rows) == 2
        # The probe carries the perf plane's wire-byte counters home too.
        for row in rows:
            assert "ingress_bytes" in row["metrics"]
            assert "egress_bytes" in row["metrics"]
        output = napletstat.render(rows)
        assert "servers=2" in output

    def test_cli_requires_demo_mode(self, napletstat):
        with pytest.raises(SystemExit):
            napletstat.main(["--once"])

    @pytest.mark.slow
    def test_demo_once_prints_a_frame(self, napletstat, capsys):
        assert napletstat.main(["--demo", "--once"]) == 0
        out = capsys.readouterr().out
        assert "napletstat" in out
        assert "top naplets by CPU" in out


class TestJourneyAndFollow:
    def _tour(self, servers):
        import repro
        from repro.itinerary import ResultReport, SeqPattern
        from tests.conftest import CollectorNaplet

        listener = repro.NapletListener()
        agent = CollectorNaplet("stat-tour")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(["s01"], post_action=ResultReport("visited"))
            )
        )
        nid = servers["s00"].launch(agent, owner="alice", listener=listener)
        listener.next_report(timeout=15)
        return nid

    def test_journal_tail_advances_watermarks(self, napletstat, space):
        _network, servers = space(line(2, prefix="s"))
        admin = SpaceAdmin(servers)
        nid = self._tour(servers)
        assert admin.wait_space_idle()
        watermarks: dict[str, int] = {}
        first = napletstat.journal_tail(admin, watermarks)
        assert first and watermarks
        # Nothing new: the same watermarks yield an empty tail...
        assert napletstat.journal_tail(admin, watermarks) == []
        # ...until fresh records are journaled.
        servers["s00"].events.record("poke", naplet=str(nid))
        fresh = napletstat.journal_tail(admin, watermarks)
        assert [r.kind for r in fresh] == ["poke"]

    def test_journal_tail_journey_filter(self, napletstat, space):
        _network, servers = space(line(2, prefix="s"))
        admin = SpaceAdmin(servers)
        nid = self._tour(servers)
        assert admin.wait_space_idle()
        records = napletstat.journal_tail(admin, {}, journey=str(nid))
        assert records
        assert all(
            r.naplet == str(nid) or r.mentions(str(nid)) for r in records
        )
        unrelated = napletstat.journal_tail(admin, {}, journey="no-such-journey")
        assert unrelated == []

    def test_render_journey_lists_records_or_a_hint(self, napletstat, space):
        _network, servers = space(line(2, prefix="s"))
        admin = SpaceAdmin(servers)
        nid = self._tour(servers)
        assert admin.wait_space_idle()
        records = napletstat.journal_tail(admin, {}, journey=str(nid))
        output = napletstat.render_journey(records, str(nid))
        assert f"journey {nid}" in output
        assert "naplet-depart" in output
        empty = napletstat.render_journey([], "ghost")
        assert "no records" in empty

    @pytest.mark.slow
    def test_demo_follow_tails_records(self, napletstat, capsys):
        assert napletstat.main(["--demo", "--follow", "--once"]) == 0
        out = capsys.readouterr().out
        assert "naplet-launch" in out
        # Tail mode is append-only: no screen-clear escape codes.
        assert "\x1b[2J" not in out


class TestSpaceViewPanel:
    """render_space_view: the observatory's who-sees-whom matrix."""

    def test_synthetic_view_renders_scores_and_unknowns(self, napletstat):
        view = {
            "s00": {
                "enabled": True,
                "load_aware": True,
                "reroutes": 2,
                "peers": {
                    "s01": {"fresh": True, "score": 3.0, "age_s": 0.1},
                    "s02": {"fresh": False, "score": None, "age_s": 9.0},
                },
            },
            "s01": {"enabled": True, "load_aware": False, "peers": {}},
        }
        output = napletstat.render_space_view(view)
        assert "space view" in output
        assert "3.0" in output          # fresh peer shows its score
        assert "?" in output            # stale peer decays to unknown
        assert "reroutes=2" in output
        assert "static order" in output  # load_aware off is called out

    def test_empty_view_renders_placeholder(self, napletstat):
        assert "no observatories" in napletstat.render_space_view({})

    def test_live_space_view_matrix(self, napletstat, space):
        from repro.simnet import line
        from repro.transport.base import Frame, FrameKind

        _net, servers = space(line(2, prefix="s"))
        for a in servers.values():
            for b in servers.values():
                if a is not b:
                    a.transport.request(
                        Frame(kind=FrameKind.PING, source=a.urn, dest=b.urn)
                    )
        for server in servers.values():
            server.observatory.beat_now()
        admin = SpaceAdmin(servers)
        output = napletstat.render_space_view(admin.space_view())
        row = next(l for l in output.splitlines() if l.strip().startswith("s00"))
        # s00 heard s01's heartbeat: two numeric cells, no unknowns.
        assert "?" not in row
