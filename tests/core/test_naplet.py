"""Naplet base class: attributes, lifecycle wiring, cloning, serialization."""

from __future__ import annotations

import pickle

import pytest

from repro.core.credential import SigningAuthority
from repro.core.errors import NapletError
from repro.core.naplet import Naplet
from repro.core.naplet_id import NapletID
from repro.core.state import NapletState
from repro.itinerary.itinerary import Itinerary
from repro.itinerary.pattern import SeqPattern


class ProbeNaplet(Naplet):
    """Minimal concrete naplet for unit tests."""

    def on_start(self) -> None:  # pragma: no cover - not executed here
        self.travel()


def _identified(name: str = "probe") -> ProbeNaplet:
    agent = ProbeNaplet(name)
    auth = SigningAuthority()
    auth.register_owner("alice")
    nid = NapletID.create("alice", "home", stamp="240101120000")
    agent._assign_identity(nid, auth.issue(nid, agent.codebase, {"role": "tester"}))
    return agent


class TestIdentity:
    def test_unlaunched_has_no_id(self):
        agent = ProbeNaplet("p")
        assert not agent.has_id
        with pytest.raises(NapletError):
            _ = agent.naplet_id
        with pytest.raises(NapletError):
            _ = agent.credential

    def test_assign_identity_is_one_shot(self):
        agent = _identified()
        auth = SigningAuthority()
        auth.register_owner("alice")
        nid2 = NapletID.create("alice", "home", stamp="240101120001")
        with pytest.raises(NapletError):
            agent._assign_identity(nid2, auth.issue(nid2, "local"))

    def test_codebase_default_and_custom(self):
        assert ProbeNaplet("p").codebase == "local"

        class Custom(ProbeNaplet):
            def __init__(self):
                super().__init__("c", codebase="codebase://app")

        assert Custom().codebase == "codebase://app"

    def test_abstract_on_start_required(self):
        with pytest.raises(TypeError):
            Naplet("nope")  # type: ignore[abstract]


class TestAttributes:
    def test_state_replaceable(self):
        agent = ProbeNaplet("p")
        fresh = NapletState()
        fresh.set("k", 1)
        agent.set_naplet_state(fresh)
        assert agent.state.get("k") == 1

    def test_itinerary_accessors(self):
        agent = ProbeNaplet("p")
        assert not agent.has_itinerary
        with pytest.raises(NapletError):
            _ = agent.itinerary
        agent.set_itinerary(Itinerary(SeqPattern.of_servers(["s1"])))
        assert agent.has_itinerary

    def test_context_lifecycle(self):
        agent = ProbeNaplet("p")
        assert agent.context is None
        with pytest.raises(NapletError):
            agent.require_context()

    def test_default_hooks_are_noops(self):
        agent = ProbeNaplet("p")
        agent.on_interrupt("callback")
        agent.on_stop()
        agent.on_destroy()

    def test_checkpoint_without_context_is_noop(self):
        ProbeNaplet("p").checkpoint()

    def test_report_home_without_listener_is_noop(self):
        ProbeNaplet("p").report_home({"x": 1})


class TestClone:
    def test_clone_gets_next_heritage_id(self):
        agent = _identified()
        clone = agent.clone()
        assert clone.naplet_id == NapletID.parse("alice@home:240101120000:0.1")
        assert agent.naplet_id.is_ancestor_of(clone.naplet_id)

    def test_clone_has_no_credential_but_inherits_attributes(self):
        agent = _identified()
        clone = agent.clone()
        with pytest.raises(NapletError):
            _ = clone.credential
        assert clone.inherited_attributes == {"role": "tester"}

    def test_clone_deep_copies_state(self):
        agent = _identified()
        agent.state.set("data", [1, 2])
        clone = agent.clone()
        clone.state.get("data").append(3)
        assert agent.state.get("data") == [1, 2]

    def test_clone_inherits_address_book(self):
        agent = _identified()
        other = NapletID.create("bob", "elsewhere", stamp="240101120000")
        agent.address_book.add_contact(other, "naplet://s9")
        clone = agent.clone()
        assert clone.address_book.knows(other)

    def test_clone_never_copies_context(self):
        agent = _identified()
        sentinel = object()
        agent._context = sentinel  # type: ignore[assignment]
        clone = agent.clone()
        assert clone.context is None
        assert agent.context is sentinel  # restored on the original


class TestSerialization:
    def test_context_is_transient(self):
        agent = _identified()
        agent._context = "not-really-a-context"  # type: ignore[assignment]
        copy = pickle.loads(pickle.dumps(agent))
        assert copy.context is None
        assert copy.naplet_id == agent.naplet_id

    def test_roundtrip_preserves_travelling_attributes(self):
        agent = _identified()
        agent.state.set("visited", ["a"])
        agent.navigation_log.record_arrival("naplet://s0")
        copy = pickle.loads(pickle.dumps(agent))
        assert copy.state.get("visited") == ["a"]
        assert copy.navigation_log.current_server() == "naplet://s0"
        assert copy.credential.signature == agent.credential.signature

    def test_repr_mentions_name_and_id(self):
        agent = _identified("walker")
        assert "walker" in repr(agent)
        assert "alice@home" in repr(agent)
        assert "<unlaunched>" in repr(ProbeNaplet("new"))
