"""TrackedState dirty-field ledger and the delta-stability predicates."""

from __future__ import annotations

import pickle

from repro.core.state import NapletState
from repro.core.tracking import (
    TrackedState,
    delta_fingerprint,
    is_delta_stable,
)
from tests.core.test_naplet import ProbeNaplet, _identified


class Widget(TrackedState):
    def __init__(self):
        self.a = 1
        self.b = [1, 2]


class TestDirtyLedger:
    def test_init_writes_are_dirty(self):
        # __init__ rebinding counts: the first dump must ship everything.
        assert Widget().dirty_fields() == {"a", "b"}

    def test_clear_then_rebind_marks_only_rebound(self):
        w = Widget()
        w.clear_dirty()
        assert w.dirty_fields() == frozenset()
        w.a = 2
        assert w.dirty_fields() == {"a"}

    def test_in_place_mutation_is_invisible(self):
        w = Widget()
        w.clear_dirty()
        w.b.append(3)  # the conservative contract: no rebind, no mark
        assert w.dirty_fields() == frozenset()

    def test_mark_dirty_volunteers_fields(self):
        w = Widget()
        w.clear_dirty()
        w.mark_dirty("b", "phantom")
        assert w.dirty_fields() == {"b", "phantom"}

    def test_delattr_marks_dirty(self):
        w = Widget()
        w.clear_dirty()
        del w.b
        assert "b" in w.dirty_fields()

    def test_rebind_to_same_value_still_marks(self):
        # Dirtiness is about rebinds, not equality — the serializer's
        # hash compare is what collapses equal re-pickles.
        w = Widget()
        w.clear_dirty()
        w.a = 1
        assert w.dirty_fields() == {"a"}

    def test_ledger_never_serializes(self):
        w = Widget()
        w.mark_dirty("a")
        state = TrackedState.strip_tracking(dict(w.__dict__))
        assert set(state) == {"a", "b"}

    def test_naplet_pickle_drops_ledger_and_lands_clean(self):
        agent = _identified("ledger")
        agent.state.set("k", 1)
        copy = pickle.loads(pickle.dumps(agent))
        assert isinstance(copy, ProbeNaplet)
        # The new incarnation starts with only the rebinds __setstate__
        # itself performed — the travel ledger did not ride along.
        assert copy.dirty_fields() <= {"_context"}


class TestStability:
    def test_scalars_are_stable(self):
        for value in (None, True, 3, 2.5, 1j, "s", b"b"):
            assert is_delta_stable(value)

    def test_tuple_of_scalars_is_stable(self):
        assert is_delta_stable((1, "two", (3.0, None)))

    def test_tuple_holding_a_list_is_unstable(self):
        assert not is_delta_stable((1, [2]))

    def test_mutables_are_unstable(self):
        for value in ([1], {"k": 1}, {1, 2}, bytearray(b"x")):
            assert not is_delta_stable(value)

    def test_oversized_tuple_gives_up(self):
        assert not is_delta_stable(tuple(range(1000)))

    def test_depth_limit_gives_up(self):
        nested = ((((1,),),),)
        assert not is_delta_stable(nested, _depth=2)


class TestFingerprint:
    def test_absent_protocol_is_none(self):
        assert delta_fingerprint([1, 2]) is None
        assert delta_fingerprint(object()) is None

    def test_naplet_state_fingerprint_moves_on_mutation(self):
        state = NapletState()
        state.set("k", 1)
        before = delta_fingerprint(state)
        assert before is not None
        state.set("k", 2)
        assert delta_fingerprint(state) != before

    def test_raising_probe_degrades_to_none(self):
        class Hostile:
            def __delta_fingerprint__(self):
                raise RuntimeError("no")

        assert delta_fingerprint(Hostile()) is None
