"""NapletListener / ListenerRef: home-side result reporting."""

from __future__ import annotations

import pickle
import queue

import pytest

from repro.core.listener import ListenerRef, NapletListener, ReportEnvelope


def _envelope(payload, key="k1") -> ReportEnvelope:
    return ReportEnvelope(listener_key=key, reporter="agent-id", payload=payload)


class TestListener:
    def test_deliver_and_next_report(self):
        listener = NapletListener()
        listener.deliver(_envelope({"x": 1}))
        report = listener.next_report(timeout=1)
        assert report.payload == {"x": 1}
        assert listener.received == 1

    def test_reports_blocks_for_count(self):
        listener = NapletListener()
        for i in range(3):
            listener.deliver(_envelope(i))
        got = listener.reports(3, timeout=1)
        assert [e.payload for e in got] == [0, 1, 2]

    def test_reports_times_out(self):
        listener = NapletListener()
        with pytest.raises(queue.Empty):
            listener.reports(1, timeout=0.05)

    def test_try_next_nonblocking(self):
        listener = NapletListener()
        assert listener.try_next() is None
        listener.deliver(_envelope("a"))
        assert listener.try_next().payload == "a"

    def test_callback_invoked_synchronously(self):
        seen = []
        listener = NapletListener(callback=lambda e: seen.append(e.payload))
        listener.deliver(_envelope("ping"))
        assert seen == ["ping"]


class TestListenerRef:
    def test_serializable(self):
        ref = ListenerRef(home_urn="naplet://home", listener_key="abc")
        copy = pickle.loads(pickle.dumps(ref))
        assert copy == ref

    def test_report_requires_bound_context(self):
        from tests.core.test_naplet import ProbeNaplet

        ref = ListenerRef(home_urn="naplet://home", listener_key="abc")
        agent = ProbeNaplet("p")
        with pytest.raises(RuntimeError):
            ref.report(agent, {"x": 1})

    def test_report_routes_through_context_messenger(self):
        from tests.core.test_naplet import ProbeNaplet

        calls = []

        class FakeMessenger:
            def post_report(self, home_urn, key, payload):
                calls.append((home_urn, key, payload))

        class FakeContext:
            messenger = FakeMessenger()

        agent = ProbeNaplet("p")
        agent._context = FakeContext()  # type: ignore[assignment]
        ListenerRef("naplet://home", "k9").report(agent, {"v": 7})
        assert calls == [("naplet://home", "k9", {"v": 7})]
