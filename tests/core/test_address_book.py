"""AddressBook: contacts for inter-naplet communication (paper §2.1)."""

from __future__ import annotations

import pickle

from repro.core.address_book import AddressBook, AddressEntry
from repro.core.naplet_id import NapletID


def _nid(owner: str = "a", suffix: str = "0") -> NapletID:
    return NapletID.parse(f"{owner}@home:240101120000:{suffix}")


class TestBasics:
    def test_add_and_lookup(self):
        book = AddressBook()
        nid = _nid()
        book.add_contact(nid, "naplet://s1")
        entry = book.lookup(nid)
        assert entry is not None
        assert entry.server_urn == "naplet://s1"

    def test_lookup_unknown_is_none(self):
        assert AddressBook().lookup(_nid()) is None

    def test_knows_and_contains(self):
        book = AddressBook()
        nid = _nid()
        book.add_contact(nid, "naplet://s1")
        assert book.knows(nid)
        assert nid in book
        assert "not-an-id" not in book

    def test_add_same_id_updates_location(self):
        book = AddressBook()
        nid = _nid()
        book.add_contact(nid, "naplet://s1")
        book.add_contact(nid, "naplet://s2")
        assert len(book) == 1
        assert book.lookup(nid).server_urn == "naplet://s2"

    def test_update_location(self):
        book = AddressBook()
        nid = _nid()
        book.add_contact(nid, "naplet://s1")
        assert book.update_location(nid, "naplet://s9")
        assert book.lookup(nid).server_urn == "naplet://s9"

    def test_update_location_unknown_returns_false(self):
        assert not AddressBook().update_location(_nid(), "naplet://x")

    def test_remove(self):
        book = AddressBook()
        nid = _nid()
        book.add_contact(nid, "naplet://s1")
        book.remove(nid)
        assert not book.knows(nid)
        book.remove(nid)  # idempotent

    def test_iteration_and_ids(self):
        book = AddressBook()
        ids = [_nid(suffix=s) for s in ("0", "0.1", "0.2")]
        for nid in ids:
            book.add_contact(nid, "naplet://s")
        assert set(book.naplet_ids()) == set(ids)
        assert len(list(book)) == 3


class TestInheritanceAndMerge:
    def test_inherit_is_independent_copy(self):
        book = AddressBook()
        nid = _nid()
        book.add_contact(nid, "naplet://s1")
        child = book.inherit()
        child.add_contact(_nid(suffix="0.1"), "naplet://s2")
        assert len(book) == 1
        assert len(child) == 2
        assert child.lookup(nid).server_urn == "naplet://s1"

    def test_merge_takes_other_locations(self):
        a, b = AddressBook(), AddressBook()
        nid = _nid()
        a.add_contact(nid, "naplet://old")
        b.add_contact(nid, "naplet://new")
        b.add_contact(_nid(suffix="0.9"), "naplet://extra")
        a.merge(b)
        assert a.lookup(nid).server_urn == "naplet://new"
        assert len(a) == 2


class TestEntry:
    def test_with_location(self):
        entry = AddressEntry(naplet_id=_nid(), server_urn="naplet://a")
        moved = entry.with_location("naplet://b")
        assert moved.naplet_id == entry.naplet_id
        assert moved.server_urn == "naplet://b"
        assert entry.server_urn == "naplet://a"  # frozen original untouched


class TestPickling:
    def test_roundtrip(self):
        book = AddressBook()
        ids = [_nid(suffix=s) for s in ("0", "0.1")]
        for nid in ids:
            book.add_contact(nid, f"naplet://srv-{nid.heritage[-1]}")
        copy = pickle.loads(pickle.dumps(book))
        assert set(copy.naplet_ids()) == set(ids)
        assert copy.lookup(ids[1]).server_urn == book.lookup(ids[1]).server_urn
