"""NapletID: hierarchical identifiers and clone heritage (paper Fig. 1)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.naplet_id import NapletID


class TestParseAndRender:
    def test_paper_example_roundtrip(self):
        text = "czxu@ece.eng.wayne.edu:010512172720:2.1"
        nid = NapletID.parse(text)
        assert nid.owner == "czxu"
        assert nid.home == "ece.eng.wayne.edu"
        assert nid.stamp == "010512172720"
        assert nid.heritage == (2, 1)
        assert str(nid) == text

    def test_original_heritage_is_zero(self):
        nid = NapletID.create("alice", "hostA", stamp="240101120000")
        assert nid.heritage == (0,)
        assert nid.is_original
        assert str(nid).endswith(":0")

    def test_parse_original(self):
        nid = NapletID.parse("czxu@ece:010512172720:0")
        assert nid.is_original
        assert nid.generation == 0

    @pytest.mark.parametrize(
        "bad",
        [
            "no-at-sign:010512172720:0",
            "a@b:short:0",
            "a@b:010512172720:",
            "a@b:010512172720:1.x",
            "a@b:010512172720",
            "@b:010512172720:0",
            "a@:010512172720:0",
            "",
        ],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            NapletID.parse(bad)

    def test_repr_contains_full_text(self):
        nid = NapletID.create("bob", "h", stamp="240101120000")
        assert "bob@h:240101120000:0" in repr(nid)

    def test_create_uses_current_time_format(self):
        nid = NapletID.create("alice", "hostA")
        assert len(nid.stamp) == 12
        assert nid.stamp.isdigit()


class TestValidation:
    def test_rejects_owner_with_separator(self):
        with pytest.raises(ValueError):
            NapletID(owner="a@b", home="h", stamp="240101120000")

    def test_rejects_home_with_colon(self):
        with pytest.raises(ValueError):
            NapletID(owner="a", home="h:1", stamp="240101120000")

    def test_rejects_bad_stamp(self):
        with pytest.raises(ValueError):
            NapletID(owner="a", home="h", stamp="24010112000")  # 11 digits

    def test_rejects_negative_heritage(self):
        with pytest.raises(ValueError):
            NapletID(owner="a", home="h", stamp="240101120000", heritage=(0, -1))

    def test_rejects_empty_heritage(self):
        with pytest.raises(ValueError):
            NapletID(owner="a", home="h", stamp="240101120000", heritage=())


class TestCloneHeritage:
    def test_clone_sequence_matches_figure(self):
        """Fig. 1: clones of ...:2 are ...:2.1, ...:2.2 (0 reserved)."""
        nid = NapletID(owner="czxu", home="ece", stamp="010512172720", heritage=(2,))
        first = nid.next_clone()
        second = nid.next_clone()
        assert str(first) == "czxu@ece:010512172720:2.1"
        assert str(second) == "czxu@ece:010512172720:2.2"

    def test_generation_originator_is_dot_zero(self):
        nid = NapletID(owner="czxu", home="ece", stamp="010512172720", heritage=(2,))
        assert str(nid.generation_originator()) == "czxu@ece:010512172720:2.0"

    def test_recursive_cloning_extends_sequence(self):
        root = NapletID.create("a", "h", stamp="240101120000")
        child = root.next_clone()
        grandchild = child.next_clone()
        assert grandchild.heritage == (0, 1, 1)
        assert grandchild.generation == 2

    def test_clone_counters_are_per_instance(self):
        root = NapletID.create("a", "h", stamp="240101120000")
        c1, c2, c3 = root.next_clone(), root.next_clone(), root.next_clone()
        assert [c.heritage[-1] for c in (c1, c2, c3)] == [1, 2, 3]

    def test_parent_of_clone(self):
        root = NapletID.create("a", "h", stamp="240101120000")
        clone = root.next_clone()
        assert clone.parent() == root

    def test_parent_of_original_is_none(self):
        root = NapletID.create("a", "h", stamp="240101120000")
        assert root.parent() is None

    def test_ancestry(self):
        root = NapletID.create("a", "h", stamp="240101120000")
        clone = root.next_clone()
        grand = clone.next_clone()
        assert root.is_ancestor_of(clone)
        assert root.is_ancestor_of(grand)
        assert clone.is_ancestor_of(grand)
        assert not grand.is_ancestor_of(root)
        assert not root.is_ancestor_of(root)

    def test_ancestry_requires_same_family(self):
        a = NapletID.create("a", "h", stamp="240101120000")
        b = NapletID.create("b", "h", stamp="240101120000")
        assert not a.is_ancestor_of(b.next_clone())

    def test_same_family(self):
        a = NapletID.create("a", "h", stamp="240101120000")
        assert a.same_family(a.next_clone())
        b = NapletID.create("a", "h", stamp="240101120001")
        assert not a.same_family(b)

    def test_lineage_walks_to_root(self):
        root = NapletID.create("a", "h", stamp="240101120000")
        grand = root.next_clone().next_clone()
        lineage = list(grand.lineage())
        assert lineage[0] == grand
        assert lineage[-1].is_original
        assert len(lineage) == 3


class TestIdentity:
    def test_equality_and_hash(self):
        a = NapletID.parse("x@h:240101120000:1.2")
        b = NapletID.parse("x@h:240101120000:1.2")
        assert a == b
        assert hash(a) == hash(b)
        assert a != NapletID.parse("x@h:240101120000:1.3")

    def test_not_equal_to_string(self):
        nid = NapletID.parse("x@h:240101120000:0")
        assert nid != "x@h:240101120000:0"

    def test_usable_as_dict_key(self):
        nid = NapletID.parse("x@h:240101120000:0")
        table = {nid: "resident"}
        assert table[NapletID.parse("x@h:240101120000:0")] == "resident"


class TestPickling:
    def test_roundtrip_preserves_identity(self):
        nid = NapletID.parse("czxu@ece:010512172720:2.1")
        copy = pickle.loads(pickle.dumps(nid))
        assert copy == nid
        assert str(copy) == str(nid)

    def test_roundtrip_preserves_clone_counter(self):
        nid = NapletID.create("a", "h", stamp="240101120000")
        nid.next_clone()
        nid.next_clone()
        copy = pickle.loads(pickle.dumps(nid))
        assert copy.next_clone().heritage == (0, 3)

    def test_unpickled_id_can_clone(self):
        nid = pickle.loads(pickle.dumps(NapletID.create("a", "h", stamp="240101120000")))
        assert nid.next_clone().heritage == (0, 1)
