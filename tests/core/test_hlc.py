"""Hybrid logical clock unit tests: stamp algebra, the two advance rules.

The property suite (tests/property/test_hlc_props.py) drives random
traffic through skewed clocks; here the exact mechanics are pinned —
encode/decode exactness, the three receive cases, and the depart-lands-
after invariant the flight recorder leans on.
"""

from __future__ import annotations

from repro.util.hlc import HLCStamp, HybridLogicalClock, merged


class FakeTime:
    """An injectable wall clock tests can hold still or step."""

    def __init__(self, value: float = 100.0) -> None:
        self.value = value

    def __call__(self) -> float:
        return self.value


class TestHLCStamp:
    def test_order_is_lexicographic_on_wall_logical_node(self):
        assert HLCStamp(1.0, 0, "b") < HLCStamp(2.0, 0, "a")
        assert HLCStamp(1.0, 1, "a") < HLCStamp(1.0, 2, "a")
        assert HLCStamp(1.0, 1, "a") < HLCStamp(1.0, 1, "b")

    def test_encode_decode_round_trips_exactly(self):
        stamp = HLCStamp(wall=1726312345.123456789, logical=7, node="s01")
        assert HLCStamp.decode(stamp.encode()) == stamp

    def test_decode_survives_colons_in_the_node_name(self):
        stamp = HLCStamp(wall=2.5, logical=3, node="naplet://host:9000")
        assert HLCStamp.decode(stamp.encode()) == stamp

    def test_describe_from_dict_round_trips(self):
        stamp = HLCStamp(wall=5.25, logical=2, node="n")
        assert HLCStamp.from_dict(stamp.describe()) == stamp

    def test_merged_returns_the_later_stamp_commutatively(self):
        early = HLCStamp(1.0, 5, "a")
        late = HLCStamp(2.0, 0, "b")
        assert merged(early, late) == late
        assert merged(late, early) == late
        assert merged(early, early) == early


class TestHybridLogicalClock:
    def test_now_tracks_an_advancing_physical_clock(self):
        time = FakeTime(10.0)
        clock = HybridLogicalClock("a", time_source=time)
        assert clock.now() == HLCStamp(10.0, 0, "a")
        time.value = 11.0
        assert clock.now() == HLCStamp(11.0, 0, "a")

    def test_now_increments_logical_when_physical_stalls(self):
        clock = HybridLogicalClock("a", time_source=FakeTime(10.0))
        stamps = [clock.now() for _ in range(3)]
        assert stamps == sorted(stamps)
        assert [s.logical for s in stamps] == [0, 1, 2]
        assert all(s.wall == 10.0 for s in stamps)

    def test_update_adopts_a_remote_clock_from_the_future(self):
        clock = HybridLogicalClock("slow", time_source=FakeTime(10.0))
        landed = clock.update(HLCStamp(wall=15.0, logical=2, node="fast"))
        assert landed == HLCStamp(15.0, 3, "slow")
        # ...and stays adopted: the local physical clock is still behind.
        assert clock.now().wall == 15.0

    def test_update_ignores_a_remote_clock_from_the_past(self):
        time = FakeTime(10.0)
        clock = HybridLogicalClock("fast", time_source=time)
        clock.now()
        time.value = 20.0
        landed = clock.update(HLCStamp(wall=5.0, logical=9, node="slow"))
        assert landed == HLCStamp(20.0, 0, "fast")

    def test_update_breaks_equal_wall_ties_with_logical(self):
        clock = HybridLogicalClock("a", time_source=FakeTime(10.0))
        clock.now()  # (10.0, 0)
        landed = clock.update(HLCStamp(wall=10.0, logical=4, node="b"))
        assert landed == HLCStamp(10.0, 5, "a")

    def test_update_result_dominates_both_inputs(self):
        clock = HybridLogicalClock("r", time_source=FakeTime(10.0))
        before = clock.now()
        remote = HLCStamp(wall=10.0, logical=0, node="s")
        landed = clock.update(remote)
        assert landed > before and landed > remote

    def test_depart_sorts_before_landing_under_5s_skew(self):
        # The flight-recorder invariant: the sender's clock runs 5s AHEAD
        # of the receiver's, yet the landing stamp still sorts after the
        # depart stamp because the depart stamp rides the frame.
        sender = HybridLogicalClock("fast", time_source=FakeTime(1005.0))
        receiver = HybridLogicalClock("slow", time_source=FakeTime(1000.0))
        depart = sender.now()
        landing = receiver.update(HLCStamp.decode(depart.encode()))
        assert depart < landing
        # Every subsequent local event at the receiver also sorts after.
        assert landing < receiver.now()

    def test_peek_does_not_advance(self):
        clock = HybridLogicalClock("a", time_source=FakeTime(10.0))
        stamp = clock.now()
        assert clock.peek() == stamp
        assert clock.peek() == stamp
