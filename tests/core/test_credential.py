"""Credentials: signing and verification of immutable attributes."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.credential import Credential, SigningAuthority
from repro.core.errors import CredentialError
from repro.core.naplet_id import NapletID


@pytest.fixture
def authority():
    auth = SigningAuthority()
    auth.register_owner("alice")
    return auth


@pytest.fixture
def nid():
    return NapletID.create("alice", "home", stamp="240101120000")


class TestIssueAndVerify:
    def test_issued_credential_verifies(self, authority, nid):
        cred = authority.issue(nid, "codebase://x", {"role": "admin"})
        assert authority.verify(cred)

    def test_require_valid_passes(self, authority, nid):
        cred = authority.issue(nid, "codebase://x")
        authority.require_valid(cred)  # no raise

    def test_tampered_codebase_fails(self, authority, nid):
        cred = authority.issue(nid, "codebase://x")
        forged = dataclasses.replace(cred, codebase="codebase://evil")
        assert not authority.verify(forged)

    def test_tampered_id_fails(self, authority, nid):
        cred = authority.issue(nid, "codebase://x")
        other = NapletID.create("alice", "home", stamp="240101120001")
        forged = dataclasses.replace(cred, naplet_id=other)
        assert not authority.verify(forged)

    def test_tampered_attributes_fail(self, authority, nid):
        cred = authority.issue(nid, "codebase://x", {"role": "guest"})
        forged = dataclasses.replace(cred, attributes=(("role", "admin"),))
        assert not authority.verify(forged)

    def test_tampered_signature_fails(self, authority, nid):
        cred = authority.issue(nid, "codebase://x")
        forged = dataclasses.replace(cred, signature=b"\x00" * 32)
        assert not authority.verify(forged)

    def test_unknown_owner_fails_verification(self, authority):
        stranger = NapletID.create("mallory", "home", stamp="240101120000")
        cred = Credential(naplet_id=stranger, codebase="x", signature=b"sig")
        assert not authority.verify(cred)

    def test_require_valid_raises_on_forgery(self, authority, nid):
        cred = authority.issue(nid, "codebase://x")
        forged = dataclasses.replace(cred, codebase="evil")
        with pytest.raises(CredentialError):
            authority.require_valid(forged)

    def test_issue_for_unregistered_owner_raises(self, authority):
        stranger = NapletID.create("mallory", "home", stamp="240101120000")
        with pytest.raises(CredentialError):
            authority.issue(stranger, "codebase://x")


class TestOwnerRegistration:
    def test_register_returns_stable_secret(self):
        auth = SigningAuthority()
        s1 = auth.register_owner("bob")
        s2 = auth.register_owner("bob")
        assert s1 == s2

    def test_register_with_conflicting_secret_raises(self):
        auth = SigningAuthority()
        auth.register_owner("bob", b"secret-1")
        with pytest.raises(CredentialError):
            auth.register_owner("bob", b"secret-2")

    def test_register_accepts_str_secret(self):
        auth = SigningAuthority()
        secret = auth.register_owner("bob", "passphrase")
        assert secret == b"passphrase"

    def test_different_authorities_disagree(self, nid):
        a1, a2 = SigningAuthority(), SigningAuthority()
        a1.register_owner("alice", b"k1")
        a2.register_owner("alice", b"k2")
        cred = a1.issue(nid, "codebase://x")
        assert not a2.verify(cred)


class TestFeatures:
    def test_features_include_identity(self, authority, nid):
        cred = authority.issue(nid, "codebase://x", {"app": "netman"})
        features = cred.features()
        assert features["owner"] == "alice"
        assert features["home"] == "home"
        assert features["codebase"] == "codebase://x"
        assert features["app"] == "netman"

    def test_explicit_attribute_wins_over_implicit(self, authority, nid):
        cred = authority.issue(nid, "codebase://x", {"owner": "impersonated"})
        assert cred.features()["owner"] == "impersonated"

    def test_feature_accessor_with_default(self, authority, nid):
        cred = authority.issue(nid, "codebase://x", {"role": "admin"})
        assert cred.feature("role") == "admin"
        assert cred.feature("absent", "dflt") == "dflt"

    def test_attributes_are_sorted_canonically(self, authority, nid):
        c1 = authority.issue(nid, "cb", {"b": "2", "a": "1"})
        c2 = authority.issue(nid, "cb", {"a": "1", "b": "2"})
        assert c1.signature == c2.signature


class TestCloneReissue:
    def test_for_clone_preserves_attributes(self, authority, nid):
        cred = authority.issue(nid, "codebase://x", {"role": "admin"})
        clone_id = nid.next_clone()
        clone_cred = cred.for_clone(clone_id, authority)
        assert clone_cred.naplet_id == clone_id
        assert clone_cred.codebase == cred.codebase
        assert dict(clone_cred.attributes) == {"role": "admin"}
        assert authority.verify(clone_cred)
