"""Utilities: timestamps, concurrency primitives, event log."""

from __future__ import annotations

import datetime as dt
import threading
import time

import pytest

from repro.util.concurrency import AtomicCounter, CountDownLatch, wait_until
from repro.util.eventlog import EventLog, EventRecord
from repro.util.timeutil import (
    compact_timestamp,
    parse_compact_timestamp,
    unique_compact_timestamp,
)


class TestTimeutil:
    def test_compact_roundtrip(self):
        when = dt.datetime(2001, 5, 12, 17, 27, 20)
        stamp = compact_timestamp(when)
        assert stamp == "010512172720"  # the paper's example moment
        assert parse_compact_timestamp(stamp) == when

    def test_now_has_12_digits(self):
        stamp = compact_timestamp()
        assert len(stamp) == 12 and stamp.isdigit()

    @pytest.mark.parametrize("bad", ["", "abc", "12345678901", "1234567890123"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_compact_timestamp(bad)

    def test_unique_stamps_never_collide(self):
        stamps = [unique_compact_timestamp() for _ in range(20)]
        assert len(set(stamps)) == 20
        assert stamps == sorted(stamps)  # logical clock is monotone

    def test_unique_stamps_thread_safe(self):
        out: list[str] = []
        lock = threading.Lock()

        def mint():
            for _ in range(20):
                stamp = unique_compact_timestamp()
                with lock:
                    out.append(stamp)

        threads = [threading.Thread(target=mint) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(out)) == len(out)


class TestAtomicCounter:
    def test_sequential(self):
        counter = AtomicCounter()
        assert [counter.next() for _ in range(3)] == [1, 2, 3]
        assert counter.value == 3

    def test_initial_value(self):
        assert AtomicCounter(10).next() == 11

    def test_concurrent_uniqueness(self):
        counter = AtomicCounter()
        seen: list[int] = []
        lock = threading.Lock()

        def bump():
            for _ in range(200):
                value = counter.next()
                with lock:
                    seen.append(value)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 800


class TestCountDownLatch:
    def test_opens_at_zero(self):
        latch = CountDownLatch(2)
        latch.count_down()
        assert latch.count == 1
        latch.count_down()
        assert latch.wait(timeout=0.1)

    def test_extra_countdowns_harmless(self):
        latch = CountDownLatch(1)
        latch.count_down()
        latch.count_down()
        assert latch.count == 0

    def test_timeout(self):
        assert not CountDownLatch(1).wait(timeout=0.05)

    def test_zero_latch_already_open(self):
        assert CountDownLatch(0).wait(timeout=0.01)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CountDownLatch(-1)

    def test_cross_thread(self):
        latch = CountDownLatch(3)

        def worker():
            time.sleep(0.01)
            latch.count_down()

        for _ in range(3):
            threading.Thread(target=worker).start()
        assert latch.wait(timeout=2)


class TestWaitUntil:
    def test_true_immediately(self):
        assert wait_until(lambda: True, timeout=0.01)

    def test_becomes_true(self):
        flag = {"v": False}
        threading.Timer(0.03, lambda: flag.update(v=True)).start()
        assert wait_until(lambda: flag["v"], timeout=2)

    def test_times_out(self):
        assert not wait_until(lambda: False, timeout=0.05)


class TestEventLog:
    def test_record_and_find(self):
        log = EventLog()
        log.record("arrive", naplet="a", server="s1")
        log.record("arrive", naplet="b", server="s1")
        log.record("depart", naplet="a", server="s1")
        assert log.count("arrive") == 2
        assert log.count("arrive", naplet="a") == 1
        assert log.count("depart", server="s1") == 1
        assert len(log) == 3

    def test_matches_requires_all_details(self):
        record = EventRecord(kind="x", detail={"a": 1, "b": 2})
        assert record.matches("x", a=1)
        assert not record.matches("x", a=1, c=3)
        assert not record.matches("y")

    def test_bounded_log_discards_oldest(self):
        log = EventLog(maxlen=3)
        for i in range(6):
            log.record("tick", i=i)
        assert len(log) == 3
        assert [r.detail["i"] for r in log] == [3, 4, 5]

    def test_snapshot_is_isolated(self):
        log = EventLog()
        log.record("x")
        snap = log.snapshot()
        log.record("y")
        assert len(snap) == 1

    def test_clear(self):
        log = EventLog()
        log.record("x")
        log.clear()
        assert len(log) == 0
