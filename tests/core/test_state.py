"""NapletState: protection modes and the server-access matrix (paper §2.1)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.errors import StateAccessError
from repro.core.state import AccessMode, NapletState, ProtectedNapletState


@pytest.fixture
def state():
    return NapletState()


class TestNapletSideAccess:
    def test_set_get_roundtrip(self, state):
        state.set("k", 42)
        assert state.get("k") == 42

    def test_get_default(self, state):
        assert state.get("absent") is None
        assert state.get("absent", "dflt") == "dflt"

    def test_default_mode_is_private(self, state):
        state.set("secret", 1)
        assert state.mode_of("secret") is AccessMode.PRIVATE

    def test_update_keeps_mode(self, state):
        state.set("k", 1, mode=AccessMode.PUBLIC)
        state.update("k", 2)
        assert state.get("k") == 2
        assert state.mode_of("k") is AccessMode.PUBLIC

    def test_update_missing_raises(self, state):
        with pytest.raises(KeyError):
            state.update("absent", 1)

    def test_delete(self, state):
        state.set("k", 1)
        state.delete("k")
        assert "k" not in state

    def test_container_protocol(self, state):
        state.set("a", 1)
        state.set("b", 2)
        assert len(state) == 2
        assert set(state) == {"a", "b"}
        assert "a" in state

    def test_overwrite_replaces_mode(self, state):
        state.set("k", 1, mode=AccessMode.PUBLIC)
        state.set("k", 2)  # back to default (private)
        assert state.mode_of("k") is AccessMode.PRIVATE


class TestModeValidation:
    def test_protected_requires_servers(self, state):
        with pytest.raises(ValueError):
            state.set("k", 1, mode=AccessMode.PROTECTED)

    def test_servers_only_for_protected(self, state):
        with pytest.raises(ValueError):
            state.set("k", 1, mode=AccessMode.PUBLIC, allowed_servers={"s1"})


class TestServerSideAccess:
    def test_public_readable_by_any_server(self, state):
        state.set("k", "data", mode=AccessMode.PUBLIC)
        assert state.server_get("k", "anyserver") == "data"

    def test_private_denied_to_servers(self, state):
        state.set("k", "secret", mode=AccessMode.PRIVATE)
        with pytest.raises(StateAccessError):
            state.server_get("k", "server1")

    def test_protected_allows_named_servers_only(self, state):
        state.set("k", 1, mode=AccessMode.PROTECTED, allowed_servers={"trusted"})
        assert state.server_get("k", "trusted") == 1
        with pytest.raises(StateAccessError):
            state.server_get("k", "stranger")

    def test_server_set_updates_protected_entry(self, state):
        """The paper: a server can update a returning naplet with new info."""
        state.set("prices", {"old": 1}, mode=AccessMode.PROTECTED, allowed_servers={"shop"})
        state.server_set("prices", {"new": 2}, "shop")
        assert state.get("prices") == {"new": 2}

    def test_server_set_denied_for_private(self, state):
        state.set("k", 1)
        with pytest.raises(StateAccessError):
            state.server_set("k", 2, "server1")

    def test_server_get_missing_key_raises_keyerror(self, state):
        with pytest.raises(KeyError):
            state.server_get("absent", "server1")

    def test_visible_to_filters_by_mode(self, state):
        state.set("private", 1)
        state.set("public", 2, mode=AccessMode.PUBLIC)
        state.set("protected", 3, mode=AccessMode.PROTECTED, allowed_servers={"s1"})
        assert state.visible_to("s1") == {"public": 2, "protected": 3}
        assert state.visible_to("other") == {"public": 2}


class TestPickling:
    def test_roundtrip_preserves_entries_and_modes(self, state):
        state.set("a", [1, 2], mode=AccessMode.PUBLIC)
        state.set("b", "x", mode=AccessMode.PROTECTED, allowed_servers={"s"})
        copy = pickle.loads(pickle.dumps(state))
        assert copy.get("a") == [1, 2]
        assert copy.mode_of("b") is AccessMode.PROTECTED
        assert copy.server_get("b", "s") == "x"

    def test_roundtrip_preserves_default_mode(self):
        protected = ProtectedNapletState()
        copy = pickle.loads(pickle.dumps(protected))
        copy.set("k", 1)
        assert copy.mode_of("k") is AccessMode.PUBLIC


class TestProtectedNapletState:
    def test_defaults_to_public(self):
        state = ProtectedNapletState()
        state.set("DeviceStatus", {})
        assert state.mode_of("DeviceStatus") is AccessMode.PUBLIC

    def test_explicit_private_still_possible(self):
        state = ProtectedNapletState()
        state.set("secret", 1, mode=AccessMode.PRIVATE)
        with pytest.raises(StateAccessError):
            state.server_get("secret", "s")
