"""NavigationLog: arrival/departure history for post-analysis (paper §2.1)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.navigation_log import NavigationLog


class TestVisits:
    def test_arrival_then_departure(self):
        log = NavigationLog()
        log.record_arrival("naplet://s1", when=100.0)
        rec = log.record_departure("naplet://s1", when=103.5)
        assert rec.complete
        assert rec.dwell == pytest.approx(3.5)

    def test_current_server_tracks_open_visit(self):
        log = NavigationLog()
        assert log.current_server() is None
        log.record_arrival("naplet://s1")
        assert log.current_server() == "naplet://s1"
        log.record_departure("naplet://s1")
        assert log.current_server() is None

    def test_departure_without_arrival_raises(self):
        log = NavigationLog()
        with pytest.raises(ValueError):
            log.record_departure("naplet://s1")

    def test_departure_closes_most_recent_open_visit(self):
        log = NavigationLog()
        log.record_arrival("naplet://s1", when=1.0)
        log.record_departure("naplet://s1", when=2.0)
        log.record_arrival("naplet://s1", when=5.0)  # revisit
        rec = log.record_departure("naplet://s1", when=9.0)
        assert rec.dwell == pytest.approx(4.0)
        assert log.visits()[0].dwell == pytest.approx(1.0)

    def test_servers_visited_keeps_order_and_repeats(self):
        log = NavigationLog()
        for server in ("a", "b", "a"):
            log.record_arrival(server)
            log.record_departure(server)
        assert log.servers_visited() == ["a", "b", "a"]

    def test_total_dwell_ignores_open_visits(self):
        log = NavigationLog()
        log.record_arrival("a", when=0.0)
        log.record_departure("a", when=2.0)
        log.record_arrival("b", when=3.0)  # still open
        assert log.total_dwell() == pytest.approx(2.0)

    def test_len_and_iter(self):
        log = NavigationLog()
        log.record_arrival("a")
        log.record_arrival("b")  # overlapping open visits allowed in the log
        assert len(log) == 2
        assert [r.server_urn for r in log] == ["a", "b"]

    def test_dwell_none_while_open(self):
        log = NavigationLog()
        rec = log.record_arrival("a")
        assert rec.dwell is None
        assert not rec.complete


class TestPickling:
    def test_roundtrip(self):
        log = NavigationLog()
        log.record_arrival("a", when=0.0)
        log.record_departure("a", when=1.0)
        log.record_arrival("b", when=2.0)
        copy = pickle.loads(pickle.dumps(log))
        assert copy.servers_visited() == ["a", "b"]
        assert copy.current_server() == "b"
        copy.record_departure("b", when=4.0)  # usable after restore
        assert copy.total_dwell() == pytest.approx(3.0)
