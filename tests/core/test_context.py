"""NapletContext: the transient confined execution environment."""

from __future__ import annotations

import pickle

import pytest

from repro.core.context import NapletContext
from repro.core.errors import ServiceNotFoundError


class FakeDispatcher:
    origin_urn = "naplet://h"

    def dispatch(self, naplet, destination):
        raise AssertionError("not used")

    def spawn_clone(self, naplet, clone, destination):
        raise AssertionError("not used")


class FakeMessenger:
    def post_message(self, server_urn, target, body):
        return None

    def get_message(self, timeout=None):
        return None

    def poll_message(self):
        return None


class FakeServices:
    def __init__(self):
        self.granted = {}
        self.requests = []

    def open_service(self, name):
        if name != "math":
            raise ServiceNotFoundError(name)
        return "math-handler"

    def request_service_channel(self, name):
        if name == "forbidden":
            raise ServiceNotFoundError(name)
        self.requests.append(name)
        channel = f"channel:{name}"
        self.granted[name] = channel
        return channel

    def service_channel_list(self):
        return dict(self.granted)


class FakeHook:
    def __init__(self):
        self.count = 0

    def checkpoint(self):
        self.count += 1


def _context(hook=None, extras=None) -> tuple[NapletContext, FakeServices]:
    services = FakeServices()
    context = NapletContext(
        server_urn="naplet://hostA",
        hostname="hostA",
        dispatcher=FakeDispatcher(),
        messenger=FakeMessenger(),
        services=services,
        monitor_hook=hook,
        extras=extras,
    )
    return context, services


class TestBasics:
    def test_identity_properties(self):
        context, _ = _context()
        assert context.server_urn == "naplet://hostA"
        assert context.hostname == "hostA"

    def test_open_service_delegates(self):
        context, _ = _context()
        assert context.open_service("math") == "math-handler"

    def test_service_channel_requests_then_caches(self):
        context, services = _context()
        first = context.service_channel("svc")
        assert first == "channel:svc"
        second = context.service_channel("svc")
        assert second == first
        assert services.requests == ["svc"]  # only one request issued

    def test_service_channel_unknown_raises(self):
        context, _ = _context()
        with pytest.raises(ServiceNotFoundError):
            context.service_channel("forbidden")

    def test_extras(self):
        context, _ = _context(extras={"network": "net-object"})
        assert context.extra("network") == "net-object"
        assert context.extra("absent", 7) == 7


class TestCheckpoint:
    def test_checkpoint_calls_hook(self):
        hook = FakeHook()
        context, _ = _context(hook=hook)
        context.checkpoint()
        context.checkpoint()
        assert hook.count == 2

    def test_checkpoint_without_hook_is_noop(self):
        context, _ = _context(hook=None)
        context.checkpoint()


class TestTransience:
    def test_refuses_pickling(self):
        context, _ = _context()
        with pytest.raises(TypeError):
            pickle.dumps(context)
