"""Failure injection on the lazy-loading path.

A naplet whose codebase is *not* in the registry cannot be reconstructed at
the destination: the transfer must be rejected cleanly, the source must
roll back (the agent keeps running / retires there), and the space must
stay healthy.
"""

from __future__ import annotations

import pytest

import repro
from repro.codeshipping.codebase import SHIPPING_STAMP
from repro.core.errors import NapletMigrationError
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import ServerConfig, deploy
from repro.simnet import VirtualNetwork, line
from tests.integration.shipped_agent import RoamingProbe


@pytest.fixture
def broken_registry_space():
    """A space whose servers have never heard of the probe's codebase."""
    network = VirtualNetwork(line(3, prefix="srv"))
    servers = deploy(network, config=ServerConfig(codebase_host="srv00"))
    # Stamp the class as shipped WITHOUT registering the bundle anywhere.
    RoamingProbe.__dict__  # ensure class loaded
    setattr(
        RoamingProbe, SHIPPING_STAMP,
        ("codebase://ghost/unregistered", RoamingProbe.__module__, "RoamingProbe"),
    )
    yield network, servers
    # un-stamp so other tests see the class fresh
    if SHIPPING_STAMP in RoamingProbe.__dict__:
        delattr(RoamingProbe, SHIPPING_STAMP)
    network.shutdown()


class TestMissingCodebase:
    def test_launch_fails_cleanly(self, broken_registry_space):
        network, servers = broken_registry_space
        agent = RoamingProbe("ghost-probe")
        agent.set_itinerary(Itinerary(SeqPattern.of_servers(["srv01"])))
        with pytest.raises(NapletMigrationError, match="deserialization failed"):
            servers["srv00"].launch(agent, owner="ship")
        # destination never admitted anything
        assert servers["srv01"].monitor.admitted == 0
        assert servers["srv01"].manager.resident_count == 0

    def test_space_still_serves_registered_codebases(self, broken_registry_space):
        network, servers = broken_registry_space
        # now register the bundle properly: the same class ships fine
        codebase = network.code_registry.create("codebase://tests/probe")
        codebase.add_class(RoamingProbe)  # re-stamps with the real codebase
        listener = repro.NapletListener()
        agent = RoamingProbe("healed-probe")
        agent.set_itinerary(
            Itinerary(SeqPattern.of_servers(["srv01"], post_action=ResultReport("hops")))
        )
        servers["srv00"].launch(agent, owner="ship", listener=listener)
        assert listener.next_report(timeout=15).payload == ["srv01"]


class Inquirer(repro.Naplet):
    """Posts one message, then inquires its kept receipt (§4.2)."""

    def __init__(self, name, peer, **kw):
        super().__init__(name, **kw)
        self.peer = peer

    def on_start(self):
        context = self.require_context()
        receipt = context.messenger.post_message(None, self.peer, "hi")
        kept = context.messenger.inquire(receipt.message_id)
        self.state.set("inquiry", kept.status if kept else None)
        self.travel()


class TestReceiptInquiry:
    def test_agent_can_inquire_its_own_receipts(self, space):
        """§4.2: confirmations kept for inquiry by the sending naplet."""
        from repro.simnet import star
        from repro.util.concurrency import wait_until
        from tests.conftest import StallNaplet

        network, servers = space(star(2))
        target = StallNaplet("receiver", spin_seconds=30.0)
        from repro.itinerary import seq

        target.set_itinerary(Itinerary(seq("dev01")))
        target_id = servers["station"].launch(target, owner="ops")
        assert wait_until(lambda: servers["dev01"].manager.is_resident(target_id))

        listener = repro.NapletListener()
        agent = Inquirer("inquirer", target_id)
        agent.set_itinerary(
            Itinerary(SeqPattern.of_servers(["dev00"], post_action=ResultReport("inquiry")))
        )
        servers["station"].launch(agent, owner="ops", listener=listener)
        assert listener.next_report(timeout=15).payload == "delivered"
        servers["station"].terminate_naplet(target_id)
