"""Shippable agent fixture — imports restricted-loader-safe modules only."""

from __future__ import annotations

from repro.core.naplet import Naplet


class RoamingProbe(Naplet):
    """Collects hostnames under 'hops'; doubles a shipped payload if present."""

    def __init__(self, name, **kwargs):
        kwargs.setdefault("codebase", "codebase://tests/probe")
        super().__init__(name, **kwargs)

    def on_start(self):
        context = self.require_context()
        hops = (self.state.get("hops") or []) + [context.hostname]
        self.state.set("hops", hops)
        payload = self.state.get("payload")
        if payload is not None:
            self.state.set("doubled", payload.doubled())
        self.travel()
