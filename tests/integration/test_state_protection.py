"""State protection modes exercised across a real journey (paper §2.1)."""

from __future__ import annotations

import pytest

import repro
from repro.core import AccessMode, StateAccessError
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.simnet import line
from tests.conftest import CollectorNaplet


class VendorDesk:
    """Stationary service that inspects/updates a visiting naplet's state."""

    def __init__(self, hostname: str) -> None:
        self.hostname = hostname
        self.denied_reads = 0
        self.denied_writes = 0

    def inspect(self, naplet: repro.Naplet) -> dict:
        visible = naplet.state.visible_to(self.hostname)
        try:
            naplet.state.server_get("private_quotes", self.hostname)
        except StateAccessError:
            self.denied_reads += 1
        try:
            naplet.state.server_set(
                "trusted_notes", f"note-from-{self.hostname}", self.hostname
            )
        except StateAccessError:
            self.denied_writes += 1
        return visible


class AuditedNaplet(CollectorNaplet):
    """Carries private, public and protected entries; visits vendor desks."""

    def on_start(self):
        context = self.require_context()
        desk: VendorDesk = context.open_service("desk")
        visible = desk.inspect(self)
        log = dict(self.state.get("audit") or {})
        log[context.hostname] = sorted(visible)
        self.state.set("audit", log, mode=AccessMode.PRIVATE)
        self.travel()


@pytest.fixture
def audited_space(space):
    network, servers = space(line(4, prefix="s"))
    desks = {}
    for hostname, server in servers.items():
        desk = VendorDesk(hostname)
        desks[hostname] = desk
        server.register_open_service("desk", desk)
    return network, servers, desks


class TestProtectionAcrossJourney:
    def _launch(self, servers):
        listener = repro.NapletListener()
        agent = AuditedNaplet("audited")
        agent.state.set("private_quotes", {"secret": 1}, mode=AccessMode.PRIVATE)
        agent.state.set("public_banner", "hello", mode=AccessMode.PUBLIC)
        agent.state.set(
            "trusted_notes", None, mode=AccessMode.PROTECTED, allowed_servers={"s02"}
        )
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(["s01", "s02", "s03"], post_action=ResultReport())
            )
        )
        servers["s00"].launch(agent, owner="auditor", listener=listener)
        return listener.next_report(timeout=15).payload

    def test_private_entries_hidden_everywhere(self, audited_space):
        _network, servers, desks = audited_space
        payload = self._launch(servers)
        # every visited desk tried and failed to read the private entry
        assert desks["s01"].denied_reads == 1
        assert desks["s02"].denied_reads == 1
        assert desks["s03"].denied_reads == 1
        for hostname, visible in payload["audit"].items():
            assert "private_quotes" not in visible

    def test_public_entries_visible_everywhere(self, audited_space):
        _network, servers, _desks = audited_space
        payload = self._launch(servers)
        for visible in payload["audit"].values():
            assert "public_banner" in visible

    def test_protected_entry_writable_only_by_named_server(self, audited_space):
        _network, servers, desks = audited_space
        payload = self._launch(servers)
        # s02 updated the returning naplet; s01/s03 were denied
        assert payload["trusted_notes"] == "note-from-s02"
        assert desks["s01"].denied_writes == 1
        assert desks["s02"].denied_writes == 0
        assert desks["s03"].denied_writes == 1
