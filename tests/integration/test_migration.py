"""End-to-end migration: tours, directory modes, footprints, denials."""

from __future__ import annotations

import queue

import pytest

import repro
from repro.core.errors import NapletMigrationError
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import (
    DirectoryMode,
    NapletOutcome,
    Rule,
    SecurityPolicy,
    ServerConfig,
)
from repro.simnet import line, star
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet, FailingNaplet


class LogReporter(CollectorNaplet):
    """Reports its navigation-log trail from the last stop."""

    def on_start(self):
        context = self.require_context()
        if context.hostname == "s03":
            self.state.set("trail", list(self.navigation_log.servers_visited()))
        self.travel()


def _tour_agent(route, state_key="visited"):
    agent = CollectorNaplet("tour")
    agent.set_itinerary(
        Itinerary(SeqPattern.of_servers(route, post_action=ResultReport(state_key)))
    )
    return agent


@pytest.mark.parametrize(
    "mode", [DirectoryMode.HOME, DirectoryMode.CENTRAL, DirectoryMode.NONE]
)
def test_seq_tour_under_every_directory_mode(space, mode):
    kwargs = {}
    config = ServerConfig(directory_mode=mode)
    if mode is DirectoryMode.CENTRAL:
        config.directory_urn = "naplet://s00"
    network, servers = space(line(4, prefix="s"), config=config)
    listener = repro.NapletListener()
    agent = _tour_agent(["s01", "s02", "s03"])
    servers["s00"].launch(agent, owner="alice", listener=listener)
    report = listener.next_report(timeout=10)
    assert report.payload == ["s01", "s02", "s03"]


class TestTourSideEffects:
    def test_footprints_left_at_each_server(self, small_line):
        network, servers = small_line
        listener = repro.NapletListener()
        agent = _tour_agent(["s01", "s02", "s03"])
        nid = servers["s00"].launch(agent, owner="alice", listener=listener)
        listener.next_report(timeout=10)
        assert wait_until(lambda: servers["s03"].manager.footprint(nid) is not None)
        fp1 = servers["s01"].manager.footprint(nid)
        assert fp1 is not None
        assert fp1.departed_to == "naplet://s02"
        fp3 = servers["s03"].manager.footprint(nid)
        assert fp3.outcome == NapletOutcome.COMPLETED

    def test_directory_tracks_final_location(self, small_line):
        network, servers = small_line
        listener = repro.NapletListener()
        agent = _tour_agent(["s01", "s02"])
        nid = servers["s00"].launch(agent, owner="alice", listener=listener)
        listener.next_report(timeout=10)
        record = servers["s00"].directory_client.lookup(nid)
        assert record is not None
        assert record.server_urn == "naplet://s02"

    def test_navigation_log_complete_on_arrival_copy(self, small_line):
        network, servers = small_line
        listener = repro.NapletListener()
        agent = LogReporter("logger")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(["s01", "s02", "s03"], post_action=ResultReport("trail"))
            )
        )
        servers["s00"].launch(agent, owner="alice", listener=listener)
        report = listener.next_report(timeout=10)
        assert report.payload == ["naplet://s01", "naplet://s02", "naplet://s03"]

    def test_events_recorded(self, small_line):
        network, servers = small_line
        listener = repro.NapletListener()
        agent = _tour_agent(["s01"])
        nid = servers["s00"].launch(agent, owner="alice", listener=listener)
        listener.next_report(timeout=10)
        assert servers["s00"].events.count("naplet-launch") == 1
        assert servers["s01"].events.count("naplet-arrive") == 1
        assert servers["s01"].events.count("landing-granted") == 1

    def test_revisit_same_server(self, small_line):
        network, servers = small_line
        listener = repro.NapletListener()
        agent = _tour_agent(["s01", "s02", "s01"])
        servers["s00"].launch(agent, owner="alice", listener=listener)
        report = listener.next_report(timeout=10)
        assert report.payload == ["s01", "s02", "s01"]


class TestDenials:
    def test_landing_denied_at_launch(self, space):
        network, servers = space(line(3, prefix="s"))
        # lock down s01: nobody lands, so the initial launch fails in place
        servers["s01"].security.policy = SecurityPolicy.locked_down()
        agent = _tour_agent(["s01", "s02"])
        with pytest.raises(NapletMigrationError):
            servers["s00"].launch(agent, owner="alice")
        assert servers["s00"].events.count("landing-denied") == 1

    def test_landing_denied_mid_route_fails_agent(self, space):
        network, servers = space(line(3, prefix="s"))
        servers["s02"].security.policy = SecurityPolicy.locked_down()
        agent = _tour_agent(["s01", "s02"])
        nid = servers["s00"].launch(agent, owner="alice")
        assert wait_until(
            lambda: servers["s01"].monitor.outcomes.get(NapletOutcome.FAILED, 0) == 1
        )
        assert servers["s01"].events.count("landing-denied") >= 0
        assert servers["s02"].manager.footprint(nid) is None

    def test_skip_policy_routes_around_denial(self, space):
        network, servers = space(line(4, prefix="s"))
        servers["s02"].security.policy = SecurityPolicy.locked_down()
        listener = repro.NapletListener()
        agent = CollectorNaplet("skipper")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(
                    ["s01", "s02", "s03"], post_action=ResultReport("visited")
                ),
                on_failure="skip",
            )
        )
        servers["s00"].launch(agent, owner="alice", listener=listener)
        report = listener.next_report(timeout=10)
        assert report.payload == ["s01", "s03"]

    def test_max_residents_enforced(self, space):
        config = ServerConfig(max_residents=0)
        network, servers = space(line(2, prefix="s"))
        servers["s01"].config.max_residents = 0
        agent = _tour_agent(["s01"])
        with pytest.raises(NapletMigrationError):
            servers["s00"].launch(agent, owner="alice")

    def test_selective_owner_policy(self, space):
        network, servers = space(line(2, prefix="s"))
        servers["s01"].security.policy = SecurityPolicy(
            [Rule.of({"owner": "alice"}, grants={"*"})]
        )
        good = _tour_agent(["s01"])
        listener = repro.NapletListener()
        servers["s00"].launch(good, owner="alice", listener=listener)
        listener.next_report(timeout=10)

        bad = _tour_agent(["s01"])
        with pytest.raises(NapletMigrationError):
            servers["s00"].launch(bad, owner="mallory")


class TestFailureContainment:
    def test_agent_exception_trapped_and_retired(self, small_line):
        network, servers = small_line
        agent = FailingNaplet("boom")
        agent.set_itinerary(Itinerary(SeqPattern.of_servers(["s01"])))
        nid = servers["s00"].launch(agent, owner="alice")
        assert wait_until(
            lambda: servers["s01"].monitor.outcomes.get(NapletOutcome.FAILED, 0) == 1
        )
        footprint = servers["s01"].manager.footprint(nid)
        assert wait_until(lambda: footprint.outcome == NapletOutcome.FAILED)
        assert not servers["s01"].manager.is_resident(nid)

    def test_server_keeps_serving_after_agent_failure(self, small_line):
        network, servers = small_line
        bad = FailingNaplet("boom")
        bad.set_itinerary(Itinerary(SeqPattern.of_servers(["s01"])))
        servers["s00"].launch(bad, owner="alice")
        listener = repro.NapletListener()
        good = _tour_agent(["s01", "s02"])
        servers["s00"].launch(good, owner="alice", listener=listener)
        assert listener.next_report(timeout=10).payload == ["s01", "s02"]
