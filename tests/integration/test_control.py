"""Remote naplet control: terminate / suspend / resume / callback (paper §2.2)."""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern, seq
from repro.server import NapletOutcome
from repro.simnet import line
from repro.util.concurrency import wait_until
from tests.conftest import StallNaplet


def _stalled(servers, route=("s01",), spin=30.0, listener=None):
    agent = StallNaplet("stall", spin_seconds=spin)
    agent.set_itinerary(Itinerary(seq(*route)))
    nid = servers["s00"].launch(agent, owner="ctl", listener=listener)
    assert wait_until(lambda: servers[route[0]].manager.is_resident(nid))
    return agent, nid


class TestTerminate:
    def test_remote_terminate_stops_agent(self, small_line):
        network, servers = small_line
        agent, nid = _stalled(servers)
        servers["s00"].terminate_naplet(nid)
        assert wait_until(
            lambda: servers["s01"].monitor.outcomes.get(NapletOutcome.TERMINATED, 0) == 1,
            timeout=10,
        )
        assert not servers["s01"].manager.is_resident(nid)

    def test_on_interrupt_hook_sees_terminate(self, small_line):
        network, servers = small_line
        agent, nid = _stalled(servers)
        servers["s00"].terminate_naplet(nid)
        assert wait_until(lambda: servers["s01"].monitor.active_count == 0, timeout=10)
        # The travelled copy recorded the control; we can check via footprints
        # (state travelled with the copy, so look at the monitor's event log).
        assert servers["s01"].events.count("naplet-interrupt", control="terminate") == 1


class TestSuspendResume:
    def test_suspend_freezes_then_resume_continues(self, small_line):
        network, servers = small_line
        listener = repro.NapletListener()
        agent = StallNaplet("pausable", spin_seconds=0.8)
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(["s01", "s02"], post_action=ResultReport("controls"))
            )
        )
        nid = servers["s00"].launch(agent, owner="ctl", listener=listener)
        assert wait_until(lambda: servers["s01"].manager.is_resident(nid))
        servers["s00"].suspend_naplet(nid)
        assert wait_until(
            lambda: servers["s01"].events.count("naplet-interrupt", control="suspend") == 1
        )
        servers["s00"].resume_naplet(nid)
        report = listener.next_report(timeout=20)
        assert "suspend" in report.payload
        assert "resume" in report.payload


class TestCallback:
    def test_callback_delivers_payload(self, small_line):
        network, servers = small_line
        listener = repro.NapletListener()
        agent = StallNaplet("cb", spin_seconds=0.5)
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(["s01"], post_action=ResultReport("controls"))
            )
        )
        nid = servers["s00"].launch(agent, owner="ctl", listener=listener)
        assert wait_until(lambda: servers["s01"].manager.is_resident(nid))
        servers["s00"].callback_naplet(nid, {"why": "status"})
        report = listener.next_report(timeout=15)
        assert "callback" in report.payload


class TestControlChasesMovedNaplet:
    def test_control_forwarded_along_trace(self, space):
        network, servers = space(line(4, prefix="s"))
        agent = StallNaplet("runner", spin_seconds=5.0)
        agent.set_itinerary(Itinerary(seq("s01", "s02")))
        nid = servers["s00"].launch(agent, owner="ctl")
        assert wait_until(lambda: servers["s01"].manager.is_resident(nid))
        # let it move on
        assert wait_until(
            lambda: servers["s02"].manager.is_resident(nid), timeout=20
        )
        # address the control at the OLD server: it must chase to s02
        receipt = servers["s00"].messenger.send_control(
            nid, "terminate", dest_urn="naplet://s01"
        )
        assert receipt.status == "delivered"
        assert wait_until(
            lambda: servers["s02"].monitor.outcomes.get(NapletOutcome.TERMINATED, 0) == 1,
            timeout=10,
        )
