"""Scale: the MAN framework at 64 devices (thread-per-child fan-out)."""

from __future__ import annotations

import pytest

from repro.man import ManFramework


class TestManAtScale:
    def test_par_collection_over_64_devices(self):
        framework = ManFramework(n_devices=64, device_seed=31)
        try:
            table = framework.collect_with_naplets(["sysName", "cpuLoad"], mode="par",
                                                   timeout=120)
            assert len(table) == 64
            assert all(values["sysName"] == host for host, values in table.items())
            framework.wait_idle(30)
            # exactly 63 clones were spawned from the station
            clones = sum(
                s.events.count("clone-spawned") for s in framework.servers.values()
            )
            assert clones == 63
        finally:
            framework.shutdown()

    def test_seq_tour_over_64_devices(self):
        framework = ManFramework(n_devices=64, device_seed=32)
        try:
            table = framework.collect_with_naplets(["sysName"], mode="seq", timeout=120)
            assert len(table) == 64
        finally:
            framework.shutdown()
