"""MAN framework under non-default directory modes + hop-limit edge case."""

from __future__ import annotations

import pytest

from repro.man import ManFramework
from repro.server import DirectoryMode, ServerConfig
from repro.transport.base import urn_of


class TestManDirectoryModes:
    @pytest.mark.parametrize("mode", [DirectoryMode.CENTRAL, DirectoryMode.NONE])
    def test_collection_works(self, mode):
        config = ServerConfig(directory_mode=mode)
        if mode is DirectoryMode.CENTRAL:
            config.directory_urn = urn_of("station")
        framework = ManFramework(n_devices=3, config=config, device_seed=5)
        try:
            table = framework.collect_with_naplets(["sysName"], mode="par")
            assert {host: values["sysName"] for host, values in table.items()} == {
                host: host for host in framework.device_hosts
            }
            framework.wait_idle()
            seq_table = framework.collect_with_naplets(["sysName"], mode="seq")
            assert set(seq_table) == set(framework.device_hosts)
        finally:
            framework.shutdown()


class TestForwardingHopLimit:
    def test_trace_loop_yields_undeliverable(self, space):
        """A corrupted footprint loop must not forward forever."""
        from repro.core.errors import NapletCommunicationError
        from repro.core.naplet_id import NapletID
        from repro.simnet import line
        from tests.conftest import CollectorNaplet

        network, servers = space(line(3, prefix="s"))
        nid = NapletID.create("loopy", "s00", stamp="240101120000")
        # forge a forwarding loop: s01 says "went to s02", s02 says "went to s01"
        agent = CollectorNaplet("ghost")
        network.authority.register_owner("loopy")
        agent._assign_identity(nid, network.authority.issue(nid, "local", {}))
        servers["s01"].manager.record_arrival(agent, None)
        servers["s01"].manager.record_departure(nid, "naplet://s02")
        servers["s02"].manager.record_arrival(agent, None)
        servers["s02"].manager.record_departure(nid, "naplet://s01")
        with pytest.raises(NapletCommunicationError):
            servers["s00"].messenger.post(None, nid, "x", dest_urn="naplet://s01")
        # the chase was bounded: forwarding counts stayed finite
        total_forwards = (
            servers["s01"].messenger.forwarded_count
            + servers["s02"].messenger.forwarded_count
        )
        assert total_forwards <= 20
