"""Freeze/thaw (extension): checkpoint a live naplet, revive it anywhere."""

from __future__ import annotations

import pickle

import pytest

import repro
from repro.core.errors import NapletError
from repro.itinerary import Itinerary, ResultReport, SeqPattern, seq
from repro.server import NapletOutcome
from repro.simnet import line
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet, StallNaplet


class FreezableCollector(CollectorNaplet):
    """Collects hostnames but lingers so tests can freeze it mid-visit."""

    def on_start(self):
        import time

        context = self.require_context()
        visited = (self.state.get("visited") or []) + [context.hostname]
        self.state.set("visited", visited)
        deadline = time.monotonic() + 0.5
        while time.monotonic() < deadline:
            self.checkpoint()
            time.sleep(0.005)
        self.travel()


def _frozen_mid_journey(servers):
    """Launch toward s01..s03, freeze while working at s01."""
    listener = repro.NapletListener()
    agent = FreezableCollector("freezer")
    agent.set_itinerary(
        Itinerary(
            SeqPattern.of_servers(
                ["s01", "s02", "s03"], post_action=ResultReport("visited")
            )
        )
    )
    nid = servers["s00"].launch(agent, owner="ops", listener=listener)
    assert wait_until(lambda: servers["s01"].manager.is_resident(nid))
    image = servers["s01"].freeze_naplet(nid)
    return nid, image, listener


class TestFreeze:
    def test_freeze_returns_image_and_retires(self, small_line):
        _network, servers = small_line
        nid, image, _listener = _frozen_mid_journey(servers)
        assert len(image) > 0
        assert not servers["s01"].manager.is_resident(nid)
        footprint = servers["s01"].manager.footprint(nid)
        assert footprint.outcome == NapletOutcome.FROZEN
        assert servers["s01"].events.count("naplet-frozen") == 1

    def test_freeze_runs_on_stop_not_on_destroy(self, small_line):
        _network, servers = small_line
        agent = StallNaplet("hooks", spin_seconds=30.0)
        agent.set_itinerary(Itinerary(seq("s01")))
        nid = servers["s00"].launch(agent, owner="ops")
        assert wait_until(lambda: servers["s01"].manager.is_resident(nid))
        servers["s01"].freeze_naplet(nid)
        assert servers["s01"].monitor.outcomes.get(NapletOutcome.FROZEN) == 1
        # the freeze interrupt reached on_interrupt before unwinding
        assert servers["s01"].events.count("naplet-interrupt", control="freeze") == 1

    def test_freeze_non_resident_raises(self, small_line):
        _network, servers = small_line
        from repro.core.naplet_id import NapletID

        with pytest.raises(NapletError):
            servers["s01"].freeze_naplet(
                NapletID.create("ghost", "s00", stamp="240101120000")
            )


class TestThaw:
    def test_thaw_same_server_resumes_journey(self, small_line):
        _network, servers = small_line
        nid, image, listener = _frozen_mid_journey(servers)
        thawed = servers["s01"].thaw_naplet(image)
        assert thawed == nid
        report = listener.next_report(timeout=20)
        # s01 appears twice: once before the freeze, once after the revival
        assert report.payload == ["s01", "s01", "s02", "s03"]

    def test_thaw_elsewhere_continues_from_there(self, small_line):
        _network, servers = small_line
        nid, image, listener = _frozen_mid_journey(servers)
        servers["s02"].thaw_naplet(image)
        report = listener.next_report(timeout=20)
        # revived at s02 (the cursor's next stop is still s02, then s03)
        assert report.payload == ["s01", "s02", "s02", "s03"]

    def test_image_survives_pickling_to_disk(self, small_line, tmp_path):
        _network, servers = small_line
        nid, image, listener = _frozen_mid_journey(servers)
        path = tmp_path / "frozen.naplet"
        path.write_bytes(image)
        servers["s01"].thaw_naplet(path.read_bytes())
        report = listener.next_report(timeout=20)
        assert report.payload[0] == "s01"

    def test_double_thaw_rejected_while_resident(self, small_line):
        _network, servers = small_line
        nid, image, listener = _frozen_mid_journey(servers)
        servers["s01"].thaw_naplet(image)
        assert wait_until(lambda: servers["s01"].manager.is_resident(nid))
        with pytest.raises(NapletError):
            servers["s01"].thaw_naplet(image)
        listener.next_report(timeout=20)  # let the journey finish
