"""Admission policies: global and per-owner resident caps."""

from __future__ import annotations

import pytest

import repro
from repro.core.errors import NapletMigrationError
from repro.itinerary import Itinerary, seq
from repro.server import ServerConfig
from repro.simnet import line
from repro.util.concurrency import wait_until
from tests.conftest import StallNaplet


def _park_agent(servers, name: str, owner: str):
    agent = StallNaplet(name, spin_seconds=30.0)
    agent.set_itinerary(Itinerary(seq("s01")))
    return servers["s00"].launch(agent, owner=owner)


class TestPerOwnerCap:
    def test_owner_cap_blocks_third_agent(self, space):
        config = ServerConfig(max_residents_per_owner=2)
        _network, servers = space(line(2, prefix="s"), config=config)
        first = _park_agent(servers, "a1", "alice")
        second = _park_agent(servers, "a2", "alice")
        assert wait_until(lambda: servers["s01"].manager.resident_count == 2)
        with pytest.raises(NapletMigrationError, match="at capacity"):
            _park_agent(servers, "a3", "alice")
        # a different owner still gets in
        third = _park_agent(servers, "b1", "bob")
        assert wait_until(lambda: servers["s01"].manager.resident_count == 3)
        for nid in (first, second, third):
            servers["s00"].terminate_naplet(nid)
        assert servers["s01"].wait_idle(10)

    def test_cap_frees_up_after_departure(self, space):
        config = ServerConfig(max_residents_per_owner=1)
        _network, servers = space(line(2, prefix="s"), config=config)
        first = _park_agent(servers, "a1", "alice")
        assert wait_until(lambda: servers["s01"].manager.resident_count == 1)
        with pytest.raises(NapletMigrationError):
            _park_agent(servers, "a2", "alice")
        servers["s00"].terminate_naplet(first)
        assert servers["s01"].wait_idle(10)
        # slot is free again
        second = _park_agent(servers, "a3", "alice")
        assert wait_until(lambda: servers["s01"].manager.resident_count == 1)
        servers["s00"].terminate_naplet(second)

    def test_global_cap_interacts_with_owner_cap(self, space):
        config = ServerConfig(max_residents=1, max_residents_per_owner=5)
        _network, servers = space(line(2, prefix="s"), config=config)
        first = _park_agent(servers, "a1", "alice")
        assert wait_until(lambda: servers["s01"].manager.resident_count == 1)
        with pytest.raises(NapletMigrationError, match="server full"):
            _park_agent(servers, "b1", "bob")
        servers["s00"].terminate_naplet(first)
