"""MAN write path: a configuration naplet performing SNMP sets (§6).

The paper's motivation mentions "fine-grained get and set operations for
MIB parameters" — this covers the *set* side through the mobile-agent
path: a ConfigNaplet tours the devices and rewrites sysContact/sysLocation
through a read-write NetManagement service, something the default
read-only service must refuse.
"""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.man import SERVICE_NAME, ManFramework, net_management_factory
from repro.snmp.mib import WELL_KNOWN_NAMES

RW_SERVICE = "serviceImpl.NetManagementRW"


class ConfigNaplet(repro.Naplet):
    """Applies a {oid: value} configuration at every device."""

    def __init__(self, name, settings, service=RW_SERVICE, **kwargs):
        super().__init__(name, **kwargs)
        self.settings = settings
        self.service = service

    def on_start(self):
        context = self.require_context()
        channel = context.service_channel(self.service)
        results = dict(self.state.get("results") or {})
        per_device = {}
        for oid, value in self.settings.items():
            channel.get_naplet_writer().write(("set", oid, value))
            per_device[oid] = channel.get_naplet_reader().read()
        results[context.hostname] = per_device
        self.state.set("results", results)
        self.travel()


@pytest.fixture
def man():
    framework = ManFramework(n_devices=3, device_seed=21)
    # install a read-write variant of the privileged service on each device
    for hostname, server in framework.servers.items():
        if hostname == framework.station_host:
            continue
        server.register_privileged_service(
            RW_SERVICE, net_management_factory(framework.agents[hostname], community="private")
        )
    yield framework
    framework.shutdown()


class TestConfigurationNaplet:
    def test_set_applies_on_every_device(self, man):
        listener = repro.NapletListener()
        agent = ConfigNaplet(
            "configurator",
            settings={WELL_KNOWN_NAMES["sysContact"]: "noc@example.net"},
        )
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(man.device_hosts, post_action=ResultReport("results"))
            )
        )
        man.station_server.launch(agent, owner="noc", listener=listener)
        report = listener.next_report(timeout=15)
        for host in man.device_hosts:
            assert report.payload[host][WELL_KNOWN_NAMES["sysContact"]]["ok"] is True
            assert man.devices[host].get_field("sysContact") == "noc@example.net"

    def test_read_only_service_refuses_set(self, man):
        listener = repro.NapletListener()
        agent = ConfigNaplet(
            "rogue",
            settings={WELL_KNOWN_NAMES["sysName"]: "pwned"},
            service=SERVICE_NAME,  # the default read-only community
        )
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(man.device_hosts[:1], post_action=ResultReport("results"))
            )
        )
        man.station_server.launch(agent, owner="noc", listener=listener)
        report = listener.next_report(timeout=15)
        host = man.device_hosts[0]
        assert report.payload[host][WELL_KNOWN_NAMES["sysName"]]["ok"] is False
        assert man.devices[host].get_field("sysName") == host  # unchanged

    def test_cross_check_with_station_poll(self, man):
        """After agent-side configuration, the CNMP poll sees the new value."""
        listener = repro.NapletListener()
        agent = ConfigNaplet(
            "configurator",
            settings={WELL_KNOWN_NAMES["sysLocation"]: "rack B-12"},
        )
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(man.device_hosts, post_action=ResultReport("results"))
            )
        )
        man.station_server.launch(agent, owner="noc", listener=listener)
        listener.next_report(timeout=15)
        polled = man.collect_with_station(["sysLocation"])
        for values in polled.values():
            assert values["sysLocation"] == "rack B-12"
