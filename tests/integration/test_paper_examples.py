"""The paper's worked examples, reproduced end-to-end.

§3 Example 1 — single-agent information collection over s1..sn, results
reported back after the last visit.
§3 Example 2 — the same application with one agent per server in parallel,
each reporting home directly, plus the DataComm collective.
§3 Example 3 — four servers visited as par(seq(s0,s1), seq(s2,s3)).
§6           — the NMNaplet/NetManagement listing (broadcast itinerary over
managed devices, results in a protected DeviceStatus space).
"""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import (
    ChainOperable,
    DataComm,
    Itinerary,
    JoinPolicy,
    ParPattern,
    ResultReport,
    SeqPattern,
    SingletonPattern,
)
from repro.man import ManFramework
from repro.simnet import full_mesh
from tests.conftest import CollectorNaplet


class InfoCollector(CollectorNaplet):
    """The examples' information-gathering agent: one 'measurement' per stop."""

    def on_start(self):
        context = self.require_context()
        gathered = dict(self.state.get("gathered_info") or {})
        gathered[context.hostname] = f"workload@{context.hostname}"
        self.state.set("gathered_info", gathered)
        self.state.set("message", f"result-of-{context.hostname}")
        self.travel()


@pytest.fixture
def mesh(space):
    return space(full_mesh(5, prefix="s"))


class TestExample1SequentialCollection:
    def test_single_agent_reports_after_last_visit(self, mesh):
        _network, servers = mesh
        servers_to_visit = ["s01", "s02", "s03", "s04"]
        listener = repro.NapletListener()
        agent = InfoCollector("ex1")
        # the paper: new SeqPattern(servers, act) with act = ResultReport
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(
                    servers_to_visit, post_action=ResultReport("gathered_info")
                )
            )
        )
        servers["s00"].launch(agent, owner="czxu", listener=listener)
        report = listener.next_report(timeout=15)
        assert sorted(report.payload) == servers_to_visit
        # exactly ONE report: results come back after the last visit only
        assert listener.try_next() is None


class TestExample2ParallelCollection:
    def test_one_agent_per_server_reports_directly(self, mesh):
        _network, servers = mesh
        targets = ["s01", "s02", "s03", "s04"]
        listener = repro.NapletListener()
        agent = InfoCollector("ex2")
        # the paper: SingletonItinerary(server, act) per server, wrapped in
        # a ParPattern
        branches = [
            SingletonPattern.to(server, post_action=ResultReport("gathered_info"))
            for server in targets
        ]
        agent.set_itinerary(Itinerary(ParPattern(branches)))
        servers["s00"].launch(agent, owner="czxu", listener=listener)
        reports = listener.reports(len(targets), timeout=20)
        covered = sorted(host for r in reports for host in r.payload)
        assert covered == targets

    def test_datacomm_synchronises_the_agents(self, mesh):
        """The paper's generic collective-communication operator."""
        _network, servers = mesh
        targets = ["s01", "s02", "s03"]
        listener = repro.NapletListener()
        agent = InfoCollector("ex2-sync")
        action = ChainOperable(
            (DataComm(message_key="message", gather_key="gathered", timeout=20.0),
             ResultReport("gathered"))
        )
        agent.set_itinerary(
            Itinerary(ParPattern.of_servers(targets, per_branch_action=action))
        )
        servers["s00"].launch(agent, owner="czxu", listener=listener)
        reports = listener.reports(len(targets), timeout=30)
        for envelope in reports:
            bodies = sorted(m.body for m in envelope.payload)
            assert len(bodies) == len(targets) - 1
            assert all(b.startswith("result-of-s") for b in bodies)


class TestExample3ParOfSeq:
    def test_two_naplets_cover_two_paths(self, mesh):
        _network, servers = mesh
        listener = repro.NapletListener()
        agent = InfoCollector("ex3")
        # the paper: par(seq(s0, s1), seq(s2, s3))
        path0 = SeqPattern.of_servers(
            ["s01", "s02"], post_action=ResultReport("gathered_info")
        )
        path1 = SeqPattern.of_servers(
            ["s03", "s04"], post_action=ResultReport("gathered_info")
        )
        agent.set_itinerary(Itinerary(ParPattern([path0, path1])))
        nid = servers["s00"].launch(agent, owner="czxu", listener=listener)
        reports = listener.reports(2, timeout=20)
        payloads = sorted(sorted(r.payload) for r in reports)
        assert payloads == [["s01", "s02"], ["s03", "s04"]]
        # one naplet and its clone (heritage child) did the work
        reporters = sorted(str(r.reporter) for r in reports)
        assert reporters == [str(nid), f"{nid}.1"]


class TestSection6Listing:
    def test_nm_naplet_matches_the_listing(self):
        """NMNaplet: protected DeviceStatus space, broadcast itinerary,
        parameters passed through the NetManagement channel."""
        framework = ManFramework(n_devices=3, device_seed=77)
        try:
            table = framework.collect_with_naplets(
                ["sysName", "sysUpTime"], mode="par"
            )
            assert set(table) == set(framework.device_hosts)
            for host, values in table.items():
                assert values["sysName"] == host
                assert values["sysUpTime"] >= 0
        finally:
            framework.shutdown()

    def test_device_status_space_is_server_visible(self):
        """The listing stores results in a ProtectedNapletState: servers in
        the itinerary may read it (our PUBLIC-to-servers default)."""
        from repro.core.state import ProtectedNapletState
        from repro.man import NMNaplet

        agent = NMNaplet("probe", servers=["d1"], parameters="sysName")
        assert isinstance(agent.state, ProtectedNapletState)
        agent.state.update("DeviceStatus", {"d1": {"sysName": "d1"}})
        assert agent.state.server_get("DeviceStatus", "anyserver") == {
            "d1": {"sysName": "d1"}
        }
