"""Par itineraries end-to-end: broadcast clones, join policies."""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import (
    Itinerary,
    JoinPolicy,
    ParPattern,
    ResultReport,
    par,
    seq,
    singleton,
)
from repro.simnet import star
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet


def _devices(n):
    return [f"dev{i:02d}" for i in range(n)]


class TestBroadcast:
    def test_one_clone_per_server_reports_individually(self, space):
        network, servers = space(star(4))
        listener = repro.NapletListener()
        agent = CollectorNaplet("bcast")
        agent.set_itinerary(
            Itinerary(
                ParPattern.of_servers(_devices(4), per_branch_action=ResultReport("visited"))
            )
        )
        servers["station"].launch(agent, owner="nm", listener=listener)
        reports = listener.reports(4, timeout=15)
        assert sorted(r.payload[0] for r in reports) == _devices(4)

    def test_clone_ids_are_heritage_children(self, space):
        network, servers = space(star(3))
        listener = repro.NapletListener()
        agent = CollectorNaplet("bcast")
        agent.set_itinerary(
            Itinerary(
                ParPattern.of_servers(_devices(3), per_branch_action=ResultReport("visited"))
            )
        )
        nid = servers["station"].launch(agent, owner="nm", listener=listener)
        reports = listener.reports(3, timeout=15)
        reporter_ids = {str(r.reporter) for r in reports}
        assert str(nid) in reporter_ids
        assert {f"{nid}.1", f"{nid}.2"} <= reporter_ids

    def test_siblings_in_address_books(self, space):
        network, servers = space(star(3))
        listener = repro.NapletListener()
        agent = CollectorNaplet("bcast")
        agent.set_itinerary(
            Itinerary(
                ParPattern.of_servers(_devices(3), per_branch_action=ResultReport("visited"))
            )
        )
        servers["station"].launch(agent, owner="nm", listener=listener)
        listener.reports(3, timeout=15)
        # the original learned both clones at fork time
        assert len(agent.address_book) == 2

    def test_clone_credentials_reissued_and_verified(self, space):
        """Clones land on servers that verify signatures — so landing at all
        proves the re-issued credentials verify."""
        network, servers = space(star(3))
        listener = repro.NapletListener()
        agent = CollectorNaplet("bcast")
        agent.set_itinerary(
            Itinerary(
                ParPattern.of_servers(_devices(3), per_branch_action=ResultReport("visited"))
            )
        )
        servers["station"].launch(agent, owner="nm", listener=listener)
        reports = listener.reports(3, timeout=15)
        assert len(reports) == 3
        for hostname in _devices(3):
            assert servers[hostname].events.count("landing-granted") == 1


class TestJoinPolicies:
    def test_join_waits_for_all_branches(self, space):
        network, servers = space(star(5))
        listener = repro.NapletListener()
        agent = CollectorNaplet("joiner")
        pattern = seq(
            par(
                seq("dev00", "dev01"),
                seq("dev02", "dev03"),
                join=JoinPolicy.JOIN,
            ),
            singleton("dev04", post_action=ResultReport("visited")),
        )
        agent.set_itinerary(Itinerary(pattern))
        servers["station"].launch(agent, owner="nm", listener=listener)
        report = listener.next_report(timeout=20)
        assert report.payload == ["dev00", "dev01", "dev04"]
        # clone covered the other branch and retired
        assert wait_until(lambda: servers["dev03"].monitor.active_count == 0)
        assert servers["dev02"].manager.footprints()

    def test_terminate_policy_original_continues_alone(self, space):
        network, servers = space(star(4))
        listener = repro.NapletListener()
        agent = CollectorNaplet("term")
        pattern = seq(
            par("dev00", "dev01"),
            singleton("dev02", post_action=ResultReport("visited")),
        )
        agent.set_itinerary(Itinerary(pattern))
        servers["station"].launch(agent, owner="nm", listener=listener)
        report = listener.next_report(timeout=15)
        assert report.payload == ["dev00", "dev02"]
        # the clone must never visit dev02
        for server in servers.values():
            server.wait_idle(5)
        footprints = servers["dev02"].manager.footprints()
        assert len(footprints) == 1

    def test_continue_all_policy_everyone_runs_tail(self, space):
        network, servers = space(star(4))
        listener = repro.NapletListener()
        agent = CollectorNaplet("cont")
        pattern = seq(
            par("dev00", "dev01", join=JoinPolicy.CONTINUE_ALL),
            singleton("dev02", post_action=ResultReport("visited")),
        )
        agent.set_itinerary(Itinerary(pattern))
        servers["station"].launch(agent, owner="nm", listener=listener)
        reports = listener.reports(2, timeout=15)
        payloads = sorted(tuple(r.payload) for r in reports)
        assert payloads == [("dev00", "dev02"), ("dev01", "dev02")]

    def test_nested_par_fan_out(self, space):
        network, servers = space(star(6))
        listener = repro.NapletListener()
        agent = CollectorNaplet("nested")
        pattern = par(
            par(
                singleton("dev00", post_action=ResultReport("visited")),
                singleton("dev01", post_action=ResultReport("visited")),
            ),
            par(
                singleton("dev02", post_action=ResultReport("visited")),
                singleton("dev03", post_action=ResultReport("visited")),
            ),
        )
        agent.set_itinerary(Itinerary(pattern))
        servers["station"].launch(agent, owner="nm", listener=listener)
        reports = listener.reports(4, timeout=20)
        assert sorted(r.payload[0] for r in reports) == _devices(4)
