"""Resource quotas enforced on travelling naplets (paper §5.2)."""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern, seq
from repro.server import NapletOutcome, ResourceQuota, ServerConfig
from repro.simnet import line
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet, StallNaplet


class GreedyNaplet(repro.Naplet):
    """Burns CPU at its first stop (checkpointing cooperatively)."""

    def on_start(self):
        total = 0
        while True:
            for i in range(5000):
                total += i * i
            self.checkpoint()


class Spammer(repro.Naplet):
    """Posts messages to its victim in a loop (for message-quota tests)."""

    def __init__(self, name, victim, **kw):
        super().__init__(name, **kw)
        self.victim = victim

    def on_start(self):
        context = self.require_context()
        while True:
            context.messenger.post_message(None, self.victim, "spam")
            self.checkpoint()


class TestQuotaEnforcement:
    def test_cpu_quota_retires_greedy_agent(self, space):
        config = ServerConfig(default_quota=ResourceQuota(cpu_seconds=0.05))
        _network, servers = space(line(2, prefix="s"), config=config)
        agent = GreedyNaplet("greedy")
        agent.set_itinerary(Itinerary(seq("s01")))
        nid = servers["s00"].launch(agent, owner="ops")
        assert wait_until(
            lambda: servers["s01"].monitor.outcomes.get(NapletOutcome.QUOTA, 0) == 1,
            timeout=20,
        )
        # The outcome counter ticks before on_retire writes the footprint:
        # poll the footprint itself rather than racing that window.
        assert wait_until(
            lambda: getattr(servers["s01"].manager.footprint(nid), "outcome", None)
            == NapletOutcome.QUOTA,
            timeout=5,
        )

    def test_quota_policy_targets_specific_owners(self, space):
        def policy(credential):
            if credential.owner == "greedy-owner":
                return ResourceQuota(cpu_seconds=0.05)
            return None  # default (unlimited)

        config = ServerConfig(quota_policy=policy)
        _network, servers = space(line(2, prefix="s"), config=config)

        limited = GreedyNaplet("limited")
        limited.set_itinerary(Itinerary(seq("s01")))
        servers["s00"].launch(limited, owner="greedy-owner")
        assert wait_until(
            lambda: servers["s01"].monitor.outcomes.get(NapletOutcome.QUOTA, 0) == 1,
            timeout=20,
        )

        # a normal agent passes through the same server untouched
        listener = repro.NapletListener()
        normal = CollectorNaplet("normal")
        normal.set_itinerary(
            Itinerary(SeqPattern.of_servers(["s01"], post_action=ResultReport("visited")))
        )
        servers["s00"].launch(normal, owner="citizen", listener=listener)
        assert listener.next_report(timeout=10).payload == ["s01"]

    def test_message_quota_stops_spammer(self, space):
        config = ServerConfig(default_quota=ResourceQuota(max_messages=5))
        _network, servers = space(line(3, prefix="s"), config=config)

        target = StallNaplet("target", spin_seconds=30.0)
        target.set_itinerary(Itinerary(seq("s02")))
        target_id = servers["s00"].launch(target, owner="ops")
        assert wait_until(lambda: servers["s02"].manager.is_resident(target_id))

        spammer = Spammer("spammer", target_id)
        spammer.set_itinerary(Itinerary(seq("s01")))
        servers["s00"].launch(spammer, owner="ops")
        assert wait_until(
            lambda: servers["s01"].monitor.outcomes.get(NapletOutcome.QUOTA, 0) == 1,
            timeout=20,
        )
        servers["s00"].terminate_naplet(target_id)
