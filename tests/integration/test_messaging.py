"""Post-office messaging end-to-end: delivery, forwarding, parking, DataComm."""

from __future__ import annotations

import threading

import pytest

import repro
from repro.core.errors import NapletCommunicationError
from repro.itinerary import (
    Barrier,
    DataComm,
    Itinerary,
    ParPattern,
    ResultReport,
    SeqPattern,
    SingletonPattern,
    seq,
)
from repro.simnet import line, star
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet, EchoNaplet, StallNaplet


class Exchanger(CollectorNaplet):
    """Deposits a greeting under 'message' for DataComm to broadcast."""

    def on_start(self):
        context = self.require_context()
        self.state.set("message", f"hi-from-{context.hostname}")
        self.travel()


class Synced(CollectorNaplet):
    """Marks arrival; used with a Barrier post-action."""

    def on_start(self):
        self.state.set("arrived", True)
        self.travel()


class TestDirectDelivery:
    def test_server_posts_to_resident_naplet(self, small_line):
        network, servers = small_line
        agent = EchoNaplet("echo")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(["s01", "s02"], post_action=ResultReport("echo"))
            )
        )
        listener = repro.NapletListener()
        nid = servers["s00"].launch(agent, owner="alice", listener=listener)
        assert wait_until(lambda: servers["s01"].manager.is_resident(nid))
        receipt = servers["s00"].messenger.post(None, nid, {"hello": 1})
        assert receipt.status == "delivered"
        assert receipt.final_server == "naplet://s01"
        report = listener.next_report(timeout=10)
        assert report.payload == {"hello": 1}

    def test_confirmation_kept_for_inquiry(self, small_line):
        network, servers = small_line
        agent = EchoNaplet("echo")
        agent.set_itinerary(Itinerary(SeqPattern.of_servers(["s01"])))
        nid = servers["s00"].launch(agent, owner="alice")
        assert wait_until(lambda: servers["s01"].manager.is_resident(nid))
        receipt = servers["s00"].messenger.post(None, nid, "payload")
        kept = servers["s00"].messenger.receipt_for(receipt.message_id)
        assert kept == receipt


class TestForwarding:
    def test_message_chases_moved_naplet(self, space):
        network, servers = space(line(5, prefix="s"))
        agent = StallNaplet("mover", spin_seconds=1.0)
        agent.set_itinerary(Itinerary(seq("s01", "s02", "s03")))

        listener = repro.NapletListener()
        final = StallNaplet("rx", spin_seconds=6.0)
        pattern = SeqPattern(
            [SingletonPattern.to("s03", post_action=ResultReport("controls"))]
        )
        # Simpler: post to the mover after it left s01, addressed at s01.
        nid = servers["s00"].launch(agent, owner="alice")
        # wait until it has moved on to s02 at least
        assert wait_until(
            lambda: servers["s01"].manager.trace_next_hop(nid) is not None, timeout=10
        )
        receipt = servers["s00"].messenger.post(
            None, nid, {"chase": True}, dest_urn="naplet://s01"
        )
        # The chase may find the mover resident ("delivered"), still be
        # relaying ("forwarded"), or BEAT the in-flight mover to the next
        # server ("parked") — parked mail is handed over when it lands.
        assert receipt.status in ("delivered", "forwarded", "parked")
        assert receipt.final_server != "naplet://s01"
        assert servers["s01"].messenger.forwarded_count >= 1
        # Whatever raced, the park-then-deliver guarantee holds: the
        # message ends up in the mover's mailbox on some server.
        assert wait_until(
            lambda: sum(
                s.telemetry.messages_delivered.value() for s in servers.values()
            )
            >= 1,
            timeout=10,
        )

    def test_locator_cache_updated_by_confirmation(self, space):
        network, servers = space(line(4, prefix="s"))
        agent = StallNaplet("mover", spin_seconds=1.0)
        agent.set_itinerary(Itinerary(seq("s01", "s02")))
        nid = servers["s00"].launch(agent, owner="alice")
        assert wait_until(lambda: servers["s02"].manager.is_resident(nid), timeout=10)
        servers["s00"].messenger.post(None, nid, "x", dest_urn="naplet://s01")
        # after the chase, s00's locator knows the real location
        assert servers["s00"].locator.locate(nid) == "naplet://s02"


class TestSpecialMailbox:
    def test_early_message_parks_then_delivers(self, small_line):
        network, servers = small_line
        agent = EchoNaplet("late")
        agent.set_itinerary(
            Itinerary(SeqPattern.of_servers(["s02"], post_action=ResultReport("echo")))
        )
        listener = repro.NapletListener()

        # Pre-assign identity so we can address the naplet before launch.
        from repro.core.naplet_id import NapletID

        servers["s00"].authority.register_owner("alice")
        nid = NapletID.create("alice", "s00", stamp="240101120000")
        agent._assign_identity(
            nid, servers["s00"].authority.issue(nid, agent.codebase, {})
        )

        # The message arrives at s02 before the naplet does.
        receipt = servers["s00"].messenger.post(
            None, nid, {"early": True}, dest_urn="naplet://s02"
        )
        assert receipt.status == "parked"
        assert servers["s02"].messenger.special_mailbox_size(nid) == 1

        servers["s00"].launch(agent, owner="alice", listener=listener)
        report = listener.next_report(timeout=10)
        assert report.payload == {"early": True}
        assert servers["s02"].messenger.special_mailbox_size(nid) == 0


class TestUndeliverable:
    def test_unlocatable_naplet_raises(self, small_line):
        network, servers = small_line
        from repro.core.naplet_id import NapletID

        ghost = NapletID.create("ghost", "s03", stamp="240101120000")
        with pytest.raises(NapletCommunicationError):
            servers["s00"].messenger.post(None, ghost, "x")


class TestCollectives:
    def test_datacomm_exchanges_between_siblings(self, space):
        network, servers = space(star(3))

        agent = Exchanger("xchg")
        listener = repro.NapletListener()
        exchange = DataComm(message_key="message", gather_key="gathered", timeout=15.0)
        from repro.itinerary import ChainOperable

        action = ChainOperable((exchange, ResultReport("gathered")))
        agent.set_itinerary(
            Itinerary(
                ParPattern.of_servers(
                    ["dev00", "dev01", "dev02"], per_branch_action=action
                )
            )
        )
        servers["station"].launch(agent, owner="alice", listener=listener)
        reports = listener.reports(3, timeout=30)
        for envelope in reports:
            bodies = sorted(m.body for m in envelope.payload)
            assert len(bodies) == 2  # one message from each sibling
            assert all(b.startswith("hi-from-dev") for b in bodies)

    def test_barrier_synchronises_siblings(self, space):
        network, servers = space(star(3))

        agent = Synced("barrier")
        listener = repro.NapletListener()
        from repro.itinerary import ChainOperable

        action = ChainOperable((Barrier(timeout=20.0), ResultReport("arrived")))
        agent.set_itinerary(
            Itinerary(
                ParPattern.of_servers(
                    ["dev00", "dev01", "dev02"], per_branch_action=action
                )
            )
        )
        servers["station"].launch(agent, owner="alice", listener=listener)
        reports = listener.reports(3, timeout=30)
        assert len(reports) == 3
