"""Trap-driven naplet dispatch: management by exception."""

from __future__ import annotations

import pytest

from repro.man import ManFramework, ReactiveDispatcher
from repro.snmp.trap import TrapSender, TrapType
from repro.util.concurrency import wait_until


@pytest.fixture
def reactive_man():
    framework = ManFramework(n_devices=3, device_seed=55)
    dispatcher = ReactiveDispatcher(framework.station_server)
    sink = dispatcher.sink_for(framework.network.transport, framework.station_host)
    senders = {
        hostname: TrapSender(framework.devices[hostname], framework.network.transport, sink.urn)
        for hostname in framework.device_hosts
    }
    yield framework, dispatcher, sink, senders
    sink.close()
    framework.shutdown()


class TestReactiveDispatch:
    def test_link_down_trap_triggers_onsite_diagnosis(self, reactive_man):
        framework, dispatcher, _sink, senders = reactive_man
        victim = framework.device_hosts[1]
        senders[victim].link_down(2)
        report = dispatcher.listener.next_report(timeout=20)
        diagnosis = report.payload
        assert diagnosis["device"] == victim
        assert diagnosis["interfaces_down"] == [2]
        assert str(TrapType.LINK_DOWN) in diagnosis["trap"]
        assert 0.0 <= diagnosis["cpu_load"] <= 1.0
        # The dispatcher records the dispatch after launch() returns, which
        # races the report posted from the device server.
        assert wait_until(lambda: dispatcher.dispatch_count == 1)

    def test_each_trap_dispatches_one_agent(self, reactive_man):
        framework, dispatcher, _sink, senders = reactive_man
        for hostname in framework.device_hosts:
            senders[hostname].cpu_high()
        reports = dispatcher.listener.reports(len(framework.device_hosts), timeout=30)
        diagnosed = sorted(r.payload["device"] for r in reports)
        assert diagnosed == framework.device_hosts
        assert wait_until(
            lambda: dispatcher.dispatch_count == len(framework.device_hosts)
        )

    def test_diagnosis_sees_healthy_interfaces_after_recovery(self, reactive_man):
        framework, dispatcher, _sink, senders = reactive_man
        victim = framework.device_hosts[0]
        senders[victim].link_down(1)
        first = dispatcher.listener.next_report(timeout=20)
        assert first.payload["interfaces_down"] == [1]
        senders[victim].link_up(1)
        second = dispatcher.listener.next_report(timeout=20)
        assert second.payload["interfaces_down"] == []

    def test_custom_naplet_factory(self, reactive_man):
        framework, _dispatcher, sink, senders = reactive_man
        from repro.core.listener import NapletListener
        from repro.itinerary import Itinerary, ResultReport, SeqPattern
        from tests.conftest import CollectorNaplet

        listener = NapletListener()

        def factory(trap):
            agent = CollectorNaplet(f"custom-{trap.source}")
            agent.set_itinerary(
                Itinerary(
                    SeqPattern.of_servers([trap.source], post_action=ResultReport("visited"))
                )
            )
            return agent

        custom = ReactiveDispatcher(
            framework.station_server, listener=listener, naplet_factory=factory
        )
        sink._callback = custom.handle_trap  # rewire the shared sink
        senders[framework.device_hosts[2]].cold_start()
        report = listener.next_report(timeout=20)
        assert report.payload == [framework.device_hosts[2]]
