"""A naplet space over real TCP sockets: the protocol works off-stack."""

from __future__ import annotations

import pytest

import repro
from repro.codeshipping.codebase import CodeBaseRegistry
from repro.core.credential import SigningAuthority
from repro.itinerary import Itinerary, ParPattern, ResultReport, SeqPattern
from repro.server import NapletServer, ServerConfig
from repro.transport.tcp import TcpTransport
from tests.conftest import CollectorNaplet


@pytest.fixture
def tcp_space():
    transport = TcpTransport()
    authority = SigningAuthority()
    registry = CodeBaseRegistry()
    servers = {
        name: NapletServer(
            hostname=name,
            transport=transport,
            authority=authority,
            code_registry=registry,
            config=ServerConfig(),
        )
        for name in ("t00", "t01", "t02")
    }
    yield servers
    for server in servers.values():
        server.shutdown()
    transport.close()


class TestTcpSpace:
    def test_seq_tour_over_sockets(self, tcp_space):
        listener = repro.NapletListener()
        agent = CollectorNaplet("tcp-tour")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(["t01", "t02"], post_action=ResultReport("visited"))
            )
        )
        tcp_space["t00"].launch(agent, owner="alice", listener=listener)
        report = listener.next_report(timeout=20)
        assert report.payload == ["t01", "t02"]

    def test_par_broadcast_over_sockets(self, tcp_space):
        listener = repro.NapletListener()
        agent = CollectorNaplet("tcp-bcast")
        agent.set_itinerary(
            Itinerary(
                ParPattern.of_servers(["t01", "t02"], per_branch_action=ResultReport("visited"))
            )
        )
        tcp_space["t00"].launch(agent, owner="alice", listener=listener)
        reports = listener.reports(2, timeout=20)
        assert sorted(r.payload[0] for r in reports) == ["t01", "t02"]

    def test_messaging_over_sockets(self, tcp_space):
        from repro.util.concurrency import wait_until
        from tests.conftest import EchoNaplet

        listener = repro.NapletListener()
        agent = EchoNaplet("tcp-echo")
        agent.set_itinerary(
            Itinerary(SeqPattern.of_servers(["t01"], post_action=ResultReport("echo")))
        )
        nid = tcp_space["t00"].launch(agent, owner="alice", listener=listener)
        assert wait_until(lambda: tcp_space["t01"].manager.is_resident(nid), timeout=10)
        receipt = tcp_space["t00"].messenger.post(None, nid, {"over": "tcp"})
        assert receipt.status == "delivered"
        assert listener.next_report(timeout=20).payload == {"over": "tcp"}
