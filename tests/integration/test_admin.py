"""SpaceAdmin: space-wide monitoring and control."""

from __future__ import annotations

import pytest

import repro
from repro.core.errors import NapletError
from repro.itinerary import Itinerary, ResultReport, SeqPattern, seq
from repro.server import NapletOutcome, SpaceAdmin
from repro.simnet import line
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet, StallNaplet


@pytest.fixture
def admin_space(space):
    network, servers = space(line(4, prefix="s"))
    return network, servers, SpaceAdmin(servers)


class TestQueries:
    def test_locate_resident(self, admin_space):
        _network, servers, admin = admin_space
        agent = StallNaplet("target", spin_seconds=30.0)
        agent.set_itinerary(Itinerary(seq("s02")))
        nid = servers["s00"].launch(agent, owner="admin")
        assert wait_until(lambda: admin.locate(nid) == "s02")
        assert admin.alive_naplets() == {nid: "s02"}
        admin.terminate(nid)
        assert admin.wait_space_idle(10)

    def test_locate_unknown_none(self, admin_space):
        from repro.core.naplet_id import NapletID

        _n, _s, admin = admin_space
        assert admin.locate(NapletID.create("ghost", "s00", stamp="240101120000")) is None

    def test_trace_reconstructs_journey(self, admin_space):
        _network, servers, admin = admin_space
        listener = repro.NapletListener()
        agent = CollectorNaplet("tourist")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(["s01", "s02", "s03"], post_action=ResultReport("visited"))
            )
        )
        nid = servers["s00"].launch(agent, owner="admin", listener=listener)
        listener.next_report(timeout=10)
        assert wait_until(lambda: len(admin.trace(nid)) == 4)  # home + 3 visits
        trace = admin.trace(nid)
        hops = [fp.departed_to for fp in trace]
        assert hops[:3] == ["naplet://s01", "naplet://s02", "naplet://s03"]
        assert trace[-1].outcome is not None

    def test_status_of_running_naplet(self, admin_space):
        _network, servers, admin = admin_space
        agent = StallNaplet("runner", spin_seconds=30.0)
        agent.set_itinerary(Itinerary(seq("s01")))
        nid = servers["s00"].launch(agent, owner="admin")
        assert wait_until(lambda: admin.locate(nid) is not None)
        status = admin.status(nid)
        assert status.alive
        assert status.resident_at == "s01"
        assert status.outcome is None
        assert status.cpu_seconds is not None
        admin.terminate(nid)
        assert admin.wait_space_idle(10)

    def test_status_of_retired_naplet(self, admin_space):
        _network, servers, admin = admin_space
        listener = repro.NapletListener()
        agent = CollectorNaplet("done")
        agent.set_itinerary(
            Itinerary(SeqPattern.of_servers(["s01"], post_action=ResultReport("visited")))
        )
        nid = servers["s00"].launch(agent, owner="admin", listener=listener)
        listener.next_report(timeout=10)
        assert wait_until(
            lambda: admin.status(nid).outcome == NapletOutcome.COMPLETED
        )
        status = admin.status(nid)
        assert not status.alive
        assert status.resident_at is None

    def test_space_summary(self, admin_space):
        _network, servers, admin = admin_space
        listener = repro.NapletListener()
        agent = CollectorNaplet("sum")
        agent.set_itinerary(
            Itinerary(SeqPattern.of_servers(["s01"], post_action=ResultReport("visited")))
        )
        servers["s00"].launch(agent, owner="admin", listener=listener)
        listener.next_report(timeout=10)
        servers["s01"].wait_idle(5)
        rows = {row.hostname: row for row in admin.space_summary()}
        assert set(rows) == {"s00", "s01", "s02", "s03"}
        assert rows["s01"].admitted_total == 1
        assert rows["s01"].outcomes.get(NapletOutcome.COMPLETED) == 1
        assert rows["s01"].footprints == 1


class TestControl:
    def test_suspend_resume_via_admin(self, admin_space):
        _network, servers, admin = admin_space
        agent = StallNaplet("pausable", spin_seconds=30.0)
        agent.set_itinerary(Itinerary(seq("s01")))
        nid = servers["s00"].launch(agent, owner="admin")
        assert wait_until(lambda: admin.locate(nid) == "s01")
        admin.suspend(nid)
        assert wait_until(
            lambda: servers["s01"].events.count("naplet-interrupt", control="suspend") == 1
        )
        admin.resume(nid)
        admin.terminate(nid)
        assert admin.wait_space_idle(10)

    def test_terminate_all(self, admin_space):
        _network, servers, admin = admin_space
        for index in range(3):
            agent = StallNaplet(f"worker-{index}", spin_seconds=30.0)
            agent.set_itinerary(Itinerary(seq(f"s{index + 1:02d}")))
            servers["s00"].launch(agent, owner="admin")
        assert wait_until(lambda: len(admin.alive_naplets()) == 3)
        killed = admin.terminate_all()
        assert killed == 3
        assert admin.wait_space_idle(10)

    def test_control_unknown_naplet_raises(self, admin_space):
        from repro.core.naplet_id import NapletID

        _n, _s, admin = admin_space
        ghost = NapletID.create("ghost", "nowhere", stamp="240101120000")
        with pytest.raises(NapletError):
            admin.terminate(ghost)

    def test_requires_servers(self):
        with pytest.raises(NapletError):
            SpaceAdmin([])
