"""Fast-path migration vs two-phase: equivalence, wire accounting, rollback."""

from __future__ import annotations

import time

import pytest

import repro
from repro.core.errors import LandingDeniedError
from repro.itinerary import Itinerary, ResultReport, SeqPattern, seq
from repro.server import ServerConfig
from repro.simnet import line
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet, StallNaplet

FAST_AND_SLOW = pytest.mark.parametrize("fast", [True, False], ids=["fast", "two-phase"])


class DenialSurvivor(repro.Naplet):
    """Travels into a denial, reports it home, then stays put spinning."""

    def on_start(self):
        try:
            self.travel()
        except LandingDeniedError as exc:
            self.report_home(f"denied: {exc}")
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            self.checkpoint()
            time.sleep(0.005)


def _tour_agent(route):
    agent = CollectorNaplet("tour")
    agent.set_itinerary(
        Itinerary(SeqPattern.of_servers(route, post_action=ResultReport("visited")))
    )
    return agent


def _landing_requests(network) -> int:
    counter = network.transport.metrics.counter("wire_frames_total")
    return int(counter.value(kind="landing-request"))


class TestEquivalence:
    """Both protocols must leave identical observable state behind."""

    @FAST_AND_SLOW
    def test_tour_outcome_and_directory_state(self, space, fast):
        network, servers = space(
            line(4, prefix="s"), config=ServerConfig(migration_fast_path=fast)
        )
        listener = repro.NapletListener()
        nid = servers["s00"].launch(_tour_agent(["s01", "s02", "s03"]), owner="alice",
                                    listener=listener)
        report = listener.next_report(timeout=10)
        assert report.payload == ["s01", "s02", "s03"]
        record = servers["s00"].directory_client.lookup(nid)
        assert record is not None
        assert record.server_urn == "naplet://s03"
        assert wait_until(lambda: servers["s01"].manager.footprint(nid) is not None)
        assert servers["s01"].manager.footprint(nid).departed_to == "naplet://s02"
        # Wire accounting is where the protocols differ: the fast path
        # makes zero LANDING_REQUEST exchanges, two-phase makes one per hop.
        hops = 3

        def fast_hops():
            return sum(
                int(servers[h].telemetry.fast_path_hops.value()) for h in servers
            )

        if fast:
            assert _landing_requests(network) == 0
            # The source increments its hop counter after the transfer ack,
            # concurrently with the naplet already running at the
            # destination — so the final report can beat the last increment.
            assert wait_until(lambda: fast_hops() == hops)
        else:
            assert _landing_requests(network) == hops
            assert fast_hops() == 0

    @FAST_AND_SLOW
    def test_message_chases_moved_naplet(self, space, fast):
        network, servers = space(
            line(5, prefix="s"), config=ServerConfig(migration_fast_path=fast)
        )
        agent = StallNaplet("mover", spin_seconds=2.0)
        agent.set_itinerary(Itinerary(seq("s01", "s02")))
        nid = servers["s00"].launch(agent, owner="alice")
        assert wait_until(lambda: servers["s02"].manager.is_resident(nid), timeout=10)
        # Addressed at the server it already left: must chase along the trace.
        receipt = servers["s00"].messenger.post(
            None, nid, {"chase": True}, dest_urn="naplet://s01"
        )
        assert receipt.status == "delivered"
        assert receipt.final_server == "naplet://s02"
        assert servers["s01"].messenger.forwarded_count >= 1
        servers["s00"].terminate_naplet(nid)
        assert servers["s02"].wait_idle(10)


class TestDenialRollback:
    """A denied landing must leave the naplet fully functional at the source."""

    @FAST_AND_SLOW
    def test_denial_rolls_back_residency_directory_and_mailbox(self, space, fast):
        config = ServerConfig(migration_fast_path=fast, max_residents=1)
        network, servers = space(line(3, prefix="s"), config=config)
        # A blocker fills s02 so the mover's landing there is denied.
        blocker = StallNaplet("blocker", spin_seconds=30.0)
        blocker.set_itinerary(Itinerary(seq("s02")))
        blocker_nid = servers["s00"].launch(blocker, owner="bob")
        assert wait_until(lambda: servers["s02"].manager.is_resident(blocker_nid))

        mover = DenialSurvivor("mover")
        mover.set_itinerary(Itinerary(seq("s01", "s02")))
        listener = repro.NapletListener()
        nid = servers["s00"].launch(mover, owner="alice", listener=listener)
        report = listener.next_report(timeout=10)
        assert "denied" in report.payload
        assert "server full" in report.payload
        # Rollback restored residency at the source ...
        assert servers["s01"].manager.is_resident(nid)
        # ... the directory still points at the source ...
        record = servers["s00"].directory_client.lookup(nid)
        assert record is not None
        assert record.server_urn == "naplet://s01"
        # ... and the mailbox still receives mail there.
        receipt = servers["s00"].messenger.post(None, nid, {"ping": 1})
        assert receipt.status == "delivered"
        assert receipt.final_server == "naplet://s01"
        for victim in (nid, blocker_nid):
            servers["s00"].terminate_naplet(victim)
        assert servers["s01"].wait_idle(10)
        assert servers["s02"].wait_idle(10)


class TestFallback:
    def test_two_phase_fallback_when_destination_opts_out(self, space):
        network, servers = space(line(3, prefix="s"))  # fast path on by default
        servers["s02"].config.migration_fast_path = False
        listener = repro.NapletListener()
        servers["s00"].launch(
            _tour_agent(["s01", "s02"]), owner="alice", listener=listener
        )
        report = listener.next_report(timeout=10)
        assert report.payload == ["s01", "s02"]
        # s00 -> s01 went fast; s01 -> s02 was answered "unsupported" and
        # re-ran as two-phase (one LANDING_REQUEST on the wire).  Source-side
        # counters increment after each transfer ack, so wait them in.
        assert wait_until(
            lambda: int(servers["s00"].telemetry.fast_path_hops.value()) == 1
        )
        assert int(servers["s01"].telemetry.fast_path_fallbacks.value()) == 1
        assert servers["s01"].events.count("fast-path-fallback") == 1
        assert _landing_requests(network) == 1
