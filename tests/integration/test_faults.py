"""Fault injection: link failures, partitions, and agent resilience."""

from __future__ import annotations

import pytest

import repro
from repro.core.errors import NapletMigrationError
from repro.faults import RetryPolicy
from repro.itinerary import Itinerary, ResultReport, SeqPattern, alt, seq, singleton
from repro.server import NapletOutcome, ServerConfig
from repro.simnet import VirtualNetwork, full_mesh, line
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet


class SlowCollector(CollectorNaplet):
    """Collector that lingers ~0.3s at each stop (lets tests inject faults)."""

    def on_start(self):
        import time

        context = self.require_context()
        visited = (self.state.get("visited") or []) + [context.hostname]
        self.state.set("visited", visited)
        deadline = time.monotonic() + 0.3
        while time.monotonic() < deadline:
            self.checkpoint()
            time.sleep(0.01)
        self.travel()


class TestMigrationFaults:
    def test_launch_over_dead_link_fails(self, space):
        network, servers = space(line(2, prefix="s"))
        network.fail_link("s00", "s01")
        agent = CollectorNaplet("doomed")
        agent.set_itinerary(Itinerary(seq("s01")))
        with pytest.raises(NapletMigrationError):
            servers["s00"].launch(agent, owner="ops")

    def test_heal_restores_service(self, space):
        """The SAME agent survives a transient outage via the retry path.

        The retry policy's injectable sleep doubles as the heal hook: the
        first attempt fails on the dead link, the backoff wait heals it,
        and the second attempt delivers the agent — no fresh-agent
        relaunch workaround.
        """
        network = VirtualNetwork(line(2, prefix="s"))

        def heal_during_backoff(_wait: float) -> None:
            network.heal_link("s00", "s01")

        config = ServerConfig(
            migration_retry=RetryPolicy(
                max_attempts=3, base_delay=0.01, jitter=0.0, sleep=heal_during_backoff
            )
        )
        network, servers = space(network, config=config)
        network.fail_link("s00", "s01")
        listener = repro.NapletListener()
        agent = CollectorNaplet("retry")
        agent.set_itinerary(
            Itinerary(SeqPattern.of_servers(["s01"], post_action=ResultReport("visited")))
        )
        servers["s00"].launch(agent, owner="ops", listener=listener)
        assert listener.next_report(timeout=10).payload == ["s01"]
        assert servers["s00"].telemetry.migration_retries.value() >= 1

    def test_retries_zero_keeps_give_up_semantics(self, space):
        """max_attempts=1 is exactly the historical behavior: one try, raise."""
        network, servers = space(
            line(2, prefix="s"),
            config=ServerConfig(migration_retry=RetryPolicy(max_attempts=1)),
        )
        network.fail_link("s00", "s01")
        agent = CollectorNaplet("doomed-no-retry")
        agent.set_itinerary(Itinerary(seq("s01")))
        with pytest.raises(NapletMigrationError):
            servers["s00"].launch(agent, owner="ops")
        assert servers["s00"].telemetry.migration_retries.value() == 0

    def test_skip_policy_survives_partitioned_host(self, space):
        network, servers = space(full_mesh(4, prefix="n"))
        network.partition_host("n02")
        listener = repro.NapletListener()
        agent = CollectorNaplet("resilient")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(
                    ["n01", "n02", "n03"], post_action=ResultReport("visited")
                ),
                on_failure="skip",
            )
        )
        servers["n00"].launch(agent, owner="ops", listener=listener)
        report = listener.next_report(timeout=15)
        assert report.payload == ["n01", "n03"]

    def test_alt_falls_back_to_reachable_mirror(self, space):
        network, servers = space(full_mesh(4, prefix="n"))
        network.partition_host("n01")  # primary mirror dead
        listener = repro.NapletListener()
        agent = CollectorNaplet("mirror-client")
        pattern = seq(
            alt("n01", "n02"),
            singleton("n03", post_action=ResultReport("visited")),
        )
        agent.set_itinerary(Itinerary(pattern))
        servers["n00"].launch(agent, owner="ops", listener=listener)
        report = listener.next_report(timeout=15)
        assert report.payload == ["n02", "n03"]

    def test_failed_transfer_rolls_back_residency(self, space):
        network, servers = space(line(3, prefix="s"))
        listener = repro.NapletListener()

        agent = SlowCollector("rollback")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(
                    ["s01", "s02"], per_visit_action=ResultReport("visited")
                ),
                on_failure="skip",
            )
        )
        nid = servers["s00"].launch(agent, owner="ops", listener=listener)
        assert wait_until(lambda: servers["s01"].manager.is_resident(nid), timeout=5)
        network.fail_link("s01", "s02")
        # dispatch to s02 fails; skip policy completes the journey at s01
        report = listener.next_report(timeout=15)
        assert report.payload == ["s01"]
        # the agent retired AT s01 (residency rolled back, then completed)
        footprint = servers["s01"].manager.footprint(nid)
        assert wait_until(lambda: footprint.outcome == NapletOutcome.COMPLETED)
        assert footprint.departed_to is None


class TestMessagingFaults:
    def test_datacomm_swallows_dead_sibling_link(self, space):
        """The paper's DataComm listing swallows NapletCommunicationException."""
        from repro.itinerary import ChainOperable, DataComm, ParPattern
        from tests.integration.test_messaging import Exchanger

        network, servers = space(full_mesh(4, prefix="n"))
        listener = repro.NapletListener()
        agent = Exchanger("sturdy")
        action = ChainOperable(
            (DataComm(message_key="message", gather_key="gathered", timeout=3.0),
             ResultReport("gathered"))
        )
        agent.set_itinerary(
            Itinerary(ParPattern.of_servers(["n01", "n02", "n03"], per_branch_action=action))
        )
        servers["n00"].launch(agent, owner="ops", listener=listener)
        reports = listener.reports(3, timeout=30)
        assert len(reports) == 3
