"""Code shipping end-to-end: lazy fetches per server, eager bundling."""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import ServerConfig, deploy
from repro.simnet import VirtualNetwork, line
from tests.transport.shipped_fixture import StampedPayload


# An agent class shipped by codebase reference; module must stay loadable by
# the restricted loader, so it lives in the clean fixture module's terms.
from tests.integration.shipped_agent import RoamingProbe  # noqa: E402


def _build(eager: bool):
    network = VirtualNetwork(line(4, prefix="srv", latency=0.001))
    config = ServerConfig(eager_code=eager, codebase_host="srv00")
    servers = deploy(network, config=config)
    codebase = network.code_registry.create("codebase://tests/probe")
    codebase.add_class(RoamingProbe)
    return network, servers


class TestLazyShipping:
    def test_first_visit_fetches_revisit_hits(self, space):
        network, servers = _build(eager=False)
        try:
            listener = repro.NapletListener()
            agent = RoamingProbe("probe")
            agent.set_itinerary(
                Itinerary(
                    SeqPattern.of_servers(
                        ["srv01", "srv02", "srv01"], post_action=ResultReport("hops")
                    )
                )
            )
            servers["srv00"].launch(agent, owner="ship", listener=listener)
            report = listener.next_report(timeout=15)
            assert report.payload == ["srv01", "srv02", "srv01"]
            assert servers["srv01"].code_cache.misses == 1
            assert servers["srv01"].code_cache.hits >= 1  # the revisit
            assert servers["srv02"].code_cache.misses == 1
            assert servers["srv01"].events.count("codebase-fetch") == 1
        finally:
            network.shutdown()

    def test_fetch_traffic_metered_from_codebase_host(self, space):
        network, servers = _build(eager=False)
        try:
            listener = repro.NapletListener()
            agent = RoamingProbe("probe")
            agent.set_itinerary(
                Itinerary(
                    SeqPattern.of_servers(["srv03"], post_action=ResultReport("hops"))
                )
            )
            servers["srv00"].launch(agent, owner="ship", listener=listener)
            listener.next_report(timeout=15)
            stats = network.meter.kind_stats("codebase-fetch")
            assert stats.frames == 1
            assert stats.bytes > 100
        finally:
            network.shutdown()


class TestEagerShipping:
    def test_no_fetches_bigger_payloads(self, space):
        lazy_net, lazy_servers = _build(eager=False)
        eager_net, eager_servers = _build(eager=True)
        try:
            for servers, network in ((lazy_servers, lazy_net), (eager_servers, eager_net)):
                listener = repro.NapletListener()
                agent = RoamingProbe("probe")
                agent.set_itinerary(
                    Itinerary(
                        SeqPattern.of_servers(
                            ["srv01", "srv02"], post_action=ResultReport("hops")
                        )
                    )
                )
                servers["srv00"].launch(agent, owner="ship", listener=listener)
                assert listener.next_report(timeout=15).payload == ["srv01", "srv02"]
            # eager: no fetch events anywhere
            assert all(
                s.events.count("codebase-fetch") == 0 for s in eager_servers.values()
            )
            assert any(
                s.events.count("codebase-fetch") > 0 for s in lazy_servers.values()
            )
            # eager transfers carry the code: more naplet-transfer bytes
            lazy_bytes = lazy_net.meter.kind_stats("naplet-transfer").bytes
            eager_bytes = eager_net.meter.kind_stats("naplet-transfer").bytes
            assert eager_bytes > lazy_bytes
        finally:
            lazy_net.shutdown()
            eager_net.shutdown()

    def test_shipped_state_survives_reconstruction(self, space):
        network, servers = _build(eager=False)
        try:
            listener = repro.NapletListener()
            agent = RoamingProbe("probe")
            agent.state.set("payload", StampedPayload(21))
            # also bundle the payload class so it ships lazily too
            payload_cb = network.code_registry.create("codebase://tests/payload")
            payload_cb.add_class(StampedPayload)
            agent.set_itinerary(
                Itinerary(
                    SeqPattern.of_servers(["srv01"], post_action=ResultReport("doubled"))
                )
            )
            servers["srv00"].launch(agent, owner="ship", listener=listener)
            report = listener.next_report(timeout=15)
            assert report.payload == 42
        finally:
            network.shutdown()
