"""Stress: many concurrent agents crossing the same space.

These are race detectors, not benchmarks — lots of simultaneous
migrations, forks and reports over shared servers, asserting nothing is
lost and every server ends quiescent.
"""

from __future__ import annotations

import queue

import pytest

import repro
from repro.itinerary import Itinerary, ParPattern, ResultReport, SeqPattern
from repro.server import SpaceAdmin
from repro.simnet import full_mesh, star
from tests.conftest import CollectorNaplet


class TestMigrationStorm:
    def test_twenty_agents_ten_hops_each(self, space):
        network, servers = space(full_mesh(6, prefix="m"))
        hosts = sorted(servers)
        listener = repro.NapletListener()
        n_agents = 20
        for index in range(n_agents):
            # every agent gets a different rotation of the hosts, 10 hops
            rotation = [hosts[(index + k) % len(hosts)] for k in range(1, 11)]
            agent = CollectorNaplet(f"storm-{index}")
            agent.set_itinerary(
                Itinerary(
                    SeqPattern.of_servers(rotation, post_action=ResultReport("visited"))
                )
            )
            servers[hosts[index % len(hosts)]].launch(
                agent, owner=f"owner{index % 3}", listener=listener
            )
        reports = listener.reports(n_agents, timeout=60)
        assert len(reports) == n_agents
        for envelope in reports:
            assert len(envelope.payload) == 10
        admin = SpaceAdmin(servers)
        assert admin.wait_space_idle(20)
        # no naplet left a dangling channel or thread anywhere (departure
        # cleanup on origin threads may lag the journey by a moment)
        from repro.util.concurrency import wait_until

        for server in servers.values():
            assert server.resource_manager.active_channel_count == 0
            assert wait_until(lambda s=server: s.monitor.active_count == 0, timeout=10)

    def test_parallel_fan_out_storm(self, space):
        network, servers = space(star(8))
        devices = sorted(h for h in servers if h != "station")
        listener = repro.NapletListener()
        n_waves = 6
        for wave in range(n_waves):
            agent = CollectorNaplet(f"wave-{wave}")
            agent.set_itinerary(
                Itinerary(
                    ParPattern.of_servers(devices, per_branch_action=ResultReport("visited"))
                )
            )
            servers["station"].launch(agent, owner="storm", listener=listener)
        expected = n_waves * len(devices)
        reports = listener.reports(expected, timeout=60)
        assert len(reports) == expected
        visits: dict[str, int] = {}
        for envelope in reports:
            visits[envelope.payload[0]] = visits.get(envelope.payload[0], 0) + 1
        assert all(count == n_waves for count in visits.values())
        admin = SpaceAdmin(servers)
        assert admin.wait_space_idle(20)

    def test_interleaved_messaging_storm(self, space):
        """Concurrent DataComm collectives across sibling groups."""
        from repro.itinerary import ChainOperable, DataComm
        from tests.integration.test_messaging import Exchanger

        network, servers = space(full_mesh(5, prefix="m"))
        hosts = sorted(servers)
        listener = repro.NapletListener()
        n_groups = 4
        for group in range(n_groups):
            agent = Exchanger(f"group-{group}")
            action = ChainOperable(
                (DataComm(message_key="message", gather_key="gathered", timeout=20.0),
                 ResultReport("gathered"))
            )
            targets = [hosts[(group + k) % len(hosts)] for k in range(1, 4)]
            agent.set_itinerary(
                Itinerary(ParPattern.of_servers(targets, per_branch_action=action))
            )
            servers[hosts[group % len(hosts)]].launch(
                agent, owner=f"grp{group}", listener=listener
            )
        reports = listener.reports(n_groups * 3, timeout=90)
        for envelope in reports:
            assert len(envelope.payload) == 2  # exactly the two siblings
        admin = SpaceAdmin(servers)
        assert admin.wait_space_idle(30)
