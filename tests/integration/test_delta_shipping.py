"""Delta state shipping end-to-end: negotiation, fallback, and chaos.

The unit suite (tests/transport/test_delta.py) proves the envelope
machinery; this file proves the *space-level* contract over both
transports:

- repeat hops between the same pair of servers ship deltas;
- a v1-only destination transparently downgrades the route to full v1
  images — the journey never notices;
- a destination that lost its base image mid-itinerary (cache eviction,
  restart...) acks ``need_full`` and the sender re-ships the full image
  within the same hop.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro
from repro.codeshipping.codebase import CodeBaseRegistry
from repro.core.credential import SigningAuthority
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import NapletServer, ServerConfig, SpaceAdmin
from repro.simnet import VirtualNetwork, line
from repro.transport.tcp import TcpTransport
from tests.conftest import CollectorNaplet

ROUTE = ["d01", "d00"] * 3  # six hops, ping-pong

# Hook the saboteur courier calls mid-journey (in-process transports run
# agents in this very process, so a module global reaches them).
_SABOTAGE: dict = {}


class SaboteurCourier(CollectorNaplet):
    """Collector that fires the registered sabotage hook at one hop."""

    def on_start(self) -> None:
        context = self.require_context()
        visited = (self.state.get("visited") or []) + [context.hostname]
        self.state.set("visited", visited)
        hook = _SABOTAGE.get("hook")
        if hook is not None and len(visited) == _SABOTAGE.get("at"):
            hook(context.hostname)
        self.travel()


def _tcp_space(config_by_name: dict[str, ServerConfig]):
    transport = TcpTransport(pooled=True)
    authority = SigningAuthority()
    registry = CodeBaseRegistry()
    servers = {
        name: NapletServer(
            hostname=name,
            transport=transport,
            authority=authority,
            code_registry=registry,
            config=config,
        )
        for name, config in config_by_name.items()
    }
    return transport, servers


def _configs(delta_on_d01: bool = True) -> dict[str, ServerConfig]:
    base = ServerConfig(migration_fast_path=True, delta_shipping=True)
    return {
        "d00": dataclasses.replace(base),
        "d01": dataclasses.replace(base, delta_shipping=delta_on_d01),
    }


def _journey(servers) -> None:
    listener = repro.NapletListener()
    agent = CollectorNaplet("courier")
    agent.set_itinerary(
        Itinerary(SeqPattern.of_servers(ROUTE, post_action=ResultReport("visited")))
    )
    servers["d00"].launch(agent, owner="alice", listener=listener)
    assert listener.next_report(timeout=30).payload == ROUTE
    # The report fires from the landing server before the *sender* of the
    # final hop finishes its ack bookkeeping (delta counters included):
    # drain the space before reading telemetry.
    SpaceAdmin(servers).wait_space_idle(timeout=10)


def _total(servers, counter: str) -> int:
    return int(sum(getattr(s.telemetry, counter).total() for s in servers.values()))


class TestDeltaOverInMemory:
    @pytest.fixture
    def memory_space(self):
        network = VirtualNetwork(line(2, prefix="d"))
        yield network
        network.shutdown()

    def _attach(self, network, configs):
        return {
            name: NapletServer.attach(network.host(name), config)
            for name, config in configs.items()
        }

    def test_repeat_hops_ship_deltas(self, memory_space):
        servers = self._attach(memory_space, _configs())
        _journey(servers)
        # Hop 1 is always a full image; every later hop had an acked base.
        assert _total(servers, "delta_hops") == len(ROUTE) - 1
        assert _total(servers, "delta_saved_bytes") > 0
        assert _total(servers, "delta_full_reships") == 0

    def test_v1_only_peer_downgrades_route_transparently(self, memory_space):
        servers = self._attach(memory_space, _configs(delta_on_d01=False))
        _journey(servers)
        # d01 rejects v2, so d00 pinned it as v1-only; d01 itself never
        # dumps v2 (delta shipping is off there).  No hop shipped a delta,
        # yet the journey completed untouched.
        assert _total(servers, "delta_hops") == 0
        assert "naplet://d01" in servers["d00"].navigator._v1_peers

    def test_evicted_base_forces_transparent_full_reship(self, memory_space):
        servers = self._attach(memory_space, _configs())
        sabotage_at = 3  # naplet sits on d01; next hop lands on d00

        def evict_everywhere_else(current_host: str) -> None:
            for name, server in servers.items():
                if name != current_host:
                    server.serializer.delta_cache.clear()

        _SABOTAGE.update(hook=evict_everywhere_else, at=sabotage_at)
        try:
            listener = repro.NapletListener()
            agent = SaboteurCourier("chaos-courier")
            agent.set_itinerary(
                Itinerary(
                    SeqPattern.of_servers(ROUTE, post_action=ResultReport("visited"))
                )
            )
            servers["d00"].launch(agent, owner="alice", listener=listener)
            assert listener.next_report(timeout=30).payload == ROUTE
            SpaceAdmin(servers).wait_space_idle(timeout=10)
        finally:
            _SABOTAGE.clear()
        # The sender still believed in its base, the receiver had lost it:
        # exactly one need_full round trip, then delta shipping resumed.
        assert _total(servers, "delta_full_reships") == 1
        # Hops #1 (first image) and #4 (the need_full reship) are full;
        # the reship re-seeds both ends, so later hops return to deltas.
        # Hop #5 may go either way — the eviction also hit d00's sender
        # cache, but hop #4's landing re-seeds it in time on most runs.
        assert len(ROUTE) - 3 <= _total(servers, "delta_hops") <= len(ROUTE) - 2


class TestDeltaOverTcp:
    def test_repeat_hops_ship_deltas_over_sockets(self):
        transport, servers = _tcp_space(_configs())
        try:
            _journey(servers)
            assert _total(servers, "delta_hops") == len(ROUTE) - 1
            assert _total(servers, "delta_full_reships") == 0
        finally:
            for server in servers.values():
                server.shutdown()
            transport.close()

    def test_v1_only_peer_falls_back_over_sockets(self):
        transport, servers = _tcp_space(_configs(delta_on_d01=False))
        try:
            _journey(servers)
            assert _total(servers, "delta_hops") == 0
            assert "naplet://d01" in servers["d00"].navigator._v1_peers
        finally:
            for server in servers.values():
                server.shutdown()
            transport.close()
