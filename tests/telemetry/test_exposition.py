"""The in-space exposition surface: the open ``telemetry`` service and the
text/JSON renderers."""

from __future__ import annotations

import json

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.telemetry.exposition import (
    TelemetryService,
    metrics_to_dict,
    render_metrics_text,
    span_to_dict,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import TraceContext, Tracer
from tests.conftest import CollectorNaplet


def _run_tour(servers):
    listener = repro.NapletListener()
    agent = CollectorNaplet("tour")
    agent.set_itinerary(
        Itinerary(
            SeqPattern.of_servers(
                ["s01", "s02", "s03"], post_action=ResultReport("visited")
            )
        )
    )
    nid = servers["s00"].launch(agent, owner="alice", listener=listener)
    listener.next_report(timeout=10)
    assert servers["s03"].wait_idle()
    return nid


class TestTelemetryService:
    def test_registered_as_open_service_on_every_server(self, small_line):
        _network, servers = small_line
        for server in servers.values():
            assert "telemetry" in server.resource_manager.open_service_names()

    def test_service_exposes_metrics_and_spans(self, small_line):
        _network, servers = small_line
        nid = _run_tour(servers)
        service = TelemetryService(servers["s01"])
        assert service.hostname == "s01"

        snap = service.metrics()
        assert snap.total("naplet_landings_total") == 1

        text = service.metrics_text()
        assert "# TYPE naplet_landings_total counter" in text
        assert "naplet_landings_total 1" in text

        spans = service.spans()
        assert any(s.name == "landing" for s in spans)
        trace_id = spans[0].trace_id
        assert all(s.trace_id == trace_id for s in service.spans(trace_id))

        dicts = service.span_dicts(trace_id)
        assert dicts and all(d["trace_id"] == trace_id for d in dicts)
        json.dumps(dicts)  # JSON-serializable

        counts = service.event_counts()
        assert counts.get("naplet-arrive", 0) >= 1

    def test_metrics_dict_is_json_serializable(self, small_line):
        _network, servers = small_line
        _run_tour(servers)
        payload = TelemetryService(servers["s00"]).metrics_dict()
        encoded = json.loads(json.dumps(payload))
        assert encoded["naplet_launches_total"]["type"] == "counter"
        assert encoded["naplet_launches_total"]["samples"][0]["value"] == 1


class TestPerfHistograms:
    """The perf plane's hop-cost instruments on the exposition surface."""

    def test_hop_bytes_exposed_with_part_labels_and_inf_bucket(self, small_line):
        _network, servers = small_line
        _run_tour(servers)
        text = TelemetryService(servers["s00"]).metrics_text()
        assert "# TYPE naplet_hop_bytes histogram" in text
        assert 'naplet_hop_bytes_bucket{part="payload",le="+Inf"} 1' in text
        assert 'naplet_hop_bytes_bucket{part="header",le="+Inf"} 1' in text
        assert 'naplet_hop_bytes_count{part="payload"} 1' in text
        # Buckets are cumulative: every finite-bound count <= the +Inf count.
        finite = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith('naplet_hop_bytes_bucket{part="payload"')
        ]
        assert finite == sorted(finite)

    def test_serialize_seconds_split_by_op(self, small_line):
        _network, servers = small_line
        _run_tour(servers)
        # s01 both received (loads) and forwarded (dumps) the naplet.
        text = TelemetryService(servers["s01"]).metrics_text()
        assert "# TYPE naplet_serialize_seconds histogram" in text
        assert 'naplet_serialize_seconds_count{op="dumps"}' in text
        assert 'naplet_serialize_seconds_count{op="loads"}' in text

    def test_disabled_telemetry_keeps_hop_instruments_silent(self, space):
        from repro.server import ServerConfig
        from tests.conftest import line

        _network, servers = space(
            line(4, prefix="s"), config=ServerConfig(telemetry_enabled=False)
        )
        _run_tour(servers)
        server = servers["s00"]
        assert server.telemetry.hop_bytes.value(part="payload").count == 0
        assert server.telemetry.serialize_seconds.value(op="dumps").count == 0


class TestRenderers:
    def test_counter_text_format(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", "Requests served").inc(3, kind="a")
        text = render_metrics_text(reg.snapshot())
        assert "# HELP requests_total Requests served" in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{kind="a"} 3' in text

    def test_histogram_text_has_cumulative_buckets_and_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        text = render_metrics_text(reg.snapshot())
        assert "lat_count 3" in text
        assert "lat_sum 11" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text

    def test_label_values_escape_reserved_characters(self):
        """Prometheus exposition reserves \\ " and newline inside quoted
        label values; raw occurrences would corrupt the whole page."""
        reg = MetricsRegistry()
        counter = reg.counter("odd_total", "odd labels")
        counter.inc(path='C:\\temp\\"x"\nnext')
        text = render_metrics_text(reg.snapshot())
        assert 'path="C:\\\\temp\\\\\\"x\\"\\nnext"' in text
        # The rendered page stays one-sample-per-line.
        sample_lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(sample_lines) == 1

    def test_backslash_escaped_before_quote_and_newline(self):
        # Escaping backslash last would double-escape the other two.
        from repro.telemetry.exposition import _escape_label_value

        assert _escape_label_value("\\") == "\\\\"
        assert _escape_label_value('"') == '\\"'
        assert _escape_label_value("\n") == "\\n"
        assert _escape_label_value('\\"') == '\\\\\\"'
        assert _escape_label_value("plain") == "plain"

    def test_labeled_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v, op="send")
        text = render_metrics_text(reg.snapshot())
        assert 'lat_bucket{op="send",le="1"} 1' in text
        assert 'lat_bucket{op="send",le="2"} 2' in text
        assert 'lat_bucket{op="send",le="+Inf"} 3' in text
        assert 'lat_count{op="send"} 3' in text

    def test_gauge_text_format(self):
        reg = MetricsRegistry()
        reg.gauge("depth", "queue depth").set(7)
        text = render_metrics_text(reg.snapshot())
        assert "# TYPE depth gauge" in text
        assert "depth 7" in text

    def test_metrics_to_dict_histogram_shape(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0,)).observe(5.0)
        out = metrics_to_dict(reg.snapshot())
        sample = out["lat"]["samples"][0]
        assert sample["labels"] == {}
        assert sample["value"]["count"] == 1
        assert sample["value"]["overflow"] == 1
        assert sample["value"]["buckets"] == [{"le": 1.0, "count": 0}]

    def test_span_to_dict_roundtrips_through_json(self):
        tracer = Tracer("host")
        ctx = TraceContext.mint()
        with tracer.span("hop", ctx, dest="naplet://b"):
            pass
        encoded = json.loads(json.dumps(span_to_dict(tracer.spans()[0])))
        assert encoded["name"] == "hop"
        assert encoded["server"] == "host"
        assert encoded["attributes"]["dest"] == "naplet://b"
        assert encoded["status"] == "ok"
