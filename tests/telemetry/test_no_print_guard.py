"""Lint guard: production code must report through the EventLog, metrics, or
spans — never ``print``.  Examples and benchmarks may print; ``src/repro``
may not."""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

# A real call: `print(` not preceded by an identifier character, a dot
# (method named print), or a quote (string mentioning it).
_PRINT_CALL = re.compile(r"(?<![\w.\"'])print\(")


def test_src_tree_is_print_free():
    offenders: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            code = line.split("#", 1)[0]
            if _PRINT_CALL.search(code):
                offenders.append(f"{path.relative_to(SRC.parent)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "print() calls found in src/repro — use the EventLog or telemetry "
        "instead:\n" + "\n".join(offenders)
    )


def test_guard_scans_a_nontrivial_tree():
    files = list(SRC.rglob("*.py"))
    assert len(files) > 30, "src/repro unexpectedly small — guard misconfigured?"
