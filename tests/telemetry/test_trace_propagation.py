"""Trace contexts must survive everything a naplet survives: pickling,
freeze/thaw revival, and multi-hop message forwarding chains."""

from __future__ import annotations

import pickle

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import SpaceAdmin
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet
from tests.integration.test_freeze_thaw import FreezableCollector
from tests.telemetry.test_journey_integration import MessagingTourist, _tour


class SlowTourist(CollectorNaplet):
    """Collector that lingers at every stop so posts can chase it."""

    def on_start(self):
        import time

        context = self.require_context()
        deadline = time.monotonic() + 0.4
        while time.monotonic() < deadline:
            self.checkpoint()
            time.sleep(0.005)
        super().on_start()


class TestPickleRoundtrip:
    def test_trace_context_travels_in_the_naplet_pickle(self):
        agent = CollectorNaplet("pickled")
        ctx = agent._ensure_trace()
        clone = pickle.loads(pickle.dumps(agent))
        assert clone.trace_context == ctx

    def test_unlaunched_naplet_has_no_trace(self):
        agent = CollectorNaplet("fresh")
        assert agent.trace_context is None


class TestFreezeThaw:
    def test_thawed_naplet_continues_the_same_trace(self, small_line):
        _network, servers = small_line
        admin = SpaceAdmin(servers)
        listener = repro.NapletListener()
        agent = FreezableCollector("freezer")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(
                    ["s01", "s02", "s03"], post_action=ResultReport("visited")
                )
            )
        )
        nid = servers["s00"].launch(agent, owner="ops", listener=listener)
        assert wait_until(lambda: servers["s01"].manager.is_resident(nid))
        image = servers["s01"].freeze_naplet(nid)

        # The frozen image carries the trace context minted at launch.
        frozen = servers["s01"].serializer.loads(image, servers["s01"].code_cache)
        assert frozen.trace_context is not None
        launch = servers["s00"].telemetry.tracer.find("launch", naplet=str(nid))[0]
        assert frozen.trace_context.trace_id == launch.trace_id

        servers["s03"].thaw_naplet(image)
        # Revived at s03, the cursor still points at s02, then s03 again.
        assert listener.next_report(timeout=20).payload == ["s01", "s03", "s02", "s03"]
        assert admin.wait_space_idle()

        journey = admin.journey(nid)
        servers_in_trace = {span.server for span in journey.spans}
        assert {"s00", "s01", "s03"} <= servers_in_trace
        # The thaw landing has no migration frame, so it joins the journey
        # directly under the launch root.
        thaw_landings = [
            span
            for span in journey.find("landing")
            if span.server == "s03" and span.attr("arrived_from") is None
        ]
        assert len(thaw_landings) == 1
        assert thaw_landings[0].parent_id == launch.span_id


class TestForwardingChain:
    def test_chained_forwards_share_the_send_span_parent(self, small_line):
        _network, servers = small_line
        admin = SpaceAdmin(servers)

        # The target tours s01 -> s02 -> s03, lingering at every stop, so a
        # message posted to a stale s01 address has to be forwarded twice.
        target_listener = repro.NapletListener()
        target = _tour(SlowTourist("slow-target"), ["s01", "s02", "s03"])
        target_nid = servers["s00"].launch(
            target, owner="bob", listener=target_listener
        )
        assert wait_until(lambda: servers["s03"].manager.is_resident(target_nid))

        listener = repro.NapletListener()
        tourist = _tour(MessagingTourist("tourist"), ["s01", "s03"])
        tourist.state.set("target", target_nid)
        nid = servers["s00"].launch(tourist, owner="alice", listener=listener)
        listener.next_report(timeout=10)
        target_listener.next_report(timeout=10)
        assert wait_until(
            lambda: len(admin.journey(nid).find("message-forward")) >= 2
        )

        journey = admin.journey(nid)
        send = journey.find("message-send")[0]
        forwards = journey.find("message-forward")
        assert {f.server for f in forwards} == {"s01", "s02"}
        # Every forward in the chain hangs off the original send span, and
        # the hop counts climb as the message chases the target.
        assert {f.parent_id for f in forwards} == {send.span_id}
        assert sorted(f.attr("hops") for f in forwards) == [1, 2]
        assert {f.trace_id for f in forwards} == {send.trace_id}
