"""Unit tests for trace contexts, spans, tracers, and journey stitching."""

from __future__ import annotations

import pickle

import pytest

from repro.telemetry.journey import stitch
from repro.telemetry.trace import NULL_SPAN, Span, TraceContext, Tracer


def _span(trace_id="t", span_id="s", parent_id=None, name="n", mono=0.0, **attrs):
    return Span(
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        server="host",
        start_wall=mono,
        start_mono=mono,
        duration=0.001,
        attributes=attrs,
    )


class TestTraceContext:
    def test_mint_is_unique(self):
        a, b = TraceContext.mint(), TraceContext.mint()
        assert a.trace_id != b.trace_id
        assert len(a.trace_id) == 32 and len(a.span_id) == 16

    def test_child_rebases_root(self):
        ctx = TraceContext.mint()
        child = ctx.child("abc")
        assert child.trace_id == ctx.trace_id
        assert child.span_id == "abc"

    def test_pickles_roundtrip(self):
        ctx = TraceContext.mint()
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestTracer:
    def test_span_records_timing_and_attributes(self):
        tracer = Tracer("host")
        ctx = TraceContext.mint()
        with tracer.span("hop", ctx, dest="naplet://b") as sp:
            sp.set("bytes", 42)
        spans = tracer.spans()
        assert len(spans) == 1
        span = spans[0]
        assert span.name == "hop"
        assert span.trace_id == ctx.trace_id
        assert span.parent_id == ctx.span_id  # defaults to the context root
        assert span.attr("dest") == "naplet://b"
        assert span.attr("bytes") == 42
        assert span.duration >= 0.0
        assert span.status == "ok"

    def test_explicit_parent_and_span_id(self):
        tracer = Tracer("host")
        ctx = TraceContext.mint()
        with tracer.span("launch", ctx, parent_id="", span_id=ctx.span_id):
            pass
        span = tracer.spans()[0]
        assert span.span_id == ctx.span_id
        assert not span.parent_id  # explicit root

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer("host")
        ctx = TraceContext.mint()
        with pytest.raises(RuntimeError):
            with tracer.span("hop", ctx):
                raise RuntimeError("boom")
        span = tracer.spans()[0]
        assert span.status == "error"
        assert "boom" in span.attr("error")

    def test_disabled_tracer_hands_out_null_span(self):
        tracer = Tracer("host", enabled=False)
        ctx = TraceContext.mint()
        with tracer.span("hop", ctx) as sp:
            sp.set("ignored", 1)
        assert sp is NULL_SPAN
        assert sp.span_id == ""
        assert len(tracer) == 0

    def test_bounded_like_eventlog(self):
        tracer = Tracer("host", maxlen=3)
        ctx = TraceContext.mint()
        for i in range(5):
            tracer.record(f"s{i}", ctx)
        assert [s.name for s in tracer] == ["s2", "s3", "s4"]

    def test_spans_for_and_find(self):
        tracer = Tracer("host")
        a, b = TraceContext.mint(), TraceContext.mint()
        tracer.record("hop", a, dest="x")
        tracer.record("hop", b, dest="y")
        assert len(tracer.spans_for(a.trace_id)) == 1
        assert tracer.find("hop", dest="y")[0].trace_id == b.trace_id


class TestStitch:
    def test_parent_links_and_sibling_order(self):
        spans = [
            _span(span_id="root", name="launch", mono=0.0),
            _span(span_id="h2", parent_id="root", name="hop", mono=2.0),
            _span(span_id="h1", parent_id="root", name="hop", mono=1.0),
            _span(span_id="l1", parent_id="h1", name="landing", mono=1.5),
        ]
        journey = stitch(spans)
        assert len(journey) == 4
        (root,) = journey.roots
        assert root.span.name == "launch"
        assert [c.span.span_id for c in root.children] == ["h1", "h2"]
        assert root.children[0].children[0].span.name == "landing"

    def test_orphans_become_roots(self):
        journey = stitch([_span(span_id="x", parent_id="gone", name="hop")])
        assert len(journey.roots) == 1
        assert journey.roots[0].span.name == "hop"

    def test_duplicate_span_ids_kept_once(self):
        journey = stitch([_span(span_id="a"), _span(span_id="a")])
        assert len(journey) == 1

    def test_empty(self):
        journey = stitch([])
        assert not journey
        assert journey.render() == "(empty journey)"

    def test_render_tree(self):
        spans = [
            _span(span_id="root", name="launch", mono=0.0),
            _span(
                span_id="h1", parent_id="root", name="hop", mono=1.0,
                source="a", dest="naplet://b",
            ),
        ]
        text = stitch(spans).render()
        assert "journey t" in text
        assert "launch" in text
        assert "hop" in text
        assert "a -> naplet://b" in text
        assert "ms" in text
