"""Unit tests for the metrics primitives (counters, gauges, histograms)."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricsRegistry,
    MetricsSnapshot,
    exponential_buckets,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c", "help")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_split_samples(self):
        c = Counter("c", "")
        c.inc(kind="a")
        c.inc(kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 2
        assert c.value(kind="b") == 1
        assert c.value(kind="missing") == 0
        assert c.total() == 3

    def test_label_order_is_irrelevant(self):
        c = Counter("c", "")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1

    def test_negative_increment_rejected(self):
        c = Counter("c", "")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_disabled_counter_is_noop(self):
        c = Counter("c", "", enabled=False)
        c.inc(100)
        assert c.value() == 0

    def test_thread_safety(self):
        c = Counter("c", "")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("g", "")
        g.set(5)
        g.add(-2)
        assert g.value() == 3

    def test_disabled_gauge_is_noop(self):
        g = Gauge("g", "", enabled=False)
        g.set(5)
        assert g.value() == 0


class TestHistogram:
    def test_observe_buckets_and_mean(self):
        h = Histogram("h", "", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        value = h.value()
        assert value.count == 4
        assert value.total == pytest.approx(105.0)
        assert value.mean == pytest.approx(105.0 / 4)
        # non-cumulative buckets plus the overflow slot
        assert value.bucket_counts == (1, 1, 1, 1)

    def test_empty_value(self):
        h = Histogram("h", "", buckets=(1.0,))
        value = h.value()
        assert value.count == 0 and value.mean == 0.0

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", "", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", "", buckets=(1.0, 1.0))

    def test_merge_requires_same_bounds(self):
        a = HistogramValue(1, 1.0, (1.0,), (1, 0))
        b = HistogramValue(2, 3.0, (1.0,), (1, 1))
        merged = a.merged(b)
        assert merged.count == 3 and merged.bucket_counts == (2, 1)
        with pytest.raises(ValueError):
            a.merged(HistogramValue(0, 0.0, (2.0,), (0, 0)))


class TestExponentialBuckets:
    def test_growth(self):
        bounds = exponential_buckets(start=1.0, factor=2.0, count=4)
        assert bounds == (1.0, 2.0, 4.0, 8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_buckets(start=0)
        with pytest.raises(ValueError):
            exponential_buckets(factor=1.0)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_values(self):
        reg = MetricsRegistry()
        reg.counter("c", "help").inc(3, kind="a")
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap.value("c", kind="a") == 3
        assert snap.value("g") == 7
        assert snap.value("h").count == 1
        assert snap.total("c") == 3
        assert "c" in snap.names()

    def test_gauge_fn_evaluated_at_snapshot_time(self):
        reg = MetricsRegistry()
        box = {"depth": 2}
        reg.gauge_fn("queue_depth", "depth", lambda: box["depth"])
        assert reg.snapshot().value("queue_depth") == 2
        box["depth"] = 9
        assert reg.snapshot().value("queue_depth") == 9

    def test_gauge_fn_exceptions_do_not_break_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("ok").inc()

        def boom():
            raise RuntimeError("dying component")

        reg.gauge_fn("bad", "", boom)
        snap = reg.snapshot()
        assert snap.value("ok") == 1
        assert snap.family("bad") is None

    def test_disabled_registry_hands_out_noop_instruments(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc(5)
        reg.histogram("h").observe(1.0)
        reg.gauge_fn("g", "", lambda: 42.0)
        snap = reg.snapshot()
        assert snap.total("c") == 0
        assert snap.family("g") is None  # gauge fns skipped when disabled


class TestMerging:
    def test_merged_snapshots_sum_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2, kind="x")
        b.counter("c").inc(3, kind="x")
        b.counter("c").inc(1, kind="y")
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        merged = MetricsSnapshot.merged([a.snapshot(), b.snapshot()])
        assert merged.value("c", kind="x") == 5
        assert merged.value("c", kind="y") == 1
        assert merged.value("h").count == 2
        assert merged.value("h").bucket_counts == (1, 1)

    def test_merged_keeps_disjoint_families(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("only_a").inc()
        b.counter("only_b").inc()
        merged = MetricsSnapshot.merged([a.snapshot(), b.snapshot()])
        assert merged.total("only_a") == 1
        assert merged.total("only_b") == 1
