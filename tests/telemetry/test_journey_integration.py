"""Acceptance: one launch over a 4-host line yields a stitched journey tree
with a span per hop, a message-forward span, and a locator-lookup span —
and ``space_metrics()`` aggregates non-zero counters space-wide."""

from __future__ import annotations

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import SpaceAdmin
from repro.util.concurrency import wait_until
from tests.conftest import CollectorNaplet


class WaitAtLastStop(repro.Naplet):
    """Hops s01 -> s02 quickly, then waits for one message at s02."""

    def on_start(self):
        context = self.require_context()
        if context.hostname == "s02":
            message = context.messenger.get_message(timeout=10.0)
            self.state.set("got", message.body)
        self.travel()


class MessagingTourist(CollectorNaplet):
    """Tours like a collector; at s01 posts to state['target'] through a
    deliberately stale destination (s01 itself), forcing a forward hop."""

    def on_start(self):
        context = self.require_context()
        if context.hostname == "s01" and not self.state.get("posted"):
            self.state.set("posted", True)
            context.messenger.post_message(
                "naplet://s01", self.state.get("target"), "ping"
            )
        super().on_start()


def _tour(agent, route):
    agent.set_itinerary(
        Itinerary(SeqPattern.of_servers(route, post_action=ResultReport("visited")))
    )
    return agent


class TestJourneyTree:
    def test_seq_tour_has_one_span_per_hop_with_nested_landings(self, small_line):
        _network, servers = small_line
        admin = SpaceAdmin(servers)
        listener = repro.NapletListener()
        agent = _tour(CollectorNaplet("tour"), ["s01", "s02", "s03"])
        nid = servers["s00"].launch(agent, owner="alice", listener=listener)
        assert listener.next_report(timeout=10).payload == ["s01", "s02", "s03"]
        assert servers["s00"].wait_idle() and servers["s03"].wait_idle()
        # The sending side records its hop span after the landing completes;
        # wait for all three to surface before stitching.
        assert wait_until(lambda: len(admin.journey(nid).find("hop")) >= 3)

        journey = admin.journey(nid)
        # One root: the launch span recorded at the home server.
        assert len(journey.roots) == 1
        root = journey.roots[0].span
        assert root.name == "launch"
        assert root.server == "s00"
        assert root.attr("naplet") == str(nid)

        hops = journey.find("hop")
        assert [(h.attr("source"), h.attr("dest")) for h in hops] == [
            ("s00", "naplet://s01"),
            ("s01", "naplet://s02"),
            ("s02", "naplet://s03"),
        ]
        for hop in hops:
            assert hop.duration > 0.0
            assert hop.attr("bytes") > 0

        # Every hop has its landing nested beneath it, recorded at the
        # destination server.
        hop_nodes = [n for n in journey.nodes() if n.span.name == "hop"]
        for node in hop_nodes:
            landings = [c.span for c in node.children if c.span.name == "landing"]
            assert len(landings) == 1
            assert node.span.attr("dest") == f"naplet://{landings[0].server}"

        # The ResultReport post-action (attached to the last visit) ran at
        # s03 and joined the tree.
        post = journey.find("post-action")
        assert [p.server for p in post] == ["s03"]
        assert post[0].attr("visit") == "s03"

        # The rendering is a usable ASCII tree.
        text = journey.render()
        assert text.count("hop") >= 3
        assert "landing" in text

    def test_journey_includes_message_forward_and_locator_lookup(self, small_line):
        _network, servers = small_line
        admin = SpaceAdmin(servers)
        target_listener = repro.NapletListener()
        target = _tour(WaitAtLastStop("target"), ["s01", "s02"])
        target_nid = servers["s00"].launch(target, owner="bob", listener=target_listener)
        assert wait_until(lambda: servers["s02"].manager.is_resident(target_nid))

        listener = repro.NapletListener()
        tourist = _tour(MessagingTourist("tourist"), ["s01", "s03"])
        tourist.state.set("target", target_nid)
        nid = servers["s00"].launch(tourist, owner="alice", listener=listener)
        assert listener.next_report(timeout=10).payload == ["s01", "s03"]
        target_listener.next_report(timeout=10)
        assert wait_until(
            lambda: bool(admin.journey(nid).find("message-forward"))
            and len(admin.journey(nid).find("hop")) >= 2
        )

        journey = admin.journey(nid)
        sends = journey.find("message-send")
        assert len(sends) == 1
        send = sends[0]
        assert send.server == "s01"
        assert send.attr("target") == str(target_nid)

        send_node = next(n for n in journey.nodes() if n.span.name == "message-send")
        child_names = {c.span.name for c in send_node.children}
        # The lookup happened on the sending server; the forward hop was
        # recorded at s01's messenger when it chased the departed target.
        assert "locator-lookup" in child_names
        assert "message-forward" in child_names
        forward = next(c.span for c in send_node.children if c.span.name == "message-forward")
        assert forward.server == "s01"
        assert forward.attr("next_hop") == "naplet://s02"
        lookup = next(c.span for c in send_node.children if c.span.name == "locator-lookup")
        assert lookup.attr("resolved") == "naplet://s01"


class TestSpaceMetrics:
    def test_space_metrics_aggregates_nonzero_counters(self, small_line):
        _network, servers = small_line
        admin = SpaceAdmin(servers)
        listener = repro.NapletListener()
        target_listener = repro.NapletListener()
        target = _tour(WaitAtLastStop("target"), ["s01", "s02"])
        target_nid = servers["s00"].launch(target, owner="bob", listener=target_listener)
        assert wait_until(lambda: servers["s02"].manager.is_resident(target_nid))
        tourist = _tour(MessagingTourist("tourist"), ["s01", "s03"])
        tourist.state.set("target", target_nid)
        servers["s00"].launch(tourist, owner="alice", listener=listener)
        listener.next_report(timeout=10)
        target_listener.next_report(timeout=10)
        admin.wait_space_idle()
        # Source-side hop counters flush after the destination goes idle.
        assert wait_until(
            lambda: admin.space_metrics().total("naplet_hops_total") >= 4
        )

        merged = admin.space_metrics()
        assert merged.total("naplet_launches_total") == 2
        assert merged.total("naplet_hops_total") >= 4
        assert merged.total("naplet_landings_total") >= 4
        assert merged.total("naplet_messages_delivered_total") >= 1
        assert merged.total("naplet_messages_forwarded_total") >= 1
        assert merged.total("naplet_frame_bytes_total") > 0
        assert merged.total("wire_bytes_total") > 0
        assert merged.total("wire_frames_total") > 0
        # Hop latency histogram saw every hop.
        assert merged.value("naplet_hop_latency_seconds").count >= 4

    def test_per_server_counters_attribute_work_locally(self, small_line):
        _network, servers = small_line
        listener = repro.NapletListener()
        agent = _tour(CollectorNaplet("tour"), ["s01", "s02", "s03"])
        servers["s00"].launch(agent, owner="alice", listener=listener)
        listener.next_report(timeout=10)
        assert servers["s03"].wait_idle()
        assert wait_until(lambda: servers["s02"].telemetry.hops.value() == 1)

        assert servers["s00"].telemetry.launches.value() == 1
        assert servers["s00"].telemetry.hops.value() == 1  # home -> s01 only
        assert servers["s01"].telemetry.landings.value() == 1
        assert servers["s02"].telemetry.hops.value() == 1
        assert servers["s03"].telemetry.landings.value() == 1
        # Landing depth observed at the last server covers the whole tour.
        depth = servers["s03"].telemetry.itinerary_depth.value()
        assert depth.count == 1
