"""Flight-recorder journal: ring mechanics, observers, harvest, metrics.

Unit half: a bare :class:`SpaceJournal` fed synthetic events/spans/faults.
Integration half: a live 3-server space whose journals fill through the
observer wiring alone, harvested both in-process
(:meth:`SpaceAdmin.harvest_journal`) and over the wire (journal probe),
with the journal's own gauges and per-kind counter on the metrics page.
"""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import SpaceAdmin
from repro.simnet import line
from repro.telemetry import render_metrics_text
from repro.telemetry.journal import (
    JournalRecord,
    SpaceJournal,
    causal_key,
    format_record,
    merge_journals,
    span_from_record,
)
from repro.telemetry.trace import Span
from repro.util.eventlog import EventRecord
from repro.util.hlc import HLCStamp

from tests.conftest import CollectorNaplet

pytestmark = pytest.mark.health


def _tour(servers, hosts, name="journal-tour"):
    listener = repro.NapletListener()
    agent = CollectorNaplet(name)
    agent.set_itinerary(
        Itinerary(SeqPattern.of_servers(hosts, post_action=ResultReport("visited")))
    )
    nid = servers[sorted(servers)[0]].launch(agent, owner="alice", listener=listener)
    report = listener.next_report(timeout=15)
    return nid, report


class TestSpaceJournal:
    def test_append_stamps_and_bounds_the_ring(self):
        journal = SpaceJournal("s00", capacity=3)
        for i in range(5):
            journal.append(kind=f"k{i}")
        assert journal.depth == 3
        assert journal.total_appended == 5
        assert journal.dropped == 2
        kept = journal.snapshot()
        assert [r.kind for r in kept] == ["k2", "k3", "k4"]
        # Stamps and sequence numbers strictly increase.
        assert kept == sorted(kept, key=causal_key)
        assert [r.seq for r in kept] == [3, 4, 5]

    def test_disabled_journal_records_nothing(self):
        journal = SpaceJournal("s00", enabled=False)
        journal.append(kind="k")
        journal.observe_event(EventRecord(kind="e", detail={}, wall=1.0, mono=1.0))
        assert journal.depth == 0
        assert journal.header_stamp() is None

    def test_observe_event_extracts_naplet_and_category(self):
        journal = SpaceJournal("s00")
        journal.observe_event(
            EventRecord(
                kind="naplet-depart",
                detail={"naplet": "alice@s00:1:0", "dest": "naplet://s01"},
                wall=1.0,
                mono=1.0,
            )
        )
        journal.observe_event(
            EventRecord(
                kind="message-dead-lettered",
                detail={"target": "bob@s00:2:0"},
                wall=2.0,
                mono=2.0,
            )
        )
        depart, dead = journal.snapshot()
        assert depart.naplet == "alice@s00:1:0"
        assert depart.category == "event"
        assert dead.naplet == "bob@s00:2:0"
        assert dead.category == "deadletter"

    def test_observe_span_round_trips_through_span_from_record(self):
        journal = SpaceJournal("s00")
        span = Span(
            trace_id="t1",
            span_id="sp1",
            parent_id="pp1",
            name="hop",
            server="s00",
            start_wall=10.0,
            start_mono=5.0,
            duration=0.25,
            attributes={"naplet": "n1", "dest": "naplet://s01"},
            status="error",
        )
        journal.observe_span(span)
        (record,) = journal.snapshot()
        assert record.category == "span"
        assert record.trace_id == "t1"
        assert span_from_record(record) == span

    def test_span_from_record_rejects_non_spans(self):
        journal = SpaceJournal("s00")
        journal.append(kind="k")
        with pytest.raises(ValueError):
            span_from_record(journal.snapshot()[0])

    def test_receive_advances_the_clock_and_ignores_garbage(self):
        journal = SpaceJournal("s00")
        future = HLCStamp(wall=9e9, logical=0, node="other")
        journal.receive(future.encode())
        assert journal.clock.peek().wall == 9e9
        journal.receive("not-a-stamp")  # must not raise
        journal.receive("")  # must not raise

    def test_records_filters_compose(self):
        journal = SpaceJournal("s00")
        journal.append(kind="a", category="event", naplet="n1")
        journal.append(kind="b", category="span", naplet="n1", trace_id="t")
        journal.append(kind="a", category="event", naplet="n2")
        assert [r.naplet for r in journal.records(kind="a")] == ["n1", "n2"]
        assert [r.kind for r in journal.records(naplet="n1")] == ["a", "b"]
        assert [r.kind for r in journal.records(category="span")] == ["b"]
        assert [r.kind for r in journal.records(trace_id="t")] == ["b"]
        assert [r.seq for r in journal.records(after_seq=2)] == [3]
        assert len(journal.records(limit=2)) == 2

    def test_slice_for_matches_detail_mentions(self):
        journal = SpaceJournal("s00")
        journal.append(kind="x", detail={"target": "n9"})
        journal.append(kind="y", naplet="n9")
        journal.append(kind="z", naplet="other")
        assert [r.kind for r in journal.slice_for("n9")] == ["x", "y"]

    def test_merge_journals_realizes_the_hlc_total_order(self):
        a = SpaceJournal("a", time_source=lambda: 100.0)
        b = SpaceJournal("b", time_source=lambda: 200.0)
        a.append(kind="a1")
        b.append(kind="b1")
        a.append(kind="a2")
        timeline = merge_journals([a.snapshot(), b.snapshot()])
        assert [r.kind for r in timeline] == ["a1", "a2", "b1"]

    def test_describe_from_dict_round_trips(self):
        journal = SpaceJournal("s00")
        journal.append(kind="k", naplet="n", trace_id="t", detail={"x": 1})
        record = journal.snapshot()[0]
        assert JournalRecord.from_dict(record.describe()) == record

    def test_format_record_is_one_line_and_greppable(self):
        journal = SpaceJournal("s00")
        journal.append(kind="naplet-depart", naplet="n1", detail={"dest": "d"})
        line_out = format_record(journal.snapshot()[0])
        assert "\n" not in line_out
        assert "naplet-depart" in line_out and "dest=d" in line_out


class TestJournalInSpace:
    def test_observers_feed_the_journal_without_new_call_sites(self, space):
        _net, servers = space(line(3, prefix="s"))
        nid, _ = _tour(servers, ["s01", "s02"])
        admin = SpaceAdmin(servers)
        assert admin.wait_space_idle()
        timeline = admin.harvest_journal()
        kinds = {r.kind for r in timeline}
        # Event-log records and tracer spans both arrive via observers.
        assert {"naplet-launch", "naplet-depart", "naplet-arrive"} <= kinds
        assert {"hop", "landing"} <= kinds
        assert timeline == sorted(timeline, key=causal_key)
        # Filtered harvest: only this naplet's records.
        mine = admin.harvest_journal(naplet=str(nid))
        assert mine and all(r.naplet == str(nid) for r in mine)

    def test_journal_service_is_an_open_service(self, space):
        _net, servers = space(line(2, prefix="s"))
        _tour(servers, ["s01"])
        manager = servers["s01"].resource_manager
        assert "journal" in manager.open_service_names()
        service = manager._open_services["journal"]
        status = service.status()
        assert status["journal"] == "enabled"
        assert status["depth"] > 0
        assert status["dropped"] == 0
        dicts = service.record_dicts(category="span")
        assert dicts and all(d["category"] == "span" for d in dicts)

    def test_probe_harvest_matches_in_process_harvest(self, space):
        from repro.health import harvest_journal_via_probe

        _net, servers = space(line(3, prefix="s"))
        nid, _ = _tour(servers, ["s01", "s02"])
        admin = SpaceAdmin(servers)
        assert admin.wait_space_idle()
        listener = repro.NapletListener()
        over_wire = harvest_journal_via_probe(
            servers["s00"], ["s00", "s01", "s02"], listener
        )
        assert over_wire == sorted(over_wire, key=causal_key)
        # The tour settled before the probe launched, so both collection
        # paths must agree exactly on the tour naplet's records (the
        # probe's own journey adds records under other naplet ids).
        key = str(nid)
        wire_keys = {(r.server, r.seq) for r in over_wire if r.naplet == key}
        local_keys = {
            (r.server, r.seq) for r in admin.harvest_journal(naplet=key)
        }
        assert wire_keys and wire_keys == local_keys

    def test_depth_and_dropped_gauges_and_kind_counter(self, space):
        _net, servers = space(line(2, prefix="s"))
        _tour(servers, ["s01"])
        server = servers["s00"]
        text = render_metrics_text(server.telemetry.registry.snapshot())
        assert "naplet_journal_depth" in text
        assert "naplet_journal_dropped_records 0" in text
        assert 'naplet_journal_records_total{kind="naplet-launch"} 1' in text

    def test_kind_label_is_escaped_on_the_metrics_page(self, space):
        """An event kind with exposition-reserved characters must not
        corrupt the page: one sample per line, reserved chars escaped."""
        _net, servers = space(line(2, prefix="s"))
        server = servers["s00"]
        server.events.record('odd"kind\nwith\\chars', naplet="n1")
        text = render_metrics_text(server.telemetry.registry.snapshot())
        assert 'kind="odd\\"kind\\nwith\\\\chars"' in text
        samples = [l for l in text.splitlines() if "naplet_journal_records" in l]
        assert all(l.startswith("#") or l.count("} ") == 1 for l in samples)

    def test_journal_disabled_space_still_works(self, space):
        from repro.server import ServerConfig

        _net, servers = space(
            line(2, prefix="s"), config=ServerConfig(journal_enabled=False)
        )
        _tour(servers, ["s01"])
        admin = SpaceAdmin(servers)
        assert admin.wait_space_idle()
        assert admin.harvest_journal() == []
        status = servers["s00"].resource_manager._open_services["journal"].status()
        assert status["journal"] == "disabled"
