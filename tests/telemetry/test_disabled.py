"""telemetry_enabled=False: no-op instruments, dormant health plane,
a service that says "disabled" instead of erroring.

The hot paths must run identically with telemetry off — same tours, same
results — while every observability surface degrades to an explicit,
non-throwing empty answer.
"""

from __future__ import annotations

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import ServerConfig, SpaceAdmin
from repro.telemetry.exposition import TelemetryService

from tests.conftest import CollectorNaplet


def _tour(servers):
    listener = repro.NapletListener()
    agent = CollectorNaplet("dark-tour")
    agent.set_itinerary(
        Itinerary(
            SeqPattern.of_servers(
                ["s01", "s02", "s03"], post_action=ResultReport("visited")
            )
        )
    )
    servers["s00"].launch(agent, owner="alice", listener=listener)
    report = listener.next_report(timeout=10)
    assert servers["s03"].wait_idle()
    return report


class TestDisabledTelemetry:
    def test_hot_paths_run_and_instruments_record_nothing(self, space):
        from repro.simnet import line

        _network, servers = space(
            line(4, prefix="s"), config=ServerConfig(telemetry_enabled=False)
        )
        report = _tour(servers)
        assert report.payload == ["s01", "s02", "s03"]
        for server in servers.values():
            assert server.telemetry.enabled is False
            snap = server.telemetry.registry.snapshot()
            assert snap.total("naplet_landings_total") == 0
            assert snap.total("naplet_hops_total") == 0
            assert server.telemetry.tracer.spans() == []

    def test_health_plane_is_dormant(self, space):
        from repro.simnet import line

        _network, servers = space(
            line(2, prefix="s"), config=ServerConfig(telemetry_enabled=False)
        )
        for server in servers.values():
            plane = server.health
            assert plane.enabled is False
            assert plane._thread is None
            plane.sample_now()
            assert plane.samples_taken == 0
            assert len(plane.profiles) == 0
            described = plane.describe()
            assert described["enabled"] is False
            assert described["findings"] == []

    def test_service_reports_disabled_instead_of_erroring(self, space):
        from repro.simnet import line

        _network, servers = space(
            line(2, prefix="s"), config=ServerConfig(telemetry_enabled=False)
        )
        service = TelemetryService(servers["s00"])
        status = service.status()
        assert status["telemetry"] == "disabled"
        assert status["health"] == "disabled"
        assert service.metrics_text() == "# telemetry disabled on s00"
        assert service.spans() == []
        assert service.metrics_dict() == {} or isinstance(service.metrics_dict(), dict)
        health = service.health()
        assert health["enabled"] is False

    def test_probe_harvest_works_and_carries_the_disabled_flag(self, space):
        """A monitoring naplet touring a dark space gets told *why* it is
        dark, rather than misreading silence as idleness."""
        from repro.health import harvest_via_probe
        from repro.simnet import line

        _network, servers = space(
            line(2, prefix="s"), config=ServerConfig(telemetry_enabled=False)
        )
        listener = repro.NapletListener()
        rows = harvest_via_probe(servers["s00"], ["s00", "s01"], listener, timeout=15.0)
        assert [row["server"] for row in rows] == ["s00", "s01"]
        for row in rows:
            assert row["status"]["telemetry"] == "disabled"
            assert row["health"]["enabled"] is False

    def test_space_summary_still_reports_core_columns(self, space):
        from repro.simnet import line

        _network, servers = space(
            line(4, prefix="s"), config=ServerConfig(telemetry_enabled=False)
        )
        _tour(servers)
        admin = SpaceAdmin(servers)
        rows = {row.hostname: row for row in admin.space_summary()}
        assert rows["s01"].admitted_total == 1
        assert rows["s01"].health_findings == 0
        assert rows["s01"].dead_letter_depth == 0
        assert admin.space_findings() == []
