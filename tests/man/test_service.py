"""NetManagement privileged service: channel protocol (paper §6.1)."""

from __future__ import annotations

import pytest

from repro.man.service import NetManagement, net_management_factory
from repro.server.service_channel import ServiceChannel
from repro.snmp.agent import SnmpAgent
from repro.snmp.device import DeviceProfile, ManagedDevice
from repro.snmp.mib import WELL_KNOWN_NAMES


@pytest.fixture
def agent():
    return SnmpAgent(ManagedDevice(DeviceProfile(hostname="dev01"), seed=1))


@pytest.fixture
def channel(agent):
    channel = ServiceChannel("serviceImpl.NetManagement", read_timeout=5.0)
    service = NetManagement(agent)
    service.bind(channel.service_reader, channel.service_writer)
    service.start("netman-test")
    yield channel
    channel.close()


class TestPaperTextProtocol:
    def test_semicolon_separated_names(self, channel):
        """The paper's 'param1;param2' command format."""
        channel.get_naplet_writer().write_line("sysName;sysUpTime")
        result = channel.get_naplet_reader().read_line()
        assert result["sysName"] == "dev01"
        assert result["sysUpTime"] >= 0

    def test_dotted_oids_accepted(self, channel):
        channel.naplet_writer.write(WELL_KNOWN_NAMES["sysName"])
        result = channel.naplet_reader.read()
        assert result[WELL_KNOWN_NAMES["sysName"]] == "dev01"

    def test_unknown_name_yields_none(self, channel):
        channel.naplet_writer.write("noSuchParameter")
        assert channel.naplet_reader.read() == {"noSuchParameter": None}

    def test_repeated_inquiries(self, channel):
        """§6.1: 'the whole process can be repeated for a number of inquiries'."""
        for _ in range(4):
            channel.naplet_writer.write("sysName")
            assert channel.naplet_reader.read()["sysName"] == "dev01"


class TestStructuredCommands:
    def test_get_command(self, channel):
        channel.naplet_writer.write(("get", ["sysName", "cpuLoad"]))
        result = channel.naplet_reader.read()
        assert result["sysName"] == "dev01"
        assert 0.0 <= result["cpuLoad"] <= 1.0

    def test_walk_command(self, channel):
        channel.naplet_writer.write(("walk", "1.3.6.1.2.1.1"))
        result = channel.naplet_reader.read()
        assert isinstance(result, list)
        oids = [oid for oid, _value in result]
        assert WELL_KNOWN_NAMES["sysName"] in oids

    def test_set_command(self, channel, agent):
        channel.naplet_writer.write(("set", WELL_KNOWN_NAMES["sysName"], "renamed"))
        result = channel.naplet_reader.read()
        # the service's default community is read-only: write must fail
        assert result["ok"] is False

    def test_unrecognised_command(self, channel):
        channel.naplet_writer.write(12345)
        result = channel.naplet_reader.read()
        assert "error" in result


class TestWriteCommunityService:
    def test_rw_service_can_set(self, agent):
        channel = ServiceChannel("netman-rw", read_timeout=5.0)
        factory = net_management_factory(agent, community="private")
        service = factory()
        service.bind(channel.service_reader, channel.service_writer)
        service.start("netman-rw")
        channel.naplet_writer.write(("set", WELL_KNOWN_NAMES["sysName"], "renamed"))
        assert channel.naplet_reader.read()["ok"] is True
        channel.close()


class TestLifecycle:
    def test_eof_terminates_service(self, agent):
        channel = ServiceChannel("netman", read_timeout=5.0)
        service = NetManagement(agent)
        service.bind(channel.service_reader, channel.service_writer)
        service.start("netman-eof")
        channel.naplet_writer.close()
        service.join(3)
        from repro.server.service_channel import EOF

        assert channel.naplet_reader.read(timeout=1) is EOF
