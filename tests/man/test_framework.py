"""ManFramework + ComparisonRunner: the full MAN measurement harness."""

from __future__ import annotations

import pytest

from repro.core.errors import NapletError
from repro.man.framework import DEFAULT_PARAMETERS, ManFramework
from repro.man.baseline import ComparisonRunner


@pytest.fixture(scope="module")
def framework():
    fw = ManFramework(n_devices=4, latency=0.001, device_seed=100)
    yield fw
    fw.shutdown()


class TestAssembly:
    def test_one_server_per_host(self, framework):
        assert len(framework.device_hosts) == 4
        assert set(framework.servers) == set(framework.device_hosts) | {"station"}

    def test_devices_have_agents_and_endpoints(self, framework):
        for host in framework.device_hosts:
            assert framework.agents[host].device.profile.hostname == host
            assert framework.endpoints[host].urn == f"snmp://{host}"

    def test_netmanagement_service_registered(self, framework):
        for host in framework.device_hosts:
            names = framework.servers[host].resource_manager.privileged_service_names()
            assert "serviceImpl.NetManagement" in names


class TestCollection:
    def test_station_and_naplets_agree_on_static_values(self, framework):
        params = ["sysName", "sysDescr"] if False else ["sysName"]
        cnmp = framework.collect_with_station(params)
        agents_par = framework.collect_with_naplets(params, mode="par")
        framework.wait_idle()
        agents_seq = framework.collect_with_naplets(params, mode="seq")
        framework.wait_idle()
        for host in framework.device_hosts:
            assert cnmp[host]["sysName"] == host
            assert agents_par[host]["sysName"] == host
            assert agents_seq[host]["sysName"] == host

    def test_default_parameters_complete(self, framework):
        table = framework.collect_with_naplets(DEFAULT_PARAMETERS, mode="par")
        framework.wait_idle()
        assert set(table) == set(framework.device_hosts)
        for values in table.values():
            assert set(values) == set(DEFAULT_PARAMETERS)

    def test_unknown_mode_rejected(self, framework):
        with pytest.raises(NapletError):
            framework.collect_with_naplets(["sysName"], mode="zigzag")


class TestMeasurement:
    def test_runner_produces_complete_results(self, framework):
        runner = ComparisonRunner(framework)
        results = runner.run_all(["sysName", "cpuLoad"])
        assert [r.approach for r in results] == [
            "cnmp",
            "cnmp-batch",
            "agent-seq",
            "agent-par",
        ]
        for result in results:
            assert result.complete
            assert result.total_bytes > 0
            assert result.n_devices == 4
            assert result.n_parameters == 2

    def test_meter_reset_between_runs(self, framework):
        runner = ComparisonRunner(framework)
        first = runner.run_cnmp(["sysName"])
        second = runner.run_cnmp(["sysName"])
        # same workload, clean meter: byte counts match
        assert first.station_link_bytes == second.station_link_bytes

    def test_cnmp_station_bytes_grow_with_parameters(self, framework):
        runner = ComparisonRunner(framework)
        one = runner.run_cnmp(["sysName"])
        many = runner.run_cnmp(list(DEFAULT_PARAMETERS))
        assert many.station_link_bytes > one.station_link_bytes * 2

    def test_agent_seq_station_bytes_nearly_flat_in_parameters(self, framework):
        runner = ComparisonRunner(framework)
        one = runner.run_agents(["sysName"], mode="seq")
        many = runner.run_agents(list(DEFAULT_PARAMETERS), mode="seq")
        # the station only sees the agent leave and the last child report:
        # parameter count must barely matter (well under 2x)
        assert many.station_link_bytes < one.station_link_bytes * 2
