"""Compute naplets: parallel pi and data-local aggregation."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.hpc import (
    DATASTORE_SERVICE,
    MATH_SERVICE,
    DataStore,
    MathService,
    MonteCarloPiNaplet,
    ShardAggregateNaplet,
    combine_mean_reports,
    combine_pi_reports,
)
from repro.simnet import full_mesh


@pytest.fixture
def compute_space(space):
    network, servers = space(full_mesh(4, prefix="n"))
    rng = np.random.default_rng(11)
    shards = {}
    for hostname, server in servers.items():
        server.register_open_service(MATH_SERVICE, MathService())
        store = DataStore()
        shard = rng.normal(5.0, 1.0, size=2_000)
        shards[hostname] = shard
        store.put("vals", shard)
        server.register_open_service(DATASTORE_SERVICE, store)
    return network, servers, shards


class TestMonteCarloPi:
    def test_parallel_estimate(self, compute_space):
        network, servers, _ = compute_space
        workers = [h for h in sorted(servers) if h != "n00"]
        listener = repro.NapletListener()
        agent = MonteCarloPiNaplet("pi", workers, samples_per_host=50_000)
        servers["n00"].launch(agent, owner="hpc", listener=listener)
        estimate = combine_pi_reports(listener, expected=len(workers))
        assert abs(estimate - np.pi) < 0.05
        for server in servers.values():
            assert server.wait_idle(5)

    def test_children_draw_distinct_streams(self, compute_space):
        _network, servers, _ = compute_space
        workers = [h for h in sorted(servers) if h != "n00"]
        listener = repro.NapletListener()
        agent = MonteCarloPiNaplet("pi2", workers, samples_per_host=10_000)
        servers["n00"].launch(agent, owner="hpc", listener=listener)
        reports = listener.reports(len(workers), timeout=15)
        counts = [e.payload["inside"] for e in reports]
        assert len(set(counts)) > 1  # not all identical

    def test_combine_requires_samples(self):
        from repro.core.listener import ReportEnvelope

        listener = repro.NapletListener()
        listener.deliver(ReportEnvelope("k", "r", {"inside": 0, "samples": 0}))
        with pytest.raises(ValueError):
            combine_pi_reports(listener, expected=1)


class TestShardAggregate:
    @pytest.mark.parametrize("mode,expected_reports", [("seq", 1), ("par", 3)])
    def test_global_mean_exact(self, compute_space, mode, expected_reports):
        _network, servers, shards = compute_space
        workers = [h for h in sorted(servers) if h != "n00"]
        listener = repro.NapletListener()
        agent = ShardAggregateNaplet(f"mean-{mode}", workers, shard_key="vals", mode=mode)
        servers["n00"].launch(agent, owner="hpc", listener=listener)
        envelopes = listener.reports(expected_reports, timeout=15)
        estimate = combine_mean_reports(envelopes)
        truth = float(np.concatenate([shards[w] for w in workers]).mean())
        assert estimate == pytest.approx(truth)
        for server in servers.values():
            assert server.wait_idle(5)

    def test_missing_shard_tolerated(self, compute_space):
        _network, servers, shards = compute_space
        workers = [h for h in sorted(servers) if h != "n00"]
        listener = repro.NapletListener()
        agent = ShardAggregateNaplet("mean-miss", workers, shard_key="other", mode="seq")
        servers["n00"].launch(agent, owner="hpc", listener=listener)
        envelopes = listener.reports(1, timeout=15)
        with pytest.raises(ValueError):
            combine_mean_reports(envelopes)  # nothing aggregated

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ShardAggregateNaplet("x", ["a"], shard_key="k", mode="diagonal")
