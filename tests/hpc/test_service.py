"""HPC stationary services: MathService and DataStore."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hpc.service import DataStore, MathService


class TestMathService:
    def test_rng_deterministic(self):
        service = MathService()
        assert service.rng(5).random() == service.rng(5).random()

    def test_monte_carlo_inside_bounds(self):
        service = MathService()
        inside = service.monte_carlo_inside(10_000, seed=3)
        assert 0 < inside < 10_000
        # pi/4 of uniform points land inside the quarter circle
        assert abs(inside / 10_000 - np.pi / 4) < 0.05

    def test_monte_carlo_deterministic(self):
        service = MathService()
        assert service.monte_carlo_inside(1000, 9) == service.monte_carlo_inside(1000, 9)

    def test_matmul(self):
        service = MathService()
        result = service.matmul([[1, 2], [3, 4]], [[1, 0], [0, 1]])
        assert np.array_equal(result, [[1, 2], [3, 4]])

    def test_solve(self):
        service = MathService()
        x = service.solve([[2.0, 0.0], [0.0, 4.0]], [2.0, 8.0])
        assert np.allclose(x, [1.0, 2.0])

    def test_statistics(self):
        service = MathService()
        assert service.mean([1, 2, 3]) == pytest.approx(2.0)
        assert service.quantile([1, 2, 3, 4], 0.5) == pytest.approx(2.5)


class TestDataStore:
    def test_put_get(self):
        store = DataStore()
        store.put("shard", [1.0, 2.0])
        assert np.array_equal(store.get("shard"), [1.0, 2.0])
        assert store.has("shard")
        assert not store.has("absent")
        assert store.keys() == ["shard"]

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            DataStore().get("ghost")

    def test_partial_sum(self):
        store = DataStore()
        store.put("s", [1.0, 2.0, 3.0])
        total, count = store.partial_sum("s")
        assert total == pytest.approx(6.0)
        assert count == 3

    def test_partial_minmax(self):
        store = DataStore()
        store.put("s", [4.0, -1.0, 9.0])
        assert store.partial_minmax("s") == (-1.0, 9.0)
