"""Shared fixtures and helper agents for the test suite.

Agents used across tests live here (module-level, importable) so pickle can
ship them by reference during in-process migrations.
"""

from __future__ import annotations

from typing import Iterator

import pytest

import repro
from repro.server import ServerConfig, deploy
from repro.simnet import VirtualNetwork, full_mesh, line, ring, star


class CollectorNaplet(repro.Naplet):
    """Appends each visited hostname to state['visited'] and travels on."""

    def on_start(self) -> None:
        context = self.require_context()
        visited = (self.state.get("visited") or []) + [context.hostname]
        self.state.set("visited", visited)
        self.travel()


class StallNaplet(repro.Naplet):
    """Spins at its first server until told otherwise (for control tests).

    Checkpoints frequently so interrupts/quotas take effect; records the
    controls it received in state['controls'].
    """

    def __init__(self, name: str, spin_seconds: float = 30.0, **kwargs) -> None:
        super().__init__(name, **kwargs)
        self.spin_seconds = spin_seconds

    def on_interrupt(self, control: str, payload=None) -> None:
        controls = (self.state.get("controls") or []) + [control]
        self.state.set("controls", controls)

    def on_start(self) -> None:
        import time

        deadline = time.monotonic() + self.spin_seconds
        while time.monotonic() < deadline:
            self.checkpoint()
            time.sleep(0.005)
        self.travel()


class FailingNaplet(repro.Naplet):
    """Raises inside on_start (exercises the monitor's exception traps)."""

    def on_start(self) -> None:
        raise RuntimeError("intentional agent failure")


class EchoNaplet(repro.Naplet):
    """Waits for one message at its first stop, stores it, travels on.

    Subsequent stops don't wait again (the echo is already in state).
    """

    def on_start(self) -> None:
        context = self.require_context()
        if "echo" not in self.state:
            message = context.messenger.get_message(timeout=10.0)
            self.state.set("echo", message.body)
        self.travel()


@pytest.fixture
def space():
    """Factory fixture: build (network, servers) spaces; auto-shutdown.

    Usage::

        net, servers = space(line(3, prefix="s"))
    """
    built: list[VirtualNetwork] = []

    def _build(graph_or_net, config: ServerConfig | None = None, **deploy_kwargs):
        if isinstance(graph_or_net, VirtualNetwork):
            network = graph_or_net
        else:
            network = VirtualNetwork(graph_or_net)
        servers = deploy(network, config=config, **deploy_kwargs)
        built.append(network)
        return network, servers

    yield _build
    for network in built:
        network.shutdown()


@pytest.fixture
def small_line(space):
    """A ready 4-host line: (network, servers) with hosts s00..s03."""
    return space(line(4, prefix="s"))


@pytest.fixture
def small_star(space):
    """A ready star: station + 4 devices."""
    return space(star(4))


__all__ = [
    "CollectorNaplet",
    "StallNaplet",
    "FailingNaplet",
    "EchoNaplet",
    "line",
    "ring",
    "star",
    "full_mesh",
]
