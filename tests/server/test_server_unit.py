"""NapletServer assembly: config validation, frame dispatch, facade bits."""

from __future__ import annotations

import pickle

import pytest

from repro.core.errors import NapletError
from repro.server.directory import DirectoryMode
from repro.server.monitor import ResourceQuota
from repro.server.server import NapletServer, ServerConfig
from repro.simnet.network import VirtualNetwork
from repro.simnet.topology import line
from repro.transport.base import Frame, FrameKind
from tests.conftest import CollectorNaplet


@pytest.fixture
def network():
    net = VirtualNetwork(line(3, prefix="h"))
    yield net
    net.shutdown()


class TestConfig:
    def test_central_mode_requires_directory_urn(self, network):
        with pytest.raises(NapletError):
            NapletServer.attach(
                network.host("h00"),
                ServerConfig(directory_mode=DirectoryMode.CENTRAL),
            )

    def test_home_mode_hosts_local_directory(self, network):
        server = NapletServer.attach(network.host("h00"))
        assert server.local_directory is not None

    def test_central_non_host_has_no_local_directory(self, network):
        config = ServerConfig(
            directory_mode=DirectoryMode.CENTRAL, directory_urn="naplet://h00"
        )
        import dataclasses

        host_server = NapletServer.attach(network.host("h00"), config)
        edge_server = NapletServer.attach(network.host("h01"), dataclasses.replace(config))
        assert host_server.local_directory is not None
        assert edge_server.local_directory is None

    def test_attach_installs_on_host(self, network):
        server = NapletServer.attach(network.host("h00"))
        assert network.host("h00").server is server
        with pytest.raises(NapletError):
            NapletServer.attach(network.host("h00"))


class TestFrameDispatch:
    def test_ping(self, network):
        server = NapletServer.attach(network.host("h00"))
        reply = network.transport.request(
            Frame(kind=FrameKind.PING, source="naplet://x", dest=server.urn)
        )
        assert pickle.loads(reply) == {"pong": server.urn}

    def test_unknown_kind_raises(self, network):
        server = NapletServer.attach(network.host("h00"))
        with pytest.raises(NapletError):
            network.transport.send(
                Frame(kind="mystery", source="naplet://x", dest=server.urn)
            )

    def test_shutdown_refuses_frames(self, network):
        server = NapletServer.attach(network.host("h00"))
        server.shutdown()
        assert not network.transport.is_registered(server.urn)


class TestQuotaPolicy:
    def test_default_quota_used_without_policy(self, network):
        quota = ResourceQuota(cpu_seconds=1.0)
        server = NapletServer.attach(network.host("h00"), ServerConfig(default_quota=quota))
        agent = CollectorNaplet("q")
        nid_quota = _launchable(server, agent)
        assert server.quota_for(agent) == quota

    def test_quota_policy_overrides(self, network):
        special = ResourceQuota(cpu_seconds=0.5)

        def policy(credential):
            if credential.feature("role") == "greedy":
                return special
            return None

        server = NapletServer.attach(network.host("h00"), ServerConfig(quota_policy=policy))
        greedy = CollectorNaplet("greedy")
        _launchable(server, greedy, attributes={"role": "greedy"})
        assert server.quota_for(greedy) == special

        normal = CollectorNaplet("normal")
        _launchable(server, normal)
        assert server.quota_for(normal) == server.config.default_quota


def _launchable(server, agent, attributes=None):
    """Assign identity/credential without actually launching."""
    from repro.core.naplet_id import NapletID

    server.authority.register_owner("unit")
    nid = NapletID.create("unit", server.hostname)
    agent._assign_identity(
        nid, server.authority.issue(nid, agent.codebase, attributes or {})
    )
    return nid


class TestLaunchValidation:
    def test_launch_without_itinerary_rejected(self, network):
        server = NapletServer.attach(network.host("h00"))
        with pytest.raises(NapletError):
            server.launch(CollectorNaplet("lost"), owner="unit")
