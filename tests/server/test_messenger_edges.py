"""Messenger edge paths: unreachable forwards, missing receipts, reports."""

from __future__ import annotations

import pytest

import repro
from repro.core.errors import NapletCommunicationError
from repro.itinerary import Itinerary, seq
from repro.server import deploy
from repro.simnet import VirtualNetwork, line
from repro.util.concurrency import wait_until
from tests.conftest import StallNaplet


@pytest.fixture
def trio():
    network = VirtualNetwork(line(3, prefix="s"))
    servers = deploy(network)
    yield network, servers
    network.shutdown()


class TestEdges:
    def test_receipt_for_unknown_id_is_none(self, trio):
        _network, servers = trio
        assert servers["s00"].messenger.receipt_for(999_999) is None

    def test_report_to_unknown_listener_raises(self, trio):
        _network, servers = trio
        with pytest.raises(NapletCommunicationError, match="no listener"):
            servers["s01"].messenger.post_report(
                "naplet://s00", "no-such-key", "reporter", {"x": 1}
            )

    def test_forward_parked_swallows_unreachable_destination(self, trio):
        network, servers = trio
        from repro.core.naplet_id import NapletID

        nid = NapletID.create("ghost", "s00", stamp="240101120000")
        # park a message at s01 for a naplet that never lands there
        receipt = servers["s00"].messenger.post(
            None, nid, "early", dest_urn="naplet://s01"
        )
        assert receipt.status == "parked"
        network.partition_host("s02")
        # forwarding toward a partitioned destination must not raise
        servers["s01"].messenger.forward_parked(nid, "naplet://s02")
        assert servers["s01"].messenger.special_mailbox_size(nid) == 0

    def test_remove_mailbox_forward_swallows_unreachable(self, trio):
        network, servers = trio
        agent = StallNaplet("sitting", spin_seconds=30.0)
        agent.set_itinerary(Itinerary(seq("s01")))
        nid = servers["s00"].launch(agent, owner="ops")
        assert wait_until(lambda: servers["s01"].manager.is_resident(nid))
        # park a message in the resident's mailbox, then simulate a forced
        # removal toward an unreachable host — must not raise
        mailbox = servers["s01"].messenger.mailbox_of(nid)
        assert mailbox is not None
        servers["s00"].messenger.post(None, nid, "queued")
        network.partition_host("s02")
        servers["s01"].messenger.remove_mailbox(nid, forward_to="naplet://s02")
        assert servers["s01"].messenger.mailbox_of(nid) is None
        servers["s00"].terminate_naplet(nid)

    def test_remove_mailbox_without_forward_drops_quietly(self, trio):
        _network, servers = trio
        from repro.core.naplet_id import NapletID

        # removing a mailbox that never existed is a no-op
        servers["s01"].messenger.remove_mailbox(
            NapletID.create("nobody", "s00", stamp="240101120000")
        )
