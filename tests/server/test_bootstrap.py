"""deploy(): one-call naplet-space bring-up."""

from __future__ import annotations

import pytest

from repro.server import DirectoryMode, ServerConfig, deploy
from repro.simnet import VirtualNetwork, line, star


@pytest.fixture
def network():
    net = VirtualNetwork(star(3))
    yield net
    net.shutdown()


class TestDeploy:
    def test_all_hosts_by_default(self, network):
        servers = deploy(network)
        assert set(servers) == {"station", "dev00", "dev01", "dev02"}
        for hostname, server in servers.items():
            assert network.host(hostname).server is server

    def test_subset_of_hosts(self, network):
        servers = deploy(network, hostnames=["dev00", "dev01"])
        assert set(servers) == {"dev00", "dev01"}
        assert network.host("station").server is None

    def test_directory_host_switches_to_central(self, network):
        servers = deploy(network, directory_host="station")
        for server in servers.values():
            assert server.config.directory_mode is DirectoryMode.CENTRAL
            assert server.config.directory_urn == "naplet://station"
        assert servers["station"].local_directory is not None
        assert servers["dev00"].local_directory is None

    def test_directory_host_added_if_missing_from_subset(self, network):
        servers = deploy(network, hostnames=["dev00"], directory_host="station")
        assert set(servers) == {"dev00", "station"}

    def test_configs_are_independent_copies(self, network):
        config = ServerConfig(max_residents=5)
        servers = deploy(network, config=config)
        servers["dev00"].config.max_residents = 1
        assert servers["dev01"].config.max_residents == 5
        assert config.max_residents == 5
