"""Message value types: hops, join bodies, receipts."""

from __future__ import annotations

import pickle

from repro.core.naplet_id import NapletID
from repro.server.messages import (
    DeliveryReceipt,
    SystemControl,
    SystemMessage,
    UserMessage,
    join_token_of,
    make_join_body,
)

TARGET = NapletID.parse("t@h:240101120000:0")


class TestUserMessage:
    def test_unique_increasing_ids(self):
        a = UserMessage(sender="x", target=TARGET, body=1)
        b = UserMessage(sender="x", target=TARGET, body=2)
        assert b.message_id > a.message_id

    def test_hopped_preserves_identity(self):
        message = UserMessage(sender="x", target=TARGET, body="data")
        forwarded = message.hopped().hopped()
        assert forwarded.hops == 2
        assert forwarded.message_id == message.message_id
        assert forwarded.body == "data"
        assert message.hops == 0  # original untouched

    def test_pickles(self):
        message = UserMessage(sender=TARGET, target=TARGET, body={"k": 1})
        copy = pickle.loads(pickle.dumps(message))
        assert copy.body == {"k": 1}
        assert copy.message_id == message.message_id


class TestSystemMessage:
    def test_controls_enumerated(self):
        assert set(SystemControl.ALL) >= {
            "callback",
            "terminate",
            "suspend",
            "resume",
            "freeze",
        }

    def test_defaults(self):
        message = SystemMessage(control=SystemControl.SUSPEND, target=TARGET)
        assert message.sender == "system"
        assert message.payload is None


class TestJoinBodies:
    def test_roundtrip(self):
        body = make_join_body("token-42")
        assert join_token_of(body) == "token-42"

    def test_non_join_bodies_yield_none(self):
        assert join_token_of("plain string") is None
        assert join_token_of({"other": 1}) is None
        assert join_token_of(None) is None
        assert join_token_of(42) is None


class TestReceipt:
    def test_fields(self):
        receipt = DeliveryReceipt(
            message_id=7, target=TARGET, status="forwarded",
            final_server="naplet://s2", hops=3,
        )
        assert receipt.hops == 3
        assert receipt.status == "forwarded"
