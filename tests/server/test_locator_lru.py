"""Locator cache LRU bound: capacity, recency, eviction accounting."""

from __future__ import annotations

from repro.core.naplet_id import NapletID
from repro.server.directory import DirectoryClient, DirectoryMode, NapletDirectory
from repro.server.locator import Locator
from repro.telemetry.exposition import ServerTelemetry
from repro.transport.base import urn_of
from repro.transport.inmemory import InMemoryTransport


def _locator(capacity, telemetry=None):
    store = NapletDirectory()
    client = DirectoryClient(
        mode=DirectoryMode.HOME,
        transport=InMemoryTransport(),
        self_urn=urn_of("home"),
        local_directory=store,
    )
    return Locator(client, cache_capacity=capacity, telemetry=telemetry), store


def _nid(name):
    return NapletID.create(name, "home", stamp="240101120000")


class TestLruBound:
    def test_capacity_enforced(self):
        locator, _ = _locator(capacity=3)
        for i in range(10):
            locator.note_location(_nid(f"n{i}"), "naplet://x")
        assert locator.cache_size == 3
        assert locator.cache_evictions == 7

    def test_oldest_entry_evicted_first(self):
        locator, _ = _locator(capacity=2)
        locator.note_location(_nid("old"), "naplet://a")
        locator.note_location(_nid("mid"), "naplet://b")
        locator.note_location(_nid("new"), "naplet://c")
        assert locator.locate(_nid("old")) is None  # evicted, not in directory
        assert locator.locate(_nid("mid")) == "naplet://b"
        assert locator.locate(_nid("new")) == "naplet://c"

    def test_cache_hit_refreshes_recency(self):
        locator, _ = _locator(capacity=2)
        locator.note_location(_nid("a"), "naplet://a")
        locator.note_location(_nid("b"), "naplet://b")
        assert locator.locate(_nid("a")) == "naplet://a"  # touch 'a'
        locator.note_location(_nid("c"), "naplet://c")  # evicts 'b', not 'a'
        assert locator.locate(_nid("a")) == "naplet://a"
        assert locator.locate(_nid("b")) is None

    def test_renoting_existing_entry_does_not_evict(self):
        locator, _ = _locator(capacity=2)
        locator.note_location(_nid("a"), "naplet://a")
        locator.note_location(_nid("b"), "naplet://b")
        locator.note_location(_nid("a"), "naplet://a2")  # update, same key
        assert locator.cache_size == 2
        assert locator.cache_evictions == 0
        assert locator.locate(_nid("a")) == "naplet://a2"

    def test_unbounded_when_capacity_none(self):
        locator, _ = _locator(capacity=None)
        for i in range(500):
            locator.note_location(_nid(f"n{i}"), "naplet://x")
        assert locator.cache_size == 500
        assert locator.cache_evictions == 0

    def test_evictions_counted_in_telemetry(self):
        telemetry = ServerTelemetry("home")
        locator, _ = _locator(capacity=1, telemetry=telemetry)
        for i in range(4):
            locator.note_location(_nid(f"n{i}"), "naplet://x")
        snapshot = telemetry.registry.snapshot()
        assert snapshot.total("naplet_locator_cache_evictions_total") == 3
