"""Mailbox: ordered buffering with filtered retrieval."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import NapletCommunicationError
from repro.core.naplet_id import NapletID
from repro.server.mailbox import Mailbox
from repro.server.messages import UserMessage

TARGET = NapletID.parse("t@h:240101120000:0")


def _msg(body) -> UserMessage:
    return UserMessage(sender="test", target=TARGET, body=body)


class TestFifo:
    def test_put_get_order(self):
        box = Mailbox()
        for i in range(3):
            box.put(_msg(i))
        assert [box.get(timeout=1).body for _ in range(3)] == [0, 1, 2]

    def test_len(self):
        box = Mailbox()
        box.put(_msg(1))
        assert len(box) == 1

    def test_poll_nonblocking(self):
        box = Mailbox()
        assert box.poll() is None
        box.put(_msg("x"))
        assert box.poll().body == "x"

    def test_get_timeout_raises(self):
        with pytest.raises(NapletCommunicationError):
            Mailbox().get(timeout=0.05)


class TestFiltered:
    def test_get_matching_skips_and_preserves(self):
        box = Mailbox()
        box.put(_msg("a"))
        box.put(_msg("wanted"))
        box.put(_msg("b"))
        got = box.get_matching(lambda m: m.body == "wanted", timeout=1)
        assert got.body == "wanted"
        assert [box.get(timeout=1).body for _ in range(2)] == ["a", "b"]

    def test_get_matching_blocks_until_match(self):
        box = Mailbox()

        def feed():
            box.put(_msg("noise"))
            box.put(_msg("signal"))

        t = threading.Timer(0.05, feed)
        t.start()
        got = box.get_matching(lambda m: m.body == "signal", timeout=2)
        assert got.body == "signal"
        t.join()

    def test_get_matching_timeout(self):
        box = Mailbox()
        box.put(_msg("noise"))
        with pytest.raises(NapletCommunicationError):
            box.get_matching(lambda m: m.body == "never", timeout=0.05)
        assert len(box) == 1  # noise untouched


class TestDrainClose:
    def test_drain_empties(self):
        box = Mailbox()
        box.put(_msg(1))
        box.put(_msg(2))
        drained = box.drain()
        assert [m.body for m in drained] == [1, 2]
        assert len(box) == 0

    def test_closed_rejects_put(self):
        box = Mailbox()
        box.close()
        with pytest.raises(NapletCommunicationError):
            box.put(_msg(1))

    def test_close_wakes_waiters(self):
        box = Mailbox()
        result = []

        def waiter():
            try:
                box.get(timeout=5)
            except NapletCommunicationError as exc:
                result.append(str(exc))

        t = threading.Thread(target=waiter)
        t.start()
        box.close()
        t.join(2)
        assert result and "closed" in result[0]
