"""Locator: caching in front of the directory (paper §4.1)."""

from __future__ import annotations

from repro.core.naplet_id import NapletID
from repro.server.directory import DirectoryClient, DirectoryMode, NapletDirectory
from repro.server.locator import Locator
from repro.transport.base import urn_of
from repro.transport.inmemory import InMemoryTransport


class FakeTime:
    """Injectable monotonic clock: tests advance it instead of sleeping."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _locator(cache_ttl=5.0, time_source=None):
    """Locator whose client authority is a local store (home == self)."""
    store = NapletDirectory()
    client = DirectoryClient(
        mode=DirectoryMode.HOME,
        transport=InMemoryTransport(),
        self_urn=urn_of("home"),
        local_directory=store,
    )
    kwargs = {"time_source": time_source} if time_source is not None else {}
    return Locator(client, cache_ttl=cache_ttl, **kwargs), store


def _nid():
    return NapletID.create("a", "home", stamp="240101120000")


class TestLocate:
    def test_miss_consults_directory(self):
        locator, store = _locator()
        nid = _nid()
        store.register_arrival(nid, "naplet://s3")
        assert locator.locate(nid) == "naplet://s3"
        assert locator.cache_misses == 1

    def test_hit_uses_cache(self):
        locator, store = _locator()
        nid = _nid()
        store.register_arrival(nid, "naplet://s3")
        locator.locate(nid)
        assert locator.locate(nid) == "naplet://s3"
        assert locator.cache_hits == 1
        assert locator.cache_misses == 1

    def test_unknown_returns_none(self):
        locator, _ = _locator()
        assert locator.locate(_nid()) is None

    def test_bypass_cache(self):
        locator, store = _locator()
        nid = _nid()
        store.register_arrival(nid, "naplet://old")
        locator.locate(nid)
        store.register_arrival(nid, "naplet://new")
        assert locator.locate(nid) == "naplet://old"  # cached
        assert locator.locate(nid, use_cache=False) == "naplet://new"

    def test_lookup_record_bypasses_cache(self):
        locator, store = _locator()
        nid = _nid()
        store.register_departure(nid, "naplet://s1")
        record = locator.lookup_record(nid)
        assert record.in_transit


class TestCacheMaintenance:
    def test_note_location_seeds_cache(self):
        locator, _ = _locator()
        nid = _nid()
        locator.note_location(nid, "naplet://learned")
        assert locator.locate(nid) == "naplet://learned"
        assert locator.cache_misses == 0

    def test_invalidate(self):
        locator, store = _locator()
        nid = _nid()
        locator.note_location(nid, "naplet://stale")
        locator.invalidate(nid)
        store.register_arrival(nid, "naplet://fresh")
        assert locator.locate(nid) == "naplet://fresh"

    def test_ttl_expiry(self):
        clock = FakeTime()
        locator, store = _locator(cache_ttl=5.0, time_source=clock)
        nid = _nid()
        locator.note_location(nid, "naplet://stale")
        store.register_arrival(nid, "naplet://fresh")
        clock.advance(4.9)
        assert locator.locate(nid) == "naplet://stale"  # still within TTL
        clock.advance(0.2)
        assert locator.locate(nid) == "naplet://fresh"

    def test_cache_size(self):
        locator, _ = _locator()
        locator.note_location(_nid(), "naplet://x")
        assert locator.cache_size == 1
