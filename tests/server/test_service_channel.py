"""ServiceChannel: synchronous pipes between naplets and privileged services."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.core.errors import ServiceChannelClosed
from repro.server.service_channel import EOF, PrivilegedService, ServiceChannel


class TestPipes:
    def test_naplet_to_service_direction(self):
        channel = ServiceChannel("svc")
        channel.naplet_writer.write("request")
        assert channel.service_reader.read(timeout=1) == "request"

    def test_service_to_naplet_direction(self):
        channel = ServiceChannel("svc")
        channel.service_writer.write({"result": 1})
        assert channel.naplet_reader.read(timeout=1) == {"result": 1}

    def test_line_aliases(self):
        channel = ServiceChannel("svc")
        channel.get_naplet_writer().write_line("cmd")
        assert channel.service_reader.read_line(timeout=1) == "cmd"

    def test_fifo_order(self):
        channel = ServiceChannel("svc")
        for i in range(5):
            channel.naplet_writer.write(i)
        assert [channel.service_reader.read(timeout=1) for _ in range(5)] == list(range(5))

    def test_read_timeout_raises(self):
        channel = ServiceChannel("svc", read_timeout=0.05)
        with pytest.raises(ServiceChannelClosed):
            channel.naplet_reader.read()

    def test_iteration_until_eof(self):
        channel = ServiceChannel("svc")
        channel.service_writer.write(1)
        channel.service_writer.write(2)
        channel.service_writer.close()
        assert list(channel.naplet_reader) == [1, 2]


class TestClose:
    def test_write_after_close_raises(self):
        channel = ServiceChannel("svc")
        channel.close()
        with pytest.raises(ServiceChannelClosed):
            channel.naplet_writer.write("late")

    def test_read_after_close_returns_eof(self):
        channel = ServiceChannel("svc")
        channel.naplet_writer.write("queued")
        channel.close()
        assert channel.service_reader.read(timeout=1) == "queued"  # drains
        assert channel.service_reader.read(timeout=1) is EOF

    def test_closed_flag(self):
        channel = ServiceChannel("svc")
        assert not channel.closed
        channel.close()
        assert channel.closed

    def test_one_side_close(self):
        channel = ServiceChannel("svc")
        channel.naplet_writer.close()  # closes the to-service pipe only
        assert channel.service_reader.read(timeout=1) is EOF
        channel.service_writer.write("still-works")
        assert channel.naplet_reader.read(timeout=1) == "still-works"

    def test_channel_is_transient(self):
        with pytest.raises(TypeError):
            pickle.dumps(ServiceChannel("svc"))


class EchoService(PrivilegedService):
    """Doubles integers until EOF."""

    def run(self) -> None:
        while True:
            item = self.input.read()
            if item is EOF:
                return
            self.output.write(item * 2)


class TestPrivilegedService:
    def test_service_loop_over_channel(self):
        channel = ServiceChannel("echo")
        service = EchoService()
        service.bind(channel.service_reader, channel.service_writer)
        service.start("echo-thread")
        channel.naplet_writer.write(21)
        assert channel.naplet_reader.read(timeout=2) == 42
        channel.naplet_writer.write(5)
        assert channel.naplet_reader.read(timeout=2) == 10
        channel.naplet_writer.close()
        service.join(2)

    def test_service_closes_writer_on_exit(self):
        channel = ServiceChannel("echo")
        service = EchoService()
        service.bind(channel.service_reader, channel.service_writer)
        service.start("echo-exit")
        channel.naplet_writer.close()
        service.join(2)
        assert channel.naplet_reader.read(timeout=1) is EOF

    def test_unbound_service_asserts(self):
        service = EchoService()
        with pytest.raises(AssertionError):
            _ = service.input

    def test_repeated_inquiries_same_channel(self):
        """Paper §6.1: 'the whole process can be repeated'."""
        channel = ServiceChannel("echo")
        service = EchoService()
        service.bind(channel.service_reader, channel.service_writer)
        service.start("echo-repeat")
        for i in range(10):
            channel.naplet_writer.write(i)
            assert channel.naplet_reader.read(timeout=2) == i * 2
        channel.close()
