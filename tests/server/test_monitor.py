"""NapletMonitor: threads, outcomes, quotas, interrupts (paper §5.2)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.errors import NapletDeparted
from repro.server.messages import SystemControl
from repro.server.monitor import NapletMonitor, NapletOutcome, ResourceQuota
from repro.util.concurrency import wait_until
from tests.core.test_naplet import _identified


class Retirements:
    def __init__(self):
        self.records = []
        self.event = threading.Event()

    def __call__(self, naplet, outcome, error):
        self.records.append((outcome, error))
        self.event.set()

    def wait(self, timeout=5.0):
        assert self.event.wait(timeout), "naplet never retired"
        return self.records[-1]


@pytest.fixture
def monitor():
    return NapletMonitor("testhost")


class TestOutcomes:
    def test_normal_return_is_completed(self, monitor):
        agent = _identified()
        retire = Retirements()
        monitor.admit(agent, lambda: None, retire)
        outcome, error = retire.wait()
        assert outcome == NapletOutcome.COMPLETED
        assert error is None
        assert monitor.outcomes[NapletOutcome.COMPLETED] == 1

    def test_departed_signal(self, monitor):
        agent = _identified()
        retire = Retirements()

        def body():
            raise NapletDeparted("naplet://elsewhere")

        monitor.admit(agent, body, retire)
        outcome, _ = retire.wait()
        assert outcome == NapletOutcome.DEPARTED

    def test_exception_trapped_as_failed(self, monitor):
        agent = _identified()
        retire = Retirements()

        def body():
            raise RuntimeError("agent bug")

        monitor.admit(agent, body, retire)
        outcome, error = retire.wait()
        assert outcome == NapletOutcome.FAILED
        assert isinstance(error, RuntimeError)
        assert monitor.events.count("naplet-exception") == 1

    def test_on_destroy_called_for_terminal_outcomes(self, monitor):
        agent = _identified()
        destroyed = []
        agent.on_destroy = lambda: destroyed.append(True)  # type: ignore[method-assign]
        retire = Retirements()
        monitor.admit(agent, lambda: None, retire)
        retire.wait()
        assert destroyed == [True]

    def test_admitted_counter_and_active(self, monitor):
        agent = _identified()
        retire = Retirements()
        release = threading.Event()
        monitor.admit(agent, lambda: release.wait(5), retire)
        assert monitor.admitted == 1
        assert monitor.active_count == 1
        assert agent.naplet_id in monitor.resident_ids()
        release.set()
        retire.wait()
        assert wait_until(lambda: monitor.active_count == 0)

    def test_wait_idle(self, monitor):
        agent = _identified()
        retire = Retirements()
        monitor.admit(agent, lambda: time.sleep(0.05), retire)
        assert monitor.wait_idle(timeout=5)


class TestQuotas:
    def _spin(self, agent, block, seconds=10.0):
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            block.checkpoint()

    def test_cpu_quota_trips(self, monitor):
        agent = _identified()
        retire = Retirements()
        quota = ResourceQuota(cpu_seconds=0.05)
        holder = {}

        def body():
            self._spin(agent, holder["block"])

        monitor.admit(agent, body, retire, quota=quota,
                      prepare=lambda b: holder.__setitem__("block", b))
        outcome, error = retire.wait(timeout=15)
        assert outcome == NapletOutcome.QUOTA
        assert error.resource == "cpu"

    def test_wall_quota_trips(self, monitor):
        agent = _identified()
        retire = Retirements()
        quota = ResourceQuota(wall_seconds=0.05)
        holder = {}

        def body():
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                holder["block"].checkpoint()
                time.sleep(0.01)

        monitor.admit(agent, body, retire, quota=quota,
                      prepare=lambda b: holder.__setitem__("block", b))
        outcome, error = retire.wait(timeout=15)
        assert outcome == NapletOutcome.QUOTA
        assert error.resource == "wall"

    def test_message_quota_trips(self, monitor):
        agent = _identified()
        retire = Retirements()
        quota = ResourceQuota(max_messages=3)
        holder = {}

        def body():
            block = holder["block"]
            for _ in range(5):
                block.account_message(10)
            block.checkpoint()

        monitor.admit(agent, body, retire, quota=quota,
                      prepare=lambda b: holder.__setitem__("block", b))
        outcome, error = retire.wait()
        assert outcome == NapletOutcome.QUOTA
        assert error.resource == "messages"

    def test_message_bytes_quota(self, monitor):
        agent = _identified()
        retire = Retirements()
        quota = ResourceQuota(max_message_bytes=100)
        holder = {}

        def body():
            holder["block"].account_message(1000)
            holder["block"].checkpoint()

        monitor.admit(agent, body, retire, quota=quota,
                      prepare=lambda b: holder.__setitem__("block", b))
        outcome, error = retire.wait()
        assert error.resource == "message-bytes"

    def test_usage_visible_while_running(self, monitor):
        agent = _identified()
        retire = Retirements()
        release = threading.Event()
        holder = {}

        def body():
            holder["block"].account_message(50)
            release.wait(5)

        monitor.admit(agent, body, retire,
                      prepare=lambda b: holder.__setitem__("block", b))
        assert wait_until(lambda: (monitor.usage_of(agent.naplet_id) or None) is not None)
        usage = monitor.usage_of(agent.naplet_id)
        assert wait_until(lambda: monitor.usage_of(agent.naplet_id).messages_sent == 1)
        release.set()
        retire.wait()
        assert monitor.usage_of(agent.naplet_id) is None  # gone after retire


class TestInterrupts:
    def test_terminate_interrupt(self, monitor):
        agent = _identified()
        seen = []
        agent.on_interrupt = lambda c, p=None: seen.append((c, p))  # type: ignore[method-assign]
        retire = Retirements()
        holder = {}

        def body():
            while True:
                holder["block"].checkpoint()
                time.sleep(0.005)

        monitor.admit(agent, body, retire,
                      prepare=lambda b: holder.__setitem__("block", b))
        assert monitor.interrupt(agent.naplet_id, SystemControl.TERMINATE, "why")
        outcome, _ = retire.wait()
        assert outcome == NapletOutcome.TERMINATED
        assert (SystemControl.TERMINATE, "why") in seen

    @pytest.mark.slow  # the 0.08s park window is a timing-bound negative check
    def test_suspend_resume(self, monitor):
        agent = _identified()
        stopped = []
        agent.on_stop = lambda: stopped.append(True)  # type: ignore[method-assign]
        retire = Retirements()
        progress = []
        holder = {}

        def body():
            for i in range(200):
                holder["block"].checkpoint()
                progress.append(i)
                time.sleep(0.002)

        monitor.admit(agent, body, retire,
                      prepare=lambda b: holder.__setitem__("block", b))
        assert wait_until(lambda: len(progress) > 3)
        monitor.interrupt(agent.naplet_id, SystemControl.SUSPEND)
        assert wait_until(lambda: bool(stopped)), "on_stop never called"
        frozen_at = len(progress)
        time.sleep(0.08)
        assert len(progress) <= frozen_at + 1  # parked
        monitor.interrupt(agent.naplet_id, SystemControl.RESUME)
        assert wait_until(lambda: len(progress) > frozen_at + 3)
        monitor.interrupt(agent.naplet_id, SystemControl.TERMINATE)
        retire.wait()

    def test_callback_is_application_defined(self, monitor):
        agent = _identified()
        seen = []
        agent.on_interrupt = lambda c, p=None: seen.append(c)  # type: ignore[method-assign]
        retire = Retirements()
        done = threading.Event()
        holder = {}

        def body():
            while not done.is_set():
                holder["block"].checkpoint()
                time.sleep(0.005)

        monitor.admit(agent, body, retire,
                      prepare=lambda b: holder.__setitem__("block", b))
        monitor.interrupt(agent.naplet_id, SystemControl.CALLBACK, {"ask": "status"})
        assert wait_until(lambda: SystemControl.CALLBACK in seen)
        done.set()
        retire.wait()

    def test_interrupt_unknown_naplet_returns_false(self, monitor):
        from repro.core.naplet_id import NapletID

        assert not monitor.interrupt(
            NapletID.parse("x@y:240101120000:0"), SystemControl.TERMINATE
        )

    def test_prepare_hook_runs_before_thread(self, monitor):
        agent = _identified()
        order = []
        retire = Retirements()

        def prepare(block):
            order.append("prepare")

        def body():
            order.append("body")

        monitor.admit(agent, body, retire, prepare=prepare)
        retire.wait()
        assert order == ["prepare", "body"]
