"""Directory services: records, modes, and remote registration (paper §4.1)."""

from __future__ import annotations

import pytest

from repro.core.naplet_id import NapletID
from repro.server.directory import (
    DirectoryClient,
    DirectoryEvent,
    DirectoryMode,
    NapletDirectory,
)
from repro.transport.base import Frame, FrameKind, urn_of
from repro.transport.inmemory import InMemoryTransport


def _nid(owner="a", home="homeserver") -> NapletID:
    return NapletID.create(owner, home, stamp="240101120000")


class TestNapletDirectory:
    def test_arrival_then_lookup(self):
        directory = NapletDirectory()
        nid = _nid()
        directory.register_arrival(nid, "naplet://s1")
        record = directory.lookup(nid)
        assert record.server_urn == "naplet://s1"
        assert record.event == DirectoryEvent.ARRIVAL
        assert not record.in_transit

    def test_departure_marks_in_transit(self):
        directory = NapletDirectory()
        nid = _nid()
        directory.register_arrival(nid, "naplet://s1")
        directory.register_departure(nid, "naplet://s1")
        assert directory.lookup(nid).in_transit

    def test_sequence_increases(self):
        directory = NapletDirectory()
        nid = _nid()
        first = directory.register_arrival(nid, "naplet://s1")
        second = directory.register_departure(nid, "naplet://s1")
        assert second.sequence > first.sequence

    def test_unknown_lookup_none(self):
        assert NapletDirectory().lookup(_nid()) is None

    def test_drop(self):
        directory = NapletDirectory()
        nid = _nid()
        directory.register_arrival(nid, "naplet://s1")
        directory.drop(nid)
        assert directory.lookup(nid) is None
        assert len(directory) == 0


def _remote_directory_host(transport, hostname):
    """Register a host that serves directory frames from its own store."""
    directory = NapletDirectory()

    def handler(frame: Frame):
        if frame.kind == FrameKind.DIRECTORY_EVENT:
            return DirectoryClient.handle_event_frame(directory, frame)
        if frame.kind == FrameKind.DIRECTORY_QUERY:
            return DirectoryClient.handle_query_frame(directory, frame)
        raise AssertionError(frame.kind)

    transport.register(urn_of(hostname), handler)
    return directory


class TestCentralMode:
    def test_remote_registration_and_lookup(self):
        transport = InMemoryTransport()
        central = _remote_directory_host(transport, "dirhost")
        client = DirectoryClient(
            mode=DirectoryMode.CENTRAL,
            transport=transport,
            self_urn="naplet://edge",
            central_urn="naplet://dirhost",
        )
        nid = _nid()
        client.report_arrival(nid, "naplet://edge")
        assert central.lookup(nid).server_urn == "naplet://edge"
        record = client.lookup(nid)
        assert record.server_urn == "naplet://edge"

    def test_central_host_uses_local_store(self):
        transport = InMemoryTransport()
        local = NapletDirectory()
        client = DirectoryClient(
            mode=DirectoryMode.CENTRAL,
            transport=transport,
            self_urn="naplet://dirhost",
            central_urn="naplet://dirhost",
            local_directory=local,
        )
        nid = _nid()
        client.report_departure(nid, "naplet://dirhost")
        assert local.lookup(nid).in_transit
        assert client.lookup(nid).in_transit

    def test_central_mode_requires_urn(self):
        with pytest.raises(ValueError):
            DirectoryClient(
                mode=DirectoryMode.CENTRAL,
                transport=InMemoryTransport(),
                self_urn="naplet://x",
            )


class TestHomeMode:
    def test_events_routed_to_home_manager(self):
        transport = InMemoryTransport()
        home_store = _remote_directory_host(transport, "homeserver")
        client = DirectoryClient(
            mode=DirectoryMode.HOME,
            transport=transport,
            self_urn="naplet://edge",
        )
        nid = _nid(home="homeserver")
        client.report_arrival(nid, "naplet://edge")
        assert home_store.lookup(nid).server_urn == "naplet://edge"
        assert client.lookup(nid).server_urn == "naplet://edge"

    def test_home_server_itself_uses_local_slice(self):
        transport = InMemoryTransport()
        local = NapletDirectory()
        client = DirectoryClient(
            mode=DirectoryMode.HOME,
            transport=transport,
            self_urn=urn_of("homeserver"),
            local_directory=local,
        )
        nid = _nid(home="homeserver")
        client.report_arrival(nid, urn_of("homeserver"))
        assert local.lookup(nid) is not None


class TestNoneMode:
    def test_everything_is_silent(self):
        client = DirectoryClient(
            mode=DirectoryMode.NONE,
            transport=InMemoryTransport(),
            self_urn="naplet://x",
        )
        nid = _nid()
        client.report_arrival(nid, "naplet://x")  # no-op, no transport use
        assert client.lookup(nid) is None

    def test_unreachable_authority_lookup_returns_none(self):
        client = DirectoryClient(
            mode=DirectoryMode.HOME,
            transport=InMemoryTransport(),  # nothing registered
            self_urn="naplet://edge",
        )
        assert client.lookup(_nid(home="ghosthome")) is None
