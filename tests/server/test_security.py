"""SecurityPolicy matrix and NapletSecurityManager (paper §5)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.credential import SigningAuthority
from repro.core.errors import CredentialError, PermissionDeniedError
from repro.core.naplet_id import NapletID
from repro.server.security import (
    NapletSecurityManager,
    Permission,
    Rule,
    SecurityPolicy,
)


@pytest.fixture
def authority():
    auth = SigningAuthority()
    auth.register_owner("alice")
    auth.register_owner("mallory")
    return auth


def _credential(authority, owner="alice", attributes=None, codebase="cb://app"):
    nid = NapletID.create(owner, "home", stamp="240101120000")
    return authority.issue(nid, codebase, attributes or {})


class TestRules:
    def test_empty_match_applies_to_all(self, authority):
        rule = Rule.of({}, grants={"landing"})
        cred = _credential(authority)
        assert rule.applies_to(cred.features())

    def test_feature_match_with_wildcards(self, authority):
        rule = Rule.of({"owner": "ali*", "codebase": "cb://*"}, grants={"landing"})
        assert rule.applies_to(_credential(authority).features())
        assert not rule.applies_to(_credential(authority, owner="mallory").features())

    def test_missing_feature_never_matches(self, authority):
        rule = Rule.of({"role": "admin"})
        assert not rule.applies_to(_credential(authority).features())


class TestPolicy:
    def test_permissive_grants_everything(self, authority):
        policy = SecurityPolicy.permissive()
        cred = _credential(authority)
        for permission in (Permission.LAUNCH, Permission.LANDING, Permission.channel("x")):
            assert policy.permits(cred, permission)

    def test_locked_down_grants_nothing(self, authority):
        policy = SecurityPolicy.locked_down()
        assert not policy.permits(_credential(authority), Permission.LANDING)

    def test_grants_union_across_rules(self, authority):
        policy = SecurityPolicy(
            [
                Rule.of({}, grants={Permission.LANDING}),
                Rule.of({"owner": "alice"}, grants={Permission.LAUNCH}),
            ]
        )
        cred = _credential(authority)
        assert policy.permits(cred, Permission.LANDING)
        assert policy.permits(cred, Permission.LAUNCH)
        mallory = _credential(authority, owner="mallory")
        assert policy.permits(mallory, Permission.LANDING)
        assert not policy.permits(mallory, Permission.LAUNCH)

    def test_deny_overrides_grant(self, authority):
        policy = SecurityPolicy(
            [
                Rule.of({}, grants={"*"}),
                Rule.of({"owner": "mallory"}, denies={Permission.channel("*")}),
            ]
        )
        mallory = _credential(authority, owner="mallory")
        assert policy.permits(mallory, Permission.LANDING)
        assert not policy.permits(mallory, Permission.channel("NetManagement"))

    def test_namespaced_service_grants(self, authority):
        policy = SecurityPolicy(
            [Rule.of({}, grants={Permission.service("math"), Permission.channel("snmp")})]
        )
        cred = _credential(authority)
        assert policy.permits(cred, "service:math")
        assert not policy.permits(cred, "service:other")
        assert policy.permits(cred, "channel:snmp")

    def test_wildcard_namespace_grant(self, authority):
        policy = SecurityPolicy([Rule.of({}, grants={"channel:*"})])
        cred = _credential(authority)
        assert policy.permits(cred, "channel:anything")
        assert not policy.permits(cred, "launch")

    def test_attribute_based_rule(self, authority):
        policy = SecurityPolicy(
            [Rule.of({"role": "netadmin"}, grants={Permission.channel("NetManagement")})]
        )
        admin = _credential(authority, attributes={"role": "netadmin"})
        guest = _credential(authority, attributes={"role": "guest"})
        assert policy.permits(admin, "channel:NetManagement")
        assert not policy.permits(guest, "channel:NetManagement")

    def test_add_rule_at_runtime(self, authority):
        policy = SecurityPolicy.locked_down()
        cred = _credential(authority)
        assert not policy.permits(cred, Permission.LANDING)
        policy.add_rule(Rule.of({}, grants={Permission.LANDING}))
        assert policy.permits(cred, Permission.LANDING)


class TestSecurityManager:
    def test_check_passes_for_valid_credential(self, authority):
        manager = NapletSecurityManager(SecurityPolicy.permissive(), authority)
        manager.check(_credential(authority), Permission.LANDING)

    def test_check_raises_on_denied_permission(self, authority):
        manager = NapletSecurityManager(SecurityPolicy.locked_down(), authority)
        with pytest.raises(PermissionDeniedError):
            manager.check(_credential(authority), Permission.LANDING)

    def test_forged_credential_rejected_before_policy(self, authority):
        manager = NapletSecurityManager(SecurityPolicy.permissive(), authority)
        forged = dataclasses.replace(_credential(authority), codebase="evil")
        with pytest.raises(CredentialError):
            manager.check(forged, Permission.LANDING)

    def test_signature_check_can_be_disabled(self, authority):
        manager = NapletSecurityManager(
            SecurityPolicy.permissive(), authority, require_signature=False
        )
        forged = dataclasses.replace(_credential(authority), codebase="evil")
        manager.check(forged, Permission.LANDING)  # passes: no verification

    def test_permits_bool_wrapper(self, authority):
        manager = NapletSecurityManager(SecurityPolicy.locked_down(), authority)
        assert not manager.permits(_credential(authority), Permission.LAUNCH)
