"""Property tests: OID ordering and MIB get-next traversal invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snmp.mib import MibTree, MibVariable
from repro.snmp.oid import OID

_oids = st.lists(st.integers(0, 300), min_size=1, max_size=10).map(
    lambda parts: OID(tuple(parts))
)


class TestOrdering:
    @given(_oids, _oids)
    def test_total_order(self, a, b):
        assert (a < b) + (a == b) + (a > b) == 1

    @given(_oids, _oids)
    def test_order_matches_tuple_order(self, a, b):
        assert (a < b) == (a.parts < b.parts)

    @given(_oids)
    def test_parse_str_roundtrip(self, oid):
        assert OID.parse(str(oid)) == oid

    @given(_oids, _oids)
    def test_prefix_implies_leq_or_equal_start(self, a, b):
        if a.is_prefix_of(b) and a != b:
            assert a < b  # a proper prefix sorts before its extensions

    @given(_oids, _oids, _oids)
    @settings(max_examples=60)
    def test_prefix_transitive(self, a, b, c):
        if a.is_prefix_of(b) and b.is_prefix_of(c):
            assert a.is_prefix_of(c)


class TestMibTraversal:
    @given(st.sets(_oids, min_size=1, max_size=30))
    @settings(max_examples=40)
    def test_get_next_chain_visits_all_in_order(self, oid_set):
        tree = MibTree()
        for oid in oid_set:
            tree.register(MibVariable(oid=oid, name=str(oid), reader=lambda: 0))
        visited = []
        cursor = OID((0,))
        while True:
            variable = tree.get_next(cursor)
            if variable is None:
                break
            visited.append(variable.oid)
            cursor = variable.oid
        expected = sorted(o for o in oid_set if o > OID((0,)))
        assert visited == expected

    @given(st.sets(_oids, min_size=1, max_size=20), _oids)
    @settings(max_examples=40)
    def test_get_next_is_strict_successor(self, oid_set, probe):
        tree = MibTree()
        for oid in oid_set:
            tree.register(MibVariable(oid=oid, name=str(oid), reader=lambda: 0))
        nxt = tree.get_next(probe)
        greater = sorted(o for o in oid_set if o > probe)
        if greater:
            assert nxt is not None and nxt.oid == greater[0]
        else:
            assert nxt is None
