"""Property tests: NapletID parsing, heritage, and ancestry invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naplet_id import NapletID

_owners = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-.", min_size=1, max_size=12
)
_hosts = _owners
_stamps = st.integers(min_value=0, max_value=991231235959).map(lambda n: f"{n:012d}")
# Keep stamps parseable: build from real date parts instead.
_stamps = st.tuples(
    st.integers(0, 99),
    st.integers(1, 12),
    st.integers(1, 28),
    st.integers(0, 23),
    st.integers(0, 59),
    st.integers(0, 59),
).map(lambda t: f"{t[0]:02d}{t[1]:02d}{t[2]:02d}{t[3]:02d}{t[4]:02d}{t[5]:02d}")
_heritages = st.lists(st.integers(0, 40), min_size=1, max_size=6).map(tuple)


@st.composite
def naplet_ids(draw):
    return NapletID(
        owner=draw(_owners),
        home=draw(_hosts),
        stamp=draw(_stamps),
        heritage=draw(_heritages),
    )


class TestRoundtrip:
    @given(naplet_ids())
    def test_parse_str_identity(self, nid):
        assert NapletID.parse(str(nid)) == nid

    @given(naplet_ids())
    def test_hash_consistent_with_equality(self, nid):
        clone_of_value = NapletID.parse(str(nid))
        assert hash(clone_of_value) == hash(nid)


class TestHeritage:
    @given(naplet_ids(), st.integers(1, 5))
    @settings(max_examples=50)
    def test_clones_are_strict_descendants(self, nid, n_clones):
        clones = [nid.next_clone() for _ in range(n_clones)]
        for clone in clones:
            assert nid.is_ancestor_of(clone)
            assert not clone.is_ancestor_of(nid)
            assert clone.parent() == nid
            assert clone.generation == nid.generation + 1
        assert len({str(c) for c in clones}) == n_clones  # all distinct

    @given(naplet_ids())
    def test_lineage_terminates_at_original(self, nid):
        lineage = list(nid.lineage())
        assert lineage[0] == nid
        assert len(lineage) == len(nid.heritage)
        assert lineage[-1].heritage == (nid.heritage[0],)

    @given(naplet_ids())
    def test_ancestry_is_transitive_along_lineage(self, nid):
        lineage = list(nid.lineage())
        for ancestor in lineage[1:]:
            assert ancestor.is_ancestor_of(nid)

    @given(naplet_ids(), naplet_ids())
    def test_ancestry_requires_same_family(self, a, b):
        if not a.same_family(b):
            assert not a.is_ancestor_of(b)
            assert not b.is_ancestor_of(a)
