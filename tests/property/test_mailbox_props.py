"""Property tests: mailbox ordering under mixed filtered retrieval."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naplet_id import NapletID
from repro.server.mailbox import Mailbox
from repro.server.messages import UserMessage

TARGET = NapletID.parse("t@h:240101120000:0")


def _msg(body) -> UserMessage:
    return UserMessage(sender="prop", target=TARGET, body=body)


class TestOrdering:
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_plain_gets_preserve_fifo(self, bodies):
        box = Mailbox()
        for body in bodies:
            box.put(_msg(body))
        out = [box.get(timeout=1).body for _ in bodies]
        assert out == bodies

    @given(
        st.lists(st.integers(0, 9), min_size=1, max_size=30),
        st.integers(0, 9),
    )
    @settings(max_examples=60)
    def test_filtered_get_removes_only_matches_in_order(self, bodies, wanted):
        box = Mailbox()
        for body in bodies:
            box.put(_msg(body))
        matches = [b for b in bodies if b == wanted]
        got = []
        for _ in matches:
            got.append(box.get_matching(lambda m: m.body == wanted, timeout=1).body)
        assert got == matches
        # everything else still there, original relative order intact
        remaining = [box.get(timeout=1).body for _ in range(len(box))]
        assert remaining == [b for b in bodies if b != wanted]

    @given(st.lists(st.integers(0, 5), min_size=2, max_size=20))
    # Each all-odd element costs a real 10ms get_matching timeout, so the
    # wall clock scales with the example; exempt it from the 200ms deadline.
    @settings(max_examples=40, deadline=None)
    def test_interleaved_filters_never_lose_messages(self, bodies):
        box = Mailbox()
        for body in bodies:
            box.put(_msg(body))
        collected = []
        # alternate between filtered (evens) and plain gets
        while len(box):
            try:
                collected.append(
                    box.get_matching(lambda m: m.body % 2 == 0, timeout=0.01).body
                )
            except Exception:
                collected.append(box.get(timeout=1).body)
        assert sorted(collected) == sorted(bodies)
