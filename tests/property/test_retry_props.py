"""Property tests: retry backoff schedules and Alt failover ordering.

The backoff half pins the :class:`~repro.faults.retry.RetryPolicy`
algebra — monotone growth, the ``max_delay`` cap, the jitter envelope,
and seed determinism — plus the attempt-count contract of ``run()``.
The failover half drives random Alt patterns through the launch-time
travel loop and checks candidates are burned strictly in declaration
order, with one ``alt_failovers`` tick per abandoned branch.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import NapletMigrationError
from repro.faults import RetryPolicy, no_retry
from repro.itinerary.pattern import alt, seq
from tests.itinerary.test_itinerary_unit import FakeOps, make_agent
from tests.itinerary.test_launch_with import RecordingTransfer


def policies(max_jitter: float = 0.9):
    """RetryPolicy instances with a fixed seed and a no-op sleep."""
    return st.builds(
        lambda attempts, base, mult, headroom, jitter, seed: RetryPolicy(
            max_attempts=attempts,
            base_delay=base,
            multiplier=mult,
            max_delay=base + headroom,
            jitter=jitter,
            seed=seed,
            sleep=lambda _wait: None,
        ),
        attempts=st.integers(min_value=1, max_value=6),
        base=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        mult=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
        headroom=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        jitter=st.floats(min_value=0.0, max_value=max_jitter, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )


class Retryable(Exception):
    pass


class GiveUp(Retryable):
    """Subclasses the retryable type — give_up_on must still win."""


class TestBackoffSchedule:
    @given(policies())
    @settings(max_examples=100)
    def test_backoff_is_monotone_and_capped(self, policy):
        waits = [policy.backoff(i) for i in range(8)]
        assert all(a <= b for a, b in zip(waits, waits[1:]))
        assert all(0.0 <= w <= policy.max_delay for w in waits)

    @given(policies())
    @settings(max_examples=100)
    def test_schedule_length_and_jitter_envelope(self, policy):
        schedule = policy.schedule()
        assert len(schedule) == policy.retries == policy.max_attempts - 1
        for index, wait in enumerate(schedule):
            base = policy.backoff(index)
            low = base * (1.0 - policy.jitter)
            high = base * (1.0 + policy.jitter)
            assert low - 1e-12 <= wait <= high + 1e-12

    @given(policies())
    @settings(max_examples=60)
    def test_schedule_is_deterministic_under_a_fixed_seed(self, policy):
        twin = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay=policy.base_delay,
            multiplier=policy.multiplier,
            max_delay=policy.max_delay,
            jitter=policy.jitter,
            seed=policy.seed,
        )
        assert policy.schedule() == twin.schedule()

    @given(policies(max_jitter=0.0))
    @settings(max_examples=60)
    def test_zero_jitter_schedule_equals_raw_backoff(self, policy):
        assert policy.schedule() == tuple(
            policy.backoff(i) for i in range(policy.retries)
        )


class TestRunContract:
    @given(policies(), st.data())
    @settings(max_examples=80)
    def test_eventual_success_uses_exactly_failures_plus_one_attempts(
        self, policy, data
    ):
        failures = data.draw(
            st.integers(min_value=0, max_value=policy.max_attempts - 1)
        )
        calls = []

        def flaky():
            calls.append(True)
            if len(calls) <= failures:
                raise Retryable("transient")
            return "ok"

        assert policy.run(flaky, retry_on=(Retryable,)) == "ok"
        assert len(calls) == failures + 1

    @given(policies())
    @settings(max_examples=80)
    def test_exhaustion_raises_after_max_attempts(self, policy):
        calls = []
        retries = []

        def doomed():
            calls.append(True)
            raise Retryable("always down")

        with pytest.raises(Retryable):
            policy.run(
                doomed,
                retry_on=(Retryable,),
                on_retry=lambda attempt, wait, exc: retries.append((attempt, wait)),
            )
        assert len(calls) == policy.max_attempts
        assert [attempt for attempt, _ in retries] == list(
            range(1, policy.max_attempts)
        )

    @given(policies())
    @settings(max_examples=60)
    def test_sleeps_follow_the_positive_schedule_entries(self, policy):
        slept = []
        timed = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay=policy.base_delay,
            multiplier=policy.multiplier,
            max_delay=policy.max_delay,
            jitter=policy.jitter,
            seed=policy.seed,
            sleep=slept.append,
        )

        def doomed():
            raise Retryable("always down")

        with pytest.raises(Retryable):
            timed.run(doomed, retry_on=(Retryable,))
        expected = [wait for wait in timed.schedule() if wait > 0]
        assert slept == expected

    @given(policies())
    @settings(max_examples=60)
    def test_give_up_on_beats_retry_on_even_for_subclasses(self, policy):
        calls = []

        def denied():
            calls.append(True)
            raise GiveUp("deterministic rejection")

        with pytest.raises(GiveUp):
            policy.run(denied, retry_on=(Retryable,), give_up_on=(GiveUp,))
        assert len(calls) == 1

    def test_no_retry_is_the_single_attempt_policy(self):
        assert no_retry().max_attempts == 1
        assert no_retry().schedule() == ()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"base_delay": 0.2, "max_delay": 0.1},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_parameters_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


_mirrors = st.lists(
    st.sampled_from([f"m{i}" for i in range(8)]),
    min_size=1,
    max_size=6,
    unique=True,
)


class TestAltFailoverOrdering:
    @given(_mirrors, st.data())
    @settings(max_examples=80, deadline=None)
    def test_candidates_burn_in_declaration_order(self, mirrors, data):
        unreachable = set(
            data.draw(st.lists(st.sampled_from(mirrors), unique=True))
        )
        agent = make_agent(alt(*mirrors))
        transfer = RecordingTransfer(unreachable=unreachable)
        launched = agent.itinerary.launch_with(agent, FakeOps(), transfer)

        reachable = [m for m in mirrors if m not in unreachable]
        failed = [f.server for f in agent.itinerary.failures]
        if reachable:
            first = reachable[0]
            assert launched is True
            assert transfer.sent == [first]
            # Every candidate declared before the winner was tried, in order.
            assert failed == mirrors[: mirrors.index(first)]
            assert agent.itinerary.alt_failovers == len(failed)
        else:
            # Exhausted Alt degrades to skip: no transfer, journey complete.
            assert launched is False
            assert transfer.sent == []
            assert failed == mirrors
            assert agent.itinerary.completed

    @given(_mirrors)
    @settings(max_examples=40, deadline=None)
    def test_no_failures_means_no_failovers(self, mirrors):
        agent = make_agent(alt(*mirrors))
        transfer = RecordingTransfer()
        assert agent.itinerary.launch_with(agent, FakeOps(), transfer) is True
        assert transfer.sent == [mirrors[0]]
        assert agent.itinerary.alt_failovers == 0
        assert agent.itinerary.failures == []

    @given(_mirrors, st.sampled_from([f"m{i}" for i in range(8)]))
    @settings(max_examples=40, deadline=None)
    def test_failover_inside_seq_still_reaches_the_next_leg(self, mirrors, tail):
        """seq(alt(...), tail): whichever mirror wins, the journey goes on."""
        unreachable = set(mirrors[:-1])  # only the last mirror answers
        agent = make_agent(seq(alt(*mirrors), tail))
        transfer = RecordingTransfer(unreachable=unreachable)
        assert agent.itinerary.launch_with(agent, FakeOps(), transfer) is True
        assert transfer.sent == [mirrors[-1]]
        assert agent.itinerary.alt_failovers == len(mirrors) - 1
