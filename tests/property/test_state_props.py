"""Property tests: NapletState access-matrix invariants."""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StateAccessError
from repro.core.state import AccessMode, NapletState

_keys = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
_values = st.one_of(st.integers(), st.text(max_size=10), st.lists(st.integers(), max_size=4))
_servers = st.sampled_from(["s1", "s2", "s3", "s4"])


@st.composite
def entry_specs(draw):
    mode = draw(st.sampled_from(list(AccessMode)))
    allowed = (
        frozenset(draw(st.sets(_servers, min_size=1, max_size=3)))
        if mode is AccessMode.PROTECTED
        else None
    )
    return (draw(_keys), draw(_values), mode, allowed)


class TestAccessMatrix:
    @given(st.lists(entry_specs(), min_size=1, max_size=12), _servers)
    @settings(max_examples=60)
    def test_visible_iff_mode_admits(self, specs, server):
        state = NapletState()
        final: dict[str, tuple] = {}
        for key, value, mode, allowed in specs:
            state.set(key, value, mode=mode, allowed_servers=allowed)
            final[key] = (value, mode, allowed)
        visible = state.visible_to(server)
        for key, (value, mode, allowed) in final.items():
            should_see = mode is AccessMode.PUBLIC or (
                mode is AccessMode.PROTECTED and server in (allowed or ())
            )
            assert (key in visible) == should_see
            if should_see:
                assert visible[key] == value
                assert state.server_get(key, server) == value
            else:
                try:
                    state.server_get(key, server)
                    raised = False
                except StateAccessError:
                    raised = True
                assert raised

    @given(st.lists(entry_specs(), min_size=1, max_size=12))
    @settings(max_examples=40)
    def test_owner_always_sees_everything(self, specs):
        state = NapletState()
        final = {}
        for key, value, mode, allowed in specs:
            state.set(key, value, mode=mode, allowed_servers=allowed)
            final[key] = value
        for key, value in final.items():
            assert state.get(key) == value
        assert set(state.keys()) == set(final)

    @given(st.lists(entry_specs(), min_size=1, max_size=10), _servers)
    @settings(max_examples=40)
    def test_pickle_preserves_matrix(self, specs, server):
        state = NapletState()
        for key, value, mode, allowed in specs:
            state.set(key, value, mode=mode, allowed_servers=allowed)
        copy = pickle.loads(pickle.dumps(state))
        assert copy.visible_to(server) == state.visible_to(server)
        assert set(copy.keys()) == set(state.keys())
