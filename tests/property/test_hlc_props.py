"""Property tests: hybrid logical clocks under arbitrary skew and traffic.

Three laws the flight recorder's causal merge rests on:

- **per-node monotonicity** — whatever a node's wall clock does (stall,
  jump, crawl), successive stamps it mints strictly increase;
- **merge algebra** — ``merged`` is commutative, associative, idempotent;
- **no causal inversions** — for every message between skewed nodes, the
  send stamp sorts strictly before every stamp the receiver mints after
  the receive, so a merged timeline can never show a landing ahead of
  its departure.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.hlc import HLCStamp, HybridLogicalClock, merged

# Stamps with floats that compare exactly (no NaN, no -0.0 subtleties).
stamps = st.builds(
    HLCStamp,
    wall=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    logical=st.integers(min_value=0, max_value=1000),
    node=st.sampled_from(["a", "b", "c"]),
)

# A wall-clock trajectory: the per-call reading of one node's time source.
# Values may stall or even step backwards — HLC must not care.
trajectories = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=30,
)


class _Replay:
    """Feed a recorded trajectory to a clock, holding the last value."""

    def __init__(self, values: list[float]) -> None:
        self._values = list(values)

    def __call__(self) -> float:
        if len(self._values) > 1:
            return self._values.pop(0)
        return self._values[0]


class TestMergeAlgebra:
    @given(a=stamps, b=stamps)
    def test_merged_is_commutative(self, a, b):
        assert merged(a, b) == merged(b, a)

    @given(a=stamps, b=stamps, c=stamps)
    def test_merged_is_associative(self, a, b, c):
        assert merged(merged(a, b), c) == merged(a, merged(b, c))

    @given(a=stamps)
    def test_merged_is_idempotent(self, a):
        assert merged(a, a) == a

    @given(a=stamps, b=stamps)
    def test_merged_dominates_both_inputs(self, a, b):
        result = merged(a, b)
        assert result >= a and result >= b

    @given(a=stamps)
    def test_encode_decode_is_exact(self, a):
        assert HLCStamp.decode(a.encode()) == a


class TestPerNodeMonotonicity:
    @given(trajectory=trajectories)
    def test_now_stamps_strictly_increase(self, trajectory):
        clock = HybridLogicalClock("n", time_source=_Replay(trajectory))
        stamps_minted = [clock.now() for _ in range(len(trajectory) + 5)]
        assert all(a < b for a, b in zip(stamps_minted, stamps_minted[1:]))

    @given(trajectory=trajectories, remotes=st.lists(stamps, max_size=10))
    def test_interleaved_updates_keep_stamps_increasing(self, trajectory, remotes):
        clock = HybridLogicalClock("n", time_source=_Replay(trajectory))
        minted = []
        for remote in remotes:
            minted.append(clock.now())
            minted.append(clock.update(remote))
        minted.append(clock.now())
        assert all(a < b for a, b in zip(minted, minted[1:]))

    @given(trajectory=trajectories, remote=stamps)
    def test_update_dominates_the_received_stamp(self, trajectory, remote):
        clock = HybridLogicalClock("n", time_source=_Replay(trajectory))
        assert clock.update(remote) > remote


class TestNoCausalInversions:
    @settings(deadline=None)
    @given(
        skews=st.lists(
            st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
            min_size=2,
            max_size=4,
        ),
        hops=st.lists(
            st.tuples(st.integers(min_value=0, max_value=3),
                      st.integers(min_value=0, max_value=3)),
            min_size=1,
            max_size=25,
        ),
        step=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    )
    def test_every_send_sorts_before_its_receive(self, skews, hops, step):
        """Random traffic between nodes skewed up to ±5s never inverts."""
        base = 1000.0
        elapsed = [0.0]

        def wall_of(skew: float):
            def read() -> float:
                elapsed[0] += step  # time creeps forward between calls
                return base + skew + elapsed[0]

            return read

        clocks = [
            HybridLogicalClock(f"n{i}", time_source=wall_of(skew))
            for i, skew in enumerate(skews)
        ]
        for src_i, dst_i in hops:
            src = clocks[src_i % len(clocks)]
            dst = clocks[dst_i % len(clocks)]
            sent = src.now()
            received = dst.update(HLCStamp.decode(sent.encode()))
            assert sent < received
            # Everything the receiver does afterwards also sorts after.
            assert received < dst.now()


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
