"""Property tests: load-aware Alt/Par ordering (DESIGN.md §6.8).

Two layers.  The observatory half pins :meth:`LoadObservatory.order_branches`
over random mirror sets and fabricated digests: equal (or absent) load
scores must reproduce static declaration order byte-for-byte, and any
seeded skew must put the least-loaded candidate first.  The driver half
pins :meth:`Itinerary._select_alt`: an identity permutation from the
ordering hook must leave the whole traversal — including failover burn
order — identical to the hook-less static path, and an arbitrary
permutation must burn candidates strictly in permutation order.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.health.observatory import LoadDigest
from repro.itinerary.pattern import alt
from repro.server import ServerConfig, deploy
from repro.simnet import VirtualNetwork, line

from tests.itinerary.test_itinerary_unit import FakeOps, make_agent
from tests.itinerary.test_launch_with import RecordingTransfer

_MIRRORS = [f"r{i}" for i in range(6)]

_mirror_sets = st.lists(
    st.sampled_from(_MIRRORS), min_size=2, max_size=5, unique=True
)


# --------------------------------------------------------------------- #
# Observatory ordering
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def observer():
    """One real server whose observatory we feed fabricated digests."""
    network = VirtualNetwork(line(1, prefix="s"))
    servers = deploy(network, config=ServerConfig(load_cadence=60.0))
    try:
        yield servers["s00"]
    finally:
        network.shutdown()


def _seed_view(server, loads: dict[str, int]) -> None:
    obs = server.observatory
    for peer in obs.view.peers():
        obs.view.forget(peer)
    clock = server.journal.clock
    for peer, residents in loads.items():
        obs.view.observe(
            LoadDigest(
                server=peer, seq=1, hlc=clock.now().encode(), residents=residents
            )
        )


def _order(server, mirrors: list[str]):
    agent = make_agent(alt(*mirrors))
    return server.observatory.order_branches(agent, alt(*mirrors))


class TestObservatoryOrdering:
    @given(_mirror_sets, st.integers(min_value=0, max_value=9))
    @settings(max_examples=40, deadline=None)
    def test_equal_scores_reproduce_declaration_order(
        self, observer, mirrors, residents
    ):
        _seed_view(observer, {m: residents for m in mirrors})
        before = observer.observatory.reroutes()
        assert _order(observer, mirrors) == tuple(range(len(mirrors)))
        assert observer.observatory.reroutes() == before  # not a reroute
        record = observer.journal.records(kind="load")[-1]
        assert record.detail["changed"] is False

    @given(_mirror_sets, st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_absent_digest_forces_static_fallback(
        self, observer, mirrors, data
    ):
        known = data.draw(
            st.lists(st.sampled_from(mirrors), unique=True,
                     max_size=len(mirrors) - 1)
        )
        _seed_view(observer, {m: 1 for m in known})
        assert _order(observer, mirrors) is None
        record = observer.journal.records(kind="load")[-1]
        assert record.detail["fallback"] is not None

    @given(_mirror_sets, st.data())
    @settings(max_examples=60, deadline=None)
    def test_seeded_skew_always_prefers_the_less_loaded(
        self, observer, mirrors, data
    ):
        loads = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=50),
                min_size=len(mirrors), max_size=len(mirrors), unique=True,
            )
        )
        _seed_view(observer, dict(zip(mirrors, loads)))
        order = _order(observer, mirrors)
        assert order is not None
        assert order[0] == loads.index(min(loads))
        # The full permutation sorts by (score, declaration index).
        assert list(order) == sorted(range(len(mirrors)), key=lambda i: (loads[i], i))


# --------------------------------------------------------------------- #
# Driver expansion
# --------------------------------------------------------------------- #


class HookedOps(FakeOps):
    """FakeOps plus the duck-typed ordering hook the Navigator exposes."""

    def __init__(self, order=None, **kwargs):
        super().__init__(**kwargs)
        self._order = order

    def order_alt_branches(self, naplet, pattern):
        return self._order


class TestDriverExpansion:
    @given(_mirror_sets, st.data())
    @settings(max_examples=60, deadline=None)
    def test_identity_order_is_byte_identical_to_static(self, mirrors, data):
        """Equal scores rank as (0, 1, ..): the traversal cannot differ."""
        unreachable = set(
            data.draw(st.lists(st.sampled_from(mirrors), unique=True))
        )
        runs = []
        for order in (None, tuple(range(len(mirrors)))):
            agent = make_agent(alt(*mirrors))
            transfer = RecordingTransfer(unreachable=set(unreachable))
            launched = agent.itinerary.launch_with(
                agent, HookedOps(order=order), transfer
            )
            runs.append(
                (launched, transfer.sent,
                 [f.server for f in agent.itinerary.failures],
                 agent.itinerary.alt_failovers)
            )
        assert runs[0] == runs[1]

    @given(_mirror_sets, st.data())
    @settings(max_examples=60, deadline=None)
    def test_candidates_burn_in_permutation_order(self, mirrors, data):
        perm = tuple(data.draw(st.permutations(range(len(mirrors)))))
        unreachable = set(
            data.draw(st.lists(st.sampled_from(mirrors), unique=True))
        )
        agent = make_agent(alt(*mirrors))
        transfer = RecordingTransfer(unreachable=set(unreachable))
        launched = agent.itinerary.launch_with(
            agent, HookedOps(order=perm), transfer
        )
        ranked = [mirrors[i] for i in perm]
        reachable = [m for m in ranked if m not in unreachable]
        failed = [f.server for f in agent.itinerary.failures]
        if reachable:
            assert launched is True
            assert transfer.sent == [reachable[0]]
            assert failed == ranked[: ranked.index(reachable[0])]
        else:
            assert launched is False
            assert failed == ranked
            assert agent.itinerary.completed
