"""Property tests: itinerary algebra + driver traversal invariants.

Random pattern trees are executed with the FakeOps harness from the unit
tests; the driver must visit exactly the servers the algebra predicts.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.itinerary.itinerary import Itinerary
from repro.itinerary.pattern import (
    AltPattern,
    JoinPolicy,
    ParPattern,
    SeqPattern,
    SingletonPattern,
)
from repro.itinerary.visit import Never
from tests.itinerary.test_itinerary_unit import FakeOps, make_agent, run_journey

_servers = st.sampled_from([f"h{i}" for i in range(8)])


def _singletons():
    return _servers.map(SingletonPattern.to)


def patterns(max_depth: int = 3):
    return st.recursive(
        _singletons(),
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(SeqPattern),
            st.lists(children, min_size=1, max_size=3).map(AltPattern),
            st.lists(children, min_size=1, max_size=2).map(
                lambda c: ParPattern(c, join=JoinPolicy.TERMINATE)
            ),
        ),
        max_leaves=8,
    )


def seq_only_patterns():
    return st.recursive(
        _singletons(),
        lambda children: st.lists(children, min_size=1, max_size=3).map(SeqPattern),
        max_leaves=10,
    )


class TestAlgebra:
    @given(patterns())
    @settings(max_examples=60)
    def test_visit_count_equals_servers_len(self, pattern):
        assert pattern.visit_count() == len(pattern.servers())

    @given(patterns())
    @settings(max_examples=60)
    def test_first_admitting_visit_is_a_pattern_visit(self, pattern):
        agent = make_agent(SeqPattern([SingletonPattern.to("x")]))
        found = pattern.first_admitting_visit(agent)
        assert found is None or found in list(pattern.visits())


class TestDriverTraversal:
    @given(seq_only_patterns())
    @settings(max_examples=50, deadline=None)
    def test_seq_trees_visit_in_preorder(self, pattern):
        agent = make_agent(pattern)
        visited = run_journey(agent, FakeOps())
        assert visited == pattern.servers()
        assert agent.itinerary.completed

    @given(patterns())
    @settings(max_examples=50, deadline=None)
    def test_every_dispatch_is_a_declared_server(self, pattern):
        agent = make_agent(pattern)
        ops = FakeOps()
        run_journey(agent, ops)
        declared = set(pattern.servers())
        assert {server for _nid, server in ops.dispatches} <= declared

    @given(patterns())
    @settings(max_examples=50, deadline=None)
    def test_terminate_join_covers_all_servers(self, pattern):
        """Under TERMINATE, original+clones collectively visit every
        (unconditional) server in the tree, except Alt prunes siblings."""
        agent = make_agent(pattern)
        ops = FakeOps()
        run_journey(agent, ops)
        visited = [server for _nid, server in ops.dispatches]
        # every visited server is declared and multiplicity never exceeds
        # the declaration count
        declared = pattern.servers()
        for server in set(visited):
            assert visited.count(server) <= declared.count(server)

    @given(st.lists(_servers, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_all_never_guards_complete_without_dispatch(self, servers):
        pattern = SeqPattern(
            [SingletonPattern.to(s, guard=Never()) for s in servers]
        )
        agent = make_agent(pattern)
        ops = FakeOps()
        assert run_journey(agent, ops) == []
        assert agent.itinerary.completed
        assert ops.dispatches == []


class TestSerializationProps:
    @given(patterns())
    @settings(max_examples=40)
    def test_pattern_pickle_preserves_servers(self, pattern):
        import pickle

        copy = pickle.loads(pickle.dumps(pattern))
        assert copy.servers() == pattern.servers()

    @given(seq_only_patterns())
    @settings(max_examples=30, deadline=None)
    def test_mid_journey_cursor_survives_pickle(self, pattern):
        """Serialize the itinerary after the first step; the restored cursor
        continues with exactly the remaining servers."""
        import pickle

        agent = make_agent(pattern)
        ops = FakeOps()
        first = agent.itinerary.step(agent, ops)
        if first is None:
            return
        restored: Itinerary = pickle.loads(pickle.dumps(agent.itinerary))
        rest = []
        while True:
            nxt = restored.step(agent, ops)
            if nxt is None:
                break
            rest.append(nxt)
        assert [first, *rest] == pattern.servers()
