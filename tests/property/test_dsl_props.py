"""Property tests: DSL parse/render roundtrip over random pattern trees."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.itinerary.dsl import parse, render
from repro.itinerary.pattern import (
    AltPattern,
    ParPattern,
    RepeatPattern,
    SeqPattern,
    SingletonPattern,
)
from repro.itinerary.visit import StateFlagClear

_names = st.sampled_from([f"host{i}" for i in range(6)] + ["ece.eng.wayne.edu", "n-1"])


@st.composite
def _leaves(draw):
    name = draw(_names)
    if draw(st.booleans()):
        return SingletonPattern.to(name, guard=StateFlagClear("done"))
    return SingletonPattern.to(name)


def dsl_patterns():
    return st.recursive(
        _leaves(),
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(SeqPattern),
            st.lists(children, min_size=1, max_size=3).map(AltPattern),
            st.lists(children, min_size=1, max_size=3).map(ParPattern),
            st.tuples(children, st.integers(1, 5)).map(
                lambda t: RepeatPattern(t[0], t[1])
            ),
        ),
        max_leaves=10,
    )


class TestDslRoundtrip:
    @given(dsl_patterns())
    @settings(max_examples=80)
    def test_parse_render_fixpoint(self, pattern):
        text = render(pattern)
        reparsed = parse(text)
        assert render(reparsed) == text

    @given(dsl_patterns())
    @settings(max_examples=80)
    def test_roundtrip_preserves_servers_and_structure(self, pattern):
        reparsed = parse(render(pattern))
        assert reparsed.servers() == pattern.servers()
        assert type(reparsed) is type(pattern)
        assert reparsed.visit_count() == pattern.visit_count()

    @given(dsl_patterns())
    @settings(max_examples=60)
    def test_roundtrip_preserves_guards(self, pattern):
        reparsed = parse(render(pattern))
        original_guards = [v.conditional for v in pattern.visits()]
        reparsed_guards = [v.conditional for v in reparsed.visits()]
        assert original_guards == reparsed_guards
