"""Property tests: credential signing is total and tamper-evident."""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.credential import SigningAuthority
from repro.core.naplet_id import NapletID

_owners = st.sampled_from(["alice", "bob", "carol"])
_codebases = st.text(alphabet="abcdefgh:/.-", min_size=1, max_size=20)
_attr_keys = st.text(alphabet="abcdef", min_size=1, max_size=5)
_attr_values = st.text(alphabet="xyz0123456789", min_size=0, max_size=8)
_attributes = st.dictionaries(_attr_keys, _attr_values, max_size=5)

_authority = SigningAuthority()
for _o in ("alice", "bob", "carol"):
    _authority.register_owner(_o)


def _nid(owner: str) -> NapletID:
    return NapletID.create(owner, "home", stamp="240101120000")


class TestSigningTotality:
    @given(_owners, _codebases, _attributes)
    @settings(max_examples=100)
    def test_issued_always_verifies(self, owner, codebase, attributes):
        cred = _authority.issue(_nid(owner), codebase, attributes)
        assert _authority.verify(cred)
        assert dict(cred.attributes) == attributes

    @given(_owners, _codebases, _attributes, _codebases)
    @settings(max_examples=100)
    def test_codebase_tamper_always_detected(self, owner, codebase, attributes, other):
        cred = _authority.issue(_nid(owner), codebase, attributes)
        forged = dataclasses.replace(cred, codebase=other)
        assert _authority.verify(forged) == (other == codebase)

    @given(_owners, _codebases, _attributes, _attr_keys, _attr_values)
    @settings(max_examples=100)
    def test_attribute_tamper_always_detected(self, owner, codebase, attributes, key, value):
        cred = _authority.issue(_nid(owner), codebase, attributes)
        tampered = dict(attributes)
        tampered[key] = value
        forged = dataclasses.replace(cred, attributes=tuple(sorted(tampered.items())))
        assert _authority.verify(forged) == (tampered == attributes)

    @given(_owners, _codebases, _attributes)
    @settings(max_examples=60)
    def test_clone_reissue_verifies_and_preserves(self, owner, codebase, attributes):
        cred = _authority.issue(_nid(owner), codebase, attributes)
        clone_cred = cred.for_clone(cred.naplet_id.next_clone(), _authority)
        assert _authority.verify(clone_cred)
        assert dict(clone_cred.attributes) == attributes
        assert clone_cred.naplet_id != cred.naplet_id
