"""Property tests: security-policy matrix monotonicity."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.credential import SigningAuthority
from repro.core.naplet_id import NapletID
from repro.server.security import Rule, SecurityPolicy

_permissions = st.sampled_from(
    ["launch", "landing", "message", "clone", "service:math", "channel:snmp"]
)
_owners = st.sampled_from(["alice", "bob", "carol"])
_patterns = st.sampled_from(["alice", "bob", "carol", "*", "a*", "?ob"])


@st.composite
def grant_rules(draw):
    match = {}
    if draw(st.booleans()):
        match["owner"] = draw(_patterns)
    grants = frozenset(draw(st.sets(_permissions, max_size=4)))
    return Rule.of(match, grants=grants)


_authority = SigningAuthority()
for _owner in ("alice", "bob", "carol"):
    _authority.register_owner(_owner)


def _credential(owner):
    nid = NapletID.create(owner, "home", stamp="240101120000")
    return _authority.issue(nid, "cb://x", {})


class TestMonotonicity:
    @given(st.lists(grant_rules(), max_size=6), grant_rules(), _owners, _permissions)
    @settings(max_examples=80)
    def test_adding_grant_rules_never_revokes(self, rules, extra, owner, permission):
        cred = _credential(owner)
        before = SecurityPolicy(list(rules)).permits(cred, permission)
        after = SecurityPolicy(list(rules) + [extra]).permits(cred, permission)
        if before:
            assert after

    @given(st.lists(grant_rules(), max_size=6), _owners, _permissions)
    @settings(max_examples=60)
    def test_rule_order_irrelevant_without_denies(self, rules, owner, permission):
        cred = _credential(owner)
        forward = SecurityPolicy(list(rules)).permits(cred, permission)
        backward = SecurityPolicy(list(reversed(rules))).permits(cred, permission)
        assert forward == backward

    @given(st.lists(grant_rules(), max_size=6), _owners, _permissions)
    @settings(max_examples=60)
    def test_deny_always_wins(self, rules, owner, permission):
        cred = _credential(owner)
        deny_all = Rule.of({}, denies={"*"})
        assert not SecurityPolicy(list(rules) + [deny_all]).permits(cred, permission)

    @given(_owners, _permissions)
    def test_permissive_policy_grants_all(self, owner, permission):
        assert SecurityPolicy.permissive().permits(_credential(owner), permission)

    @given(_owners, _permissions)
    def test_locked_down_grants_none(self, owner, permission):
        assert not SecurityPolicy.locked_down().permits(_credential(owner), permission)
