"""tools/napletperf.py: the regression gate CLI over the perf plane.

``tools/`` is not a package, so the module is loaded by file path.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.perf.bench import write_bench

pytestmark = pytest.mark.perf

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "napletperf.py"


@pytest.fixture(scope="module")
def napletperf():
    spec = importlib.util.spec_from_file_location("napletperf", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("napletperf", module)
    spec.loader.exec_module(module)
    return module


def _snapshot(path: Path, p50_ms: float, frames: float = 1.0) -> Path:
    write_bench(
        path,
        "transport fast path vs two-phase baseline",
        {"fastpath": {"hop_latency_p50_ms": p50_ms, "rt_frames_per_hop": frames}},
    )
    return path


class TestDiffCommand:
    def test_unchanged_rerun_exits_zero(self, napletperf, tmp_path, capsys):
        old = _snapshot(tmp_path / "old.json", 10.0)
        new = _snapshot(tmp_path / "new.json", 10.0)
        assert napletperf.main(["diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_seeded_30pct_slowdown_exits_nonzero(self, napletperf, tmp_path, capsys):
        """ISSUE acceptance: `napletperf diff` flags a ~30% slowdown."""
        old = _snapshot(tmp_path / "old.json", 10.0)
        new = _snapshot(tmp_path / "new.json", 13.0)
        assert napletperf.main(["diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "hop_latency_p50_ms" in out

    def test_structural_mode_ignores_timing_gates_on_protocol(
        self, napletperf, tmp_path, capsys
    ):
        old = _snapshot(tmp_path / "old.json", 10.0, frames=1.0)
        slow = _snapshot(tmp_path / "slow.json", 30.0, frames=1.0)
        # Pure timing noise passes the CI gate...
        assert napletperf.main(["diff", str(old), str(slow), "--structural"]) == 0
        capsys.readouterr()
        # ...a protocol change (more exchanges per hop) does not.
        chatty = _snapshot(tmp_path / "chatty.json", 10.0, frames=3.0)
        assert napletperf.main(["diff", str(old), str(chatty), "--structural"]) == 1
        assert "rt_frames_per_hop" in capsys.readouterr().out

    def test_json_output_is_machine_readable(self, napletperf, tmp_path, capsys):
        old = _snapshot(tmp_path / "old.json", 10.0)
        new = _snapshot(tmp_path / "new.json", 13.0)
        napletperf.main(["diff", str(old), str(new), "--json"])
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{") :])
        assert payload["ok"] is False
        assert any(e["verdict"] == "regression" for e in payload["entries"])

    def test_provenance_header_names_both_snapshots(self, napletperf, tmp_path, capsys):
        old = _snapshot(tmp_path / "old.json", 10.0)
        new = _snapshot(tmp_path / "new.json", 10.0)
        napletperf.main(["diff", str(old), str(new)])
        out = capsys.readouterr().out
        assert "old: transport fast path" in out
        assert "new: transport fast path" in out


class TestHopsCommand:
    def test_renders_table_from_a_journal_dump(self, napletperf, tmp_path, capsys):
        dump = tmp_path / "journal.json"
        dump.write_text(
            json.dumps(
                {
                    "records": [
                        {
                            "kind": "hop-cost",
                            "naplet": "nap-1",
                            "detail": {
                                "source": "s00",
                                "dest": "naplet://s01",
                                "serialize_s": 0.001,
                                "payload_bytes": 1800,
                                "header_bytes": 200,
                                "code_bytes": 0,
                                "total_bytes": 2000,
                                "fast_path": True,
                            },
                        },
                        {"kind": "naplet-depart", "naplet": "nap-1", "detail": {}},
                    ]
                }
            )
        )
        assert napletperf.main(["hops", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "s00 -> naplet://s01" in out
        assert "2000" in out and "fast" in out
        assert "(all hops)" in out

    def test_naplet_filter_and_empty_message(self, napletperf, tmp_path, capsys):
        dump = tmp_path / "journal.json"
        dump.write_text(json.dumps({"records": []}))
        assert napletperf.main(["hops", str(dump), "--naplet", "ghost"]) == 0
        assert "no hop-cost records for ghost" in capsys.readouterr().out

    def test_non_dump_file_is_a_usage_error(self, napletperf, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('"just a string"')
        assert napletperf.main(["hops", str(bogus)]) == 2


class TestListAndRun:
    def test_list_names_every_suite(self, napletperf, capsys):
        assert napletperf.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "transport" in out
        assert "BENCH_transport.json" in out

    def test_run_rejects_unknown_suites(self, napletperf, capsys):
        assert napletperf.main(["run", "no-such-suite"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_every_suite_target_exists(self, napletperf):
        for suite in napletperf.SUITES.values():
            assert (Path(__file__).resolve().parents[2] / suite["target"]).is_file()
