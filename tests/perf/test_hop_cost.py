"""Per-hop cost attribution, end to end on a live space.

Every successful migration must leave (a) a ``perf`` hop-cost record in
the flight recorder, (b) observations in the ``naplet_hop_bytes`` /
``naplet_serialize_seconds`` histograms, (c) a bytes column in the
journey's critical path, and (d) counter tracks in the Chrome export —
the four surfaces DESIGN.md §6.6 promises.
"""

from __future__ import annotations

import pytest

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.perf import hop_cost_rows, render_hop_costs
from repro.server import ServerConfig, SpaceAdmin
from repro.simnet import line
from repro.telemetry import chrome_trace
from tests.conftest import CollectorNaplet

pytestmark = pytest.mark.perf

ROUTE = ["s01", "s02", "s03"]


def _tour(servers):
    listener = repro.NapletListener()
    agent = CollectorNaplet("hop-cost-tour")
    agent.set_itinerary(
        Itinerary(SeqPattern.of_servers(ROUTE, post_action=ResultReport("visited")))
    )
    nid = servers["s00"].launch(agent, owner="perf", listener=listener)
    assert listener.next_report(timeout=15).payload == ROUTE
    return nid


@pytest.fixture
def toured(small_line):
    _network, servers = small_line
    admin = SpaceAdmin(servers)
    nid = _tour(servers)
    assert admin.wait_space_idle()
    return servers, admin, nid


class TestJournalRecords:
    def test_every_hop_leaves_one_perf_record(self, toured):
        servers, admin, nid = toured
        records = admin.harvest_journal(category="perf", naplet=str(nid))
        assert len(records) == len(ROUTE)
        assert [r.kind for r in records] == ["hop-cost"] * len(ROUTE)
        # Causal order follows the route.
        assert [r.detail["source"] for r in records] == ["s00", "s01", "s02"]

    def test_record_detail_decomposes_the_frame(self, toured):
        _servers, admin, nid = toured
        record = admin.harvest_journal(category="perf", naplet=str(nid))[0]
        detail = record.detail
        assert detail["serialize_s"] > 0
        assert detail["payload_bytes"] > 0
        assert detail["header_bytes"] > 0
        assert detail["code_bytes"] == 0  # lazy shipping, local codebase
        assert (
            detail["payload_bytes"] + detail["header_bytes"] + detail["code_bytes"]
            == detail["total_bytes"]
        )
        assert detail["fast_path"] is True
        assert record.trace_id  # joinable against the journey's spans

    def test_two_phase_hops_are_marked_as_such(self, space):
        _network, servers = space(
            line(4, prefix="s"), config=ServerConfig(migration_fast_path=False)
        )
        admin = SpaceAdmin(servers)
        nid = _tour(servers)
        assert admin.wait_space_idle()
        records = admin.harvest_journal(category="perf", naplet=str(nid))
        assert len(records) == len(ROUTE)
        assert all(r.detail["fast_path"] is False for r in records)

    def test_disabled_journal_records_nothing_and_nothing_breaks(self, space):
        _network, servers = space(
            line(4, prefix="s"), config=ServerConfig(journal_enabled=False)
        )
        admin = SpaceAdmin(servers)
        _tour(servers)
        assert admin.wait_space_idle()
        assert admin.harvest_journal(category="perf") == []


class TestHopCostTable:
    def test_rows_and_render_from_a_live_harvest(self, toured):
        _servers, admin, nid = toured
        records = admin.harvest_journal(category="perf")
        rows = hop_cost_rows(records, naplet=str(nid))
        assert len(rows) == len(ROUTE)
        assert rows[0]["source"] == "s00"
        text = render_hop_costs(records, naplet=str(nid))
        assert f"{len(ROUTE)} hop(s)" in text
        assert "(all hops)" in text
        # The totals row really sums the hops.
        total = sum(row["total_bytes"] for row in rows)
        assert str(total) in text


class TestHistograms:
    def test_hop_bytes_split_by_part(self, toured):
        servers, _admin, _nid = toured
        merged = SpaceAdmin(servers).space_metrics()
        payload = merged.value("naplet_hop_bytes", part="payload")
        header = merged.value("naplet_hop_bytes", part="header")
        assert payload.count == len(ROUTE)
        assert header.count == len(ROUTE)
        assert payload.total > header.total  # the naplet outweighs the header

    def test_serialize_seconds_split_by_op(self, toured):
        servers, _admin, _nid = toured
        merged = SpaceAdmin(servers).space_metrics()
        dumps = merged.value("naplet_serialize_seconds", op="dumps")
        loads = merged.value("naplet_serialize_seconds", op="loads")
        # One dumps per departure; loads covers arrivals plus message bodies.
        assert dumps.count >= len(ROUTE)
        assert loads.count >= len(ROUTE)
        assert dumps.total > 0 and loads.total > 0


class TestCriticalPathBytes:
    def test_journey_renders_a_bytes_column(self, toured):
        _servers, admin, nid = toured
        path = admin.journey(nid).critical_path()
        assert len(path) == len(ROUTE)
        for hop in path.hops:
            assert hop.bytes > 0
        assert path.total_bytes == sum(h.bytes for h in path.hops)
        text = path.render()
        assert "bytes" in text
        assert str(path.total_bytes) in text


class TestChromeCounterTracks:
    def test_hop_spans_emit_byte_and_serialize_counters(self, toured):
        _servers, admin, nid = toured
        trace = chrome_trace(admin.journey(nid))
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        byte_tracks = [e for e in counters if e["name"] == "hop bytes"]
        ser_tracks = [e for e in counters if e["name"] == "hop serialize ms"]
        assert len(byte_tracks) == len(ROUTE)
        assert len(ser_tracks) == len(ROUTE)
        for event in byte_tracks:
            assert event["args"]["payload"] > 0
            assert event["args"]["header"] > 0
            assert event["args"]["code"] == 0
        for event in ser_tracks:
            assert event["args"]["ms"] > 0


class TestWireBytes:
    def test_endpoint_bytes_visible_through_the_telemetry_service(self, toured):
        servers, _admin, _nid = toured
        from repro.telemetry.exposition import TelemetryService

        wire = TelemetryService(servers["s00"]).wire_bytes()
        assert wire["egress_bytes"] > 0  # launched three departures
        assert wire["ingress_bytes"] > 0  # acks came back
