"""explain_pickle: per-attribute byte attribution of a serialized naplet."""

from __future__ import annotations

import json

import pytest

from repro.codeshipping.codebase import CodeBaseRegistry
from repro.perf import explain_pickle
from repro.transport.serializer import NapletSerializer
from tests.conftest import CollectorNaplet
from tests.transport.shipped_fixture import StampedPayload

pytestmark = pytest.mark.perf


class Bag:
    """Plain object (no custom __getstate__) for the generic-object path."""

    def __init__(self):
        self.small = 1
        self.big = b"y" * 2048


def _heavy_naplet() -> CollectorNaplet:
    """A naplet whose state carries a few KB — the X-ray's usual patient."""
    agent = CollectorNaplet("xray-patient")
    agent.state.set("blob", "x" * 4096)
    agent.state.set("table", {f"key-{i}": i for i in range(200)})
    return agent


class TestAttribution:
    def test_attribute_sizes_sum_within_5pct_of_payload(self):
        """ISSUE acceptance: the shared-memo trick keeps the decomposition
        honest — attributed bytes land within 5% of the true pickle size."""
        xray = explain_pickle(_heavy_naplet())
        assert xray.payload > 4096  # the state really is in there
        assert 0.95 <= xray.accounted_fraction <= 1.05
        # What the X-ray cannot pin on an attribute it reports as
        # structure, so the full decomposition covers the payload.
        assert xray.accounted + xray.structure >= xray.payload

    def test_heaviest_attribute_is_the_heavy_state(self):
        xray = explain_pickle(_heavy_naplet())
        name, nbytes = xray.top(1)[0]
        assert name == "state"
        assert nbytes > 4096
        # top() ranks strictly by size
        sizes = [n for _name, n in xray.top(len(xray.attributes))]
        assert sizes == sorted(sizes, reverse=True)

    def test_envelope_decomposition_adds_up(self):
        xray = explain_pickle(_heavy_naplet())
        assert xray.total == xray.payload + xray.code + xray.envelope
        assert xray.code == 0  # lazy default: no bundles in the envelope

    def test_friendly_names_replace_private_slots(self):
        xray = explain_pickle(CollectorNaplet("plain"))
        assert "itinerary" in xray.attributes
        assert "trace_context" in xray.attributes
        assert "_itinerary" not in xray.attributes

    def test_eager_serializer_accounts_code_bundles(self):
        registry = CodeBaseRegistry()
        codebase = registry.create("codebase://test/payload")
        codebase.add_class(StampedPayload)
        eager = NapletSerializer(registry, eager_code=True)
        xray = explain_pickle(StampedPayload(7), serializer=eager)
        assert xray.code > 0
        assert xray.total == xray.payload + xray.code + xray.envelope

    def test_unpicklable_naplet_fails_like_the_real_transfer(self):
        from repro.core.errors import SerializationError

        agent = CollectorNaplet("broken")
        agent.state.set("socket", lambda: None)  # lambdas don't pickle
        with pytest.raises(SerializationError):
            explain_pickle(agent)

    def test_object_without_getstate_uses_its_dict(self):
        xray = explain_pickle(Bag())
        assert xray.attributes["big"] > xray.attributes["small"]
        assert 0.95 <= xray.accounted_fraction <= 1.05

    def test_describe_is_json_and_render_lists_rows(self):
        xray = explain_pickle(_heavy_naplet())
        described = json.loads(json.dumps(xray.describe()))
        assert described["payload_bytes"] == xray.payload
        assert described["attributes"]["state"] == xray.attributes["state"]
        text = xray.render()
        assert "state" in text
        assert "(structure)" in text
        assert "(total)" in text
