"""BENCH_*.json schema v2: provenance, history, flattening, and the differ."""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import (
    SCHEMA_VERSION,
    append_history,
    bench_snapshot,
    diff_bench,
    flatten_metrics,
    is_timing_metric,
    load_bench,
    metric_direction,
    write_bench,
)

pytestmark = pytest.mark.perf

_DATA = {
    "baseline": {"hop_latency_p50_ms": 10.0, "rt_frames_per_hop": 3.0},
    "fastpath": {"hop_latency_p50_ms": 4.0, "rt_frames_per_hop": 1.0},
    "speedup_messages_per_sec": 2.5,
}


class TestSnapshot:
    def test_snapshot_carries_full_provenance(self):
        snap = bench_snapshot("e8", _DATA)
        assert snap["schema_version"] == SCHEMA_VERSION
        assert snap["experiment"] == "e8"
        assert snap["timestamp"].endswith("Z")
        assert set(snap["machine"]) >= {"hostname", "platform", "python"}
        # This repo is a git checkout, so the SHA resolves.
        assert snap["git_sha"] and len(snap["git_sha"]) == 40
        # The benchmark's own keys survive untouched.
        assert snap["baseline"]["rt_frames_per_hop"] == 3.0

    def test_write_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        written = write_bench(path, "e8", _DATA)
        loaded = load_bench(path)
        assert loaded == json.loads(json.dumps(written))

    def test_v1_snapshot_upgraded_in_memory(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps({"experiment": "e8", "speedup": 2.0}))
        loaded = load_bench(path)
        assert loaded["schema_version"] == 1
        assert loaded["git_sha"] is None
        assert loaded["speedup"] == 2.0

    def test_history_appends_never_clobbers(self, tmp_path):
        history = tmp_path / "hist"
        snap = bench_snapshot("e8", _DATA)
        first = append_history(history, snap)
        second = append_history(history, snap)  # same stamp + sha
        assert first != second
        assert len(list(history.glob("*.json"))) == 2
        assert json.loads(first.read_text())["experiment"] == "e8"

    def test_write_bench_with_history_dir(self, tmp_path):
        history = tmp_path / "hist"
        write_bench(tmp_path / "BENCH_x.json", "e8", _DATA, history_dir=history)
        assert len(list(history.glob("*.json"))) == 1


class TestFlattenAndDirections:
    def test_flatten_walks_nested_numeric_leaves(self):
        flat = flatten_metrics(bench_snapshot("e8", _DATA))
        assert flat["baseline.hop_latency_p50_ms"] == 10.0
        assert flat["speedup_messages_per_sec"] == 2.5
        # Metadata (timestamp, machine.cpu_count, ...) never leaks in.
        assert not any(key.startswith("machine") for key in flat)

    def test_flatten_skips_bools(self):
        flat = flatten_metrics({"schema_version": 2, "run": {"pooled": True, "n": 3}})
        assert flat == {"run.n": 3.0}

    @pytest.mark.parametrize(
        ("key", "direction"),
        [
            ("baseline.hop_latency_p50_ms", "lower"),
            ("fastpath.connections_per_hop", "lower"),
            ("overhead_fraction", "lower"),
            ("speedup_messages_per_sec", "higher"),
            ("messages_per_sec", "higher"),
            ("hops", "neutral"),
            ("rt_frames_per_hop", "lower"),
            ("delta_on.bytes_per_hop", "lower"),
            ("delta_on.hops_per_sec", "higher"),
        ],
    )
    def test_metric_direction(self, key, direction):
        assert metric_direction(key) == direction

    def test_timing_metrics_identified_for_structural_mode(self):
        assert is_timing_metric("hop_latency_p50_ms")
        assert is_timing_metric("messages_per_sec")
        assert is_timing_metric("hops_per_sec")
        assert not is_timing_metric("rt_frames_per_hop")
        assert not is_timing_metric("connections_opened_for_hops")

    def test_bytes_per_hop_is_structural_despite_reading_like_a_rate(self):
        # Wire bytes per migration hop are a protocol fact, not machine
        # speed: CI's structural gate must compare them (lower is better).
        assert not is_timing_metric("bytes_per_hop")
        assert metric_direction("delta_full.bytes_per_hop") == "lower"


class TestDiff:
    def _pair(self, old_ms: float, new_ms: float):
        return (
            bench_snapshot("e8", {"hop_latency_p50_ms": old_ms, "hops": 12}),
            bench_snapshot("e8", {"hop_latency_p50_ms": new_ms, "hops": 12}),
        )

    def test_unchanged_rerun_passes(self):
        old, new = self._pair(10.0, 10.4)  # within tolerance
        diff = diff_bench(old, new, tolerance=0.2)
        assert diff.ok
        assert not diff.regressions

    def test_30pct_slowdown_flags_a_regression(self):
        """ISSUE acceptance: a seeded ~30% slowdown must be flagged."""
        old, new = self._pair(10.0, 13.0)
        diff = diff_bench(old, new, tolerance=0.2)
        assert not diff.ok
        assert [e.key for e in diff.regressions] == ["hop_latency_p50_ms"]
        assert diff.regressions[0].change == pytest.approx(0.3)
        assert "REGRESSION" in diff.render()

    def test_higher_is_better_regresses_downward(self):
        old = bench_snapshot("e8", {"messages_per_sec": 100.0})
        new = bench_snapshot("e8", {"messages_per_sec": 60.0})
        diff = diff_bench(old, new, tolerance=0.2)
        assert not diff.ok
        improvement = diff_bench(new, old, tolerance=0.2)
        assert improvement.ok and improvement.improvements

    def test_neutral_metrics_inform_but_never_regress(self):
        old = bench_snapshot("e8", {"hops": 12})
        new = bench_snapshot("e8", {"hops": 24})
        diff = diff_bench(old, new, tolerance=0.2)
        assert diff.ok
        assert diff.entries[0].verdict == "info"

    def test_new_and_removed_metrics_reported(self):
        old = bench_snapshot("e8", {"a_ms": 1.0})
        new = bench_snapshot("e8", {"b_ms": 2.0})
        diff = diff_bench(old, new)
        verdicts = {e.key: e.verdict for e in diff.entries}
        assert verdicts == {"a_ms": "removed", "b_ms": "new"}
        assert diff.ok

    def test_structural_only_ignores_timing_noise(self):
        old = bench_snapshot(
            "e8", {"hop_latency_p50_ms": 10.0, "rt_frames_per_hop": 1.0}
        )
        new = bench_snapshot(
            "e8", {"hop_latency_p50_ms": 30.0, "rt_frames_per_hop": 3.0}
        )
        timing = diff_bench(old, new, tolerance=0.2)
        assert {e.key for e in timing.regressions} == {
            "hop_latency_p50_ms",
            "rt_frames_per_hop",
        }
        structural = diff_bench(old, new, tolerance=0.2, structural_only=True)
        assert [e.key for e in structural.regressions] == ["rt_frames_per_hop"]

    def test_structural_gate_catches_bytes_per_hop_growth(self):
        old = bench_snapshot(
            "e8", {"delta_on": {"bytes_per_hop": 100_000.0, "hops_per_sec": 50.0}}
        )
        new = bench_snapshot(
            "e8", {"delta_on": {"bytes_per_hop": 180_000.0, "hops_per_sec": 12.0}}
        )
        structural = diff_bench(old, new, tolerance=0.2, structural_only=True)
        # hops_per_sec noise is excluded; the byte growth is not.
        assert [e.key for e in structural.regressions] == ["delta_on.bytes_per_hop"]

    def test_zero_baseline_does_not_divide(self):
        old = bench_snapshot("e8", {"dials": 0.0})
        new = bench_snapshot("e8", {"dials": 5.0})
        diff = diff_bench(old, new, tolerance=0.2)
        assert not diff.ok  # 0 -> 5 dials is a 100% regression
