"""Topology generators: shapes and link attributes."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.simnet.topology import (
    full_mesh,
    line,
    random_geometric,
    ring,
    star,
    tree,
)


class TestStar:
    def test_shape(self):
        graph = star(5)
        assert graph.number_of_nodes() == 6
        assert graph.degree["station"] == 5
        for node in graph.nodes:
            if node != "station":
                assert graph.degree[node] == 1

    def test_custom_center_and_prefix(self):
        graph = star(3, center="hub", prefix="leaf")
        assert "hub" in graph.nodes
        assert "leaf00" in graph.nodes

    def test_link_attributes(self):
        graph = star(2, latency=0.01, bandwidth=1e6)
        for _u, _v, data in graph.edges(data=True):
            assert data["latency"] == 0.01
            assert data["bandwidth"] == 1e6


class TestRingLine:
    def test_ring_is_cycle(self):
        graph = ring(6)
        assert graph.number_of_edges() == 6
        assert all(graph.degree[n] == 2 for n in graph.nodes)

    def test_line_is_path(self):
        graph = line(5)
        assert graph.number_of_edges() == 4
        endpoints = [n for n in graph.nodes if graph.degree[n] == 1]
        assert len(endpoints) == 2

    def test_single_host_line(self):
        graph = line(1)
        assert graph.number_of_nodes() == 1
        assert graph.number_of_edges() == 0


class TestTree:
    def test_balanced_tree_counts(self):
        graph = tree(branching=2, depth=3)
        # 1 + 2 + 4 + 8
        assert graph.number_of_nodes() == 15
        assert nx.is_tree(graph)

    def test_names_encode_paths(self):
        graph = tree(branching=2, depth=2)
        assert "root-0-1" in graph.nodes


class TestMesh:
    def test_complete(self):
        graph = full_mesh(4)
        assert graph.number_of_edges() == 6


class TestRandomGeometric:
    def test_connected_and_deterministic(self):
        g1 = random_geometric(20, seed=3)
        g2 = random_geometric(20, seed=3)
        assert nx.is_connected(g1)
        assert set(g1.edges) == set(g2.edges)

    def test_different_seeds_differ(self):
        g1 = random_geometric(30, seed=1)
        g2 = random_geometric(30, seed=2)
        assert set(g1.edges) != set(g2.edges)


class TestNaming:
    @pytest.mark.parametrize("factory", [ring, line, full_mesh])
    def test_width_grows_with_count(self, factory):
        graph = factory(150)
        assert "host000" in graph.nodes or "host00" in graph.nodes
        assert graph.number_of_nodes() == 150
