"""VirtualNetwork and GraphLatency."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.errors import NapletError
from repro.simnet.network import GraphLatency, VirtualNetwork
from repro.simnet.topology import line, star


class TestGraphLatency:
    def test_adjacent_hosts_single_hop(self):
        network = VirtualNetwork(line(3, prefix="h", latency=0.01))
        assert network.latency.delay("h00", "h01", 0) == pytest.approx(0.01)

    def test_multi_hop_sums_latencies(self):
        network = VirtualNetwork(line(4, prefix="h", latency=0.01))
        assert network.latency.delay("h00", "h03", 0) == pytest.approx(0.03)

    def test_bottleneck_bandwidth(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", latency=0.0, bandwidth=1000.0)
        graph.add_edge("b", "c", latency=0.0, bandwidth=100.0)
        model = GraphLatency(graph)
        # 100 bytes over a 100 B/s bottleneck
        assert model.delay("a", "c", 100) == pytest.approx(1.0)

    def test_loopback_free(self):
        network = VirtualNetwork(line(2, latency=5.0))
        assert network.latency.delay("host00", "host00", 10**6) == 0.0

    def test_unknown_hosts_charge_nothing(self):
        model = GraphLatency(line(2, latency=0.5))
        assert model.delay("ghost1", "ghost2", 100) == 0.0

    def test_path_cache_consistency(self):
        model = GraphLatency(line(3, prefix="h", latency=0.01))
        first = model.delay("h00", "h02", 0)
        second = model.delay("h00", "h02", 0)
        assert first == second == pytest.approx(0.02)


class TestVirtualNetwork:
    def test_hosts_from_graph_nodes(self):
        network = VirtualNetwork(star(3))
        assert set(network.hostnames()) == {"station", "dev00", "dev01", "dev02"}
        assert network.host("dev00").urn == "naplet://dev00"
        assert "dev00" in network
        assert "ghost" not in network

    def test_host_accepts_urn(self):
        network = VirtualNetwork(star(1))
        assert network.host("naplet://station").hostname == "station"

    def test_unknown_host_raises(self):
        with pytest.raises(NapletError):
            VirtualNetwork(star(1)).host("ghost")

    def test_add_host_grows_topology(self):
        network = VirtualNetwork(line(2, prefix="h", latency=0.01))
        network.add_host("h99", connect_to="h01", latency=0.02)
        assert "h99" in network
        assert network.latency.delay("h00", "h99", 0) == pytest.approx(0.03)

    def test_add_duplicate_host_rejected(self):
        network = VirtualNetwork(line(2, prefix="h"))
        with pytest.raises(NapletError):
            network.add_host("h00")

    def test_one_server_per_host_invariant(self):
        network = VirtualNetwork(line(1, prefix="h"))
        host = network.host("h00")
        host.install_server(object())
        with pytest.raises(NapletError):
            host.install_server(object())
        host.remove_server()
        host.install_server(object())  # allowed again

    def test_attachments(self):
        network = VirtualNetwork(line(1, prefix="h"))
        host = network.host("h00")
        host.attach("device", "dev-object")
        assert host.attachment("device") == "dev-object"
        assert host.attachment("absent", 1) == 1

    def test_fault_injection_delegates(self):
        network = VirtualNetwork(line(2, prefix="h"))
        network.transport.register("naplet://h01", lambda f: b"ok")
        from repro.core.errors import NapletCommunicationError
        from repro.transport.base import Frame

        network.fail_link("h00", "h01")
        with pytest.raises(NapletCommunicationError):
            network.transport.send(
                Frame(kind="ping", source="naplet://h00", dest="naplet://h01")
            )
        network.heal_link("h00", "h01")
        network.partition_host("h01")
        with pytest.raises(NapletCommunicationError):
            network.transport.send(
                Frame(kind="ping", source="naplet://h00", dest="naplet://h01")
            )
        network.heal_host("h01")

    def test_shared_fixtures_exist(self):
        network = VirtualNetwork(star(1))
        assert network.authority is not None
        assert network.code_registry is not None
        assert network.meter is network.transport.meter
        assert network.clock is network.transport.clock
