"""TcpTransport edge cases: oversized frames, dead peers, timeouts."""

from __future__ import annotations

import pickle
import socket
import struct
import time

import pytest

from repro.core.errors import NapletCommunicationError
from repro.transport.base import Frame, FrameKind
from repro.transport.tcp import TcpTransport, _MAX_FRAME


@pytest.fixture
def transport():
    t = TcpTransport(connect_timeout=1.0)
    yield t
    t.close()


class TestEdges:
    @pytest.mark.slow  # the stalled handler holds its thread for 2s
    def test_request_timeout_when_handler_stalls(self, transport):
        def slow(frame):
            time.sleep(2.0)
            return pickle.dumps(b"late")

        transport.register("naplet://slow", slow)
        frame = Frame(kind=FrameKind.PING, source="a", dest="naplet://slow")
        with pytest.raises(NapletCommunicationError, match="timed out"):
            transport.request(frame, timeout=0.2)

    def test_handler_exception_drops_connection(self, transport):
        def broken(frame):
            raise OSError("handler exploded")

        transport.register("naplet://broken", broken)
        frame = Frame(kind=FrameKind.PING, source="a", dest="naplet://broken")
        with pytest.raises(NapletCommunicationError):
            transport.request(frame, timeout=1.0)

    def test_garbage_frame_is_contained(self, transport):
        """A raw client sending an oversized length prefix gets dropped;
        the endpoint keeps serving valid traffic."""
        transport.register("naplet://sturdy", lambda f: pickle.dumps(b"ok"))
        port = transport.port_of("naplet://sturdy")
        raw = socket.create_connection(("127.0.0.1", port), timeout=1)
        raw.sendall(struct.pack("!I", _MAX_FRAME + 1) + b"xxxx")
        raw.close()
        frame = Frame(kind=FrameKind.PING, source="a", dest="naplet://sturdy")
        assert pickle.loads(transport.request(frame, timeout=2)) == b"ok"

    def test_half_frame_then_close_is_contained(self, transport):
        transport.register("naplet://sturdy2", lambda f: pickle.dumps(b"ok"))
        port = transport.port_of("naplet://sturdy2")
        raw = socket.create_connection(("127.0.0.1", port), timeout=1)
        raw.sendall(struct.pack("!I", 1000) + b"only-a-little")
        raw.close()
        frame = Frame(kind=FrameKind.PING, source="a", dest="naplet://sturdy2")
        assert pickle.loads(transport.request(frame, timeout=2)) == b"ok"

    def test_close_is_idempotent(self, transport):
        transport.register("naplet://x", lambda f: None)
        transport.close()
        transport.close()
