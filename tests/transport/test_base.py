"""Frames, URNs, and the Transport registration contract."""

from __future__ import annotations

import pytest

from repro.core.errors import NapletCommunicationError
from repro.transport.base import Frame, FrameKind, host_of, urn_of
from repro.transport.inmemory import InMemoryTransport


class TestUrns:
    def test_urn_of_plain_hostname(self):
        assert urn_of("hostA") == "naplet://hostA"

    def test_urn_of_idempotent(self):
        assert urn_of("naplet://hostA") == "naplet://hostA"

    def test_host_of_strips_any_scheme(self):
        assert host_of("naplet://hostA") == "hostA"
        assert host_of("snmp://dev01") == "dev01"
        assert host_of("bare") == "bare"


class TestFrame:
    def test_size_accounts_payload_and_headers(self):
        frame = Frame(
            kind=FrameKind.MESSAGE,
            source="naplet://a",
            dest="naplet://b",
            payload=b"x" * 100,
            headers={"target": "someid"},
        )
        bare = Frame(kind=FrameKind.MESSAGE, source="naplet://a", dest="naplet://b")
        assert frame.size > 100
        assert frame.size > bare.size

    def test_default_empty_payload(self):
        frame = Frame(kind=FrameKind.PING, source="a", dest="b")
        assert frame.payload == b""
        assert frame.headers == {}


class TestRegistration:
    def test_register_and_endpoint_listing(self):
        transport = InMemoryTransport()
        transport.register("naplet://a", lambda f: None)
        assert transport.is_registered("naplet://a")
        assert transport.endpoints() == ["naplet://a"]

    def test_duplicate_registration_rejected(self):
        transport = InMemoryTransport()
        transport.register("naplet://a", lambda f: None)
        with pytest.raises(NapletCommunicationError):
            transport.register("naplet://a", lambda f: None)

    def test_unregister_then_unreachable(self):
        transport = InMemoryTransport()
        transport.register("naplet://a", lambda f: b"ok")
        transport.unregister("naplet://a")
        with pytest.raises(NapletCommunicationError):
            transport.send(Frame(kind=FrameKind.PING, source="naplet://x", dest="naplet://a"))

    def test_unregister_unknown_is_idempotent(self):
        InMemoryTransport().unregister("naplet://ghost")
