"""InMemoryTransport: delivery, metering, clock accounting, fault injection."""

from __future__ import annotations

import pickle

import pytest

from repro.core.errors import NapletCommunicationError
from repro.transport.base import Frame, FrameKind
from repro.transport.clock import SimClock
from repro.transport.inmemory import InMemoryTransport
from repro.transport.latency import UniformLatency
from repro.transport.traffic import TrafficMeter


def _frame(src="naplet://a", dst="naplet://b", payload=b"hello", kind=FrameKind.MESSAGE):
    return Frame(kind=kind, source=src, dest=dst, payload=payload)


@pytest.fixture
def transport():
    t = InMemoryTransport(
        latency=UniformLatency(latency=0.01),
        clock=SimClock(scale=0.0),
        meter=TrafficMeter(),
    )
    received = []
    t.register("naplet://b", lambda f: pickle.dumps(("echo", len(f.payload))))
    t.register("naplet://sink", lambda f: received.append(f) or None)
    t.received = received  # type: ignore[attr-defined]
    return t


class TestDelivery:
    def test_send_invokes_handler(self, transport):
        transport.send(_frame(dst="naplet://sink"))
        assert len(transport.received) == 1
        assert transport.received[0].payload == b"hello"

    def test_request_returns_reply(self, transport):
        reply = transport.request(_frame())
        assert pickle.loads(reply) == ("echo", 5)

    def test_request_without_reply_raises(self, transport):
        with pytest.raises(NapletCommunicationError):
            transport.request(_frame(dst="naplet://sink"))

    def test_unknown_destination_raises(self, transport):
        with pytest.raises(NapletCommunicationError):
            transport.send(_frame(dst="naplet://nowhere"))


class TestMetering:
    def test_send_metered_once(self, transport):
        transport.send(_frame(dst="naplet://sink"))
        assert transport.meter.total_frames == 1
        assert transport.meter.link("a", "sink").bytes > 0

    def test_request_meters_both_directions(self, transport):
        transport.request(_frame())
        assert transport.meter.total_frames == 2
        assert transport.meter.link("a", "b").frames == 1
        assert transport.meter.link("b", "a").frames == 1

    def test_clock_advances_by_model_delay(self, transport):
        transport.send(_frame(dst="naplet://sink"))
        assert transport.clock.virtual_time == pytest.approx(0.01)
        transport.request(_frame())
        # +0.01 out, +0.01 reply
        assert transport.clock.virtual_time == pytest.approx(0.03)

    def test_kind_stats(self, transport):
        transport.send(_frame(dst="naplet://sink"))
        stats = transport.meter.kind_stats(FrameKind.MESSAGE)
        assert stats.frames == 1


class TestFaults:
    def test_failed_link_blocks_both_ways(self, transport):
        transport.fail_link("a", "b")
        with pytest.raises(NapletCommunicationError):
            transport.send(_frame())
        with pytest.raises(NapletCommunicationError):
            transport.send(_frame(src="naplet://b", dst="naplet://a"))

    def test_asymmetric_failure(self, transport):
        transport.fail_link("a", "b", symmetric=False)
        with pytest.raises(NapletCommunicationError):
            transport.send(_frame())
        transport.register("naplet://a", lambda f: None)
        transport.send(_frame(src="naplet://b", dst="naplet://a"))  # reverse ok

    def test_heal_link(self, transport):
        transport.fail_link("a", "b")
        transport.heal_link("a", "b")
        transport.request(_frame())  # works again

    def test_partition_host(self, transport):
        transport.partition_host("b")
        with pytest.raises(NapletCommunicationError):
            transport.send(_frame())
        transport.heal_host("b")
        transport.request(_frame())

    def test_failures_not_metered(self, transport):
        transport.fail_link("a", "b")
        with pytest.raises(NapletCommunicationError):
            transport.send(_frame())
        assert transport.meter.total_frames == 0


class TestClockScale:
    def test_scaled_sleep_consumes_wall_time(self):
        import time

        clock = SimClock(scale=0.1)
        start = time.perf_counter()
        clock.advance(0.2)  # should sleep ~20ms
        elapsed = time.perf_counter() - start
        assert elapsed >= 0.015
        assert clock.virtual_time == pytest.approx(0.2)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            SimClock(scale=-0.1)

    def test_reset(self):
        clock = SimClock()
        clock.advance(5)
        clock.reset()
        assert clock.virtual_time == 0.0


class TestMeterQueries:
    def test_host_bytes_directions(self):
        meter = TrafficMeter()
        meter.record("a", "b", "k", 100, 0.0)
        meter.record("b", "a", "k", 40, 0.0)
        egress, ingress = meter.host_bytes("a")
        assert (egress, ingress) == (100, 40)
        assert meter.host_total("a") == 140

    def test_links_snapshot_is_copy(self):
        meter = TrafficMeter()
        meter.record("a", "b", "k", 10, 0.5)
        snapshot = meter.links()
        snapshot[("a", "b")].bytes = 9999
        assert meter.link("a", "b").bytes == 10

    def test_reset(self):
        meter = TrafficMeter()
        meter.record("a", "b", "k", 10, 0.0)
        meter.reset()
        assert meter.total_bytes == 0
        assert meter.total_virtual_seconds == 0.0


class TestLivePeers:
    """live_peers: the observatory's no-dial guarantee (DESIGN.md §6.8)."""

    def test_no_traffic_means_no_live_peers(self, transport):
        assert transport.live_peers("naplet://a") == []

    def test_links_are_directed_and_appear_after_first_send(self, transport):
        transport.send(_frame("naplet://a", "naplet://b"))
        assert transport.live_peers("naplet://a") == ["naplet://b"]
        # The reverse direction was never used, so b sees no one.
        assert transport.live_peers("naplet://b") == []

    def test_self_is_never_a_peer(self, transport):
        transport.send(_frame("naplet://a", "naplet://b"))
        assert "naplet://a" not in transport.live_peers("naplet://a")
