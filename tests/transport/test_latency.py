"""Latency models: uniform, per-link, zero."""

from __future__ import annotations

import pytest

from repro.transport.latency import PerLinkLatency, UniformLatency, ZeroLatency


class TestZero:
    def test_always_zero(self):
        model = ZeroLatency()
        assert model.delay("a", "b", 10_000) == 0.0


class TestUniform:
    def test_latency_only(self):
        model = UniformLatency(latency=0.01)
        assert model.delay("a", "b", 1_000_000) == pytest.approx(0.01)

    def test_bandwidth_adds_transfer_time(self):
        model = UniformLatency(latency=0.01, bandwidth=1_000_000)
        assert model.delay("a", "b", 500_000) == pytest.approx(0.01 + 0.5)

    def test_loopback_free(self):
        model = UniformLatency(latency=0.5)
        assert model.delay("a", "a", 1000) == 0.0

    def test_zero_bandwidth_means_infinite(self):
        model = UniformLatency(latency=0.0, bandwidth=0.0)
        assert model.delay("a", "b", 10**9) == 0.0


class TestPerLink:
    def test_defaults_apply_to_unknown_links(self):
        model = PerLinkLatency(default_latency=0.002)
        assert model.delay("a", "b", 100) == pytest.approx(0.002)

    def test_override_symmetric(self):
        model = PerLinkLatency(default_latency=0.002)
        model.set_link("a", "b", latency=0.1)
        assert model.delay("a", "b", 1) == pytest.approx(0.1)
        assert model.delay("b", "a", 1) == pytest.approx(0.1)

    def test_override_asymmetric(self):
        model = PerLinkLatency()
        model.set_link("a", "b", latency=0.1, symmetric=False)
        assert model.delay("a", "b", 1) == pytest.approx(0.1)
        assert model.delay("b", "a", 1) == 0.0

    def test_link_bandwidth(self):
        model = PerLinkLatency()
        model.set_link("a", "b", latency=0.0, bandwidth=1000)
        assert model.delay("a", "b", 500) == pytest.approx(0.5)

    def test_loopback_free(self):
        model = PerLinkLatency(default_latency=9.0)
        assert model.delay("x", "x", 10) == 0.0
