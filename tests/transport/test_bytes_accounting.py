"""Per-endpoint bytes_sent/bytes_received counters on both transports.

The ISSUE's cross-check: the transport-level counters must agree with the
simnet TrafficMeter's per-host totals within 1% (they agree exactly — both
account the same frame sizes), and on real TCP the bytes a client sends
must equal the bytes the server receives.
"""

from __future__ import annotations

import pickle

import pytest

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import SpaceAdmin
from repro.simnet import line
from repro.transport.base import Frame, FrameKind
from repro.transport.inmemory import InMemoryTransport
from repro.transport.tcp import TcpTransport
from tests.conftest import CollectorNaplet


def _within_1pct(a: int, b: int) -> bool:
    return abs(a - b) <= 0.01 * max(a, b, 1)


class TestInMemoryCrossCheck:
    def test_counters_mirror_the_traffic_meter(self):
        transport = InMemoryTransport()
        transport.register("naplet://a", lambda f: None)
        transport.register("naplet://b", lambda f: pickle.dumps(b"reply"))
        transport.send(
            Frame(kind=FrameKind.PING, source="naplet://b", dest="naplet://a", payload=b"x" * 100)
        )
        for _ in range(5):
            transport.request(
                Frame(
                    kind=FrameKind.MESSAGE,
                    source="naplet://a",
                    dest="naplet://b",
                    payload=b"y" * 300,
                )
            )
        for host in ("a", "b"):
            egress, ingress = transport.endpoint_bytes(host)
            meter_egress, meter_ingress = transport.meter.host_bytes(host)
            assert _within_1pct(egress, meter_egress)
            assert _within_1pct(ingress, meter_ingress)
            assert (egress, ingress) == (meter_egress, meter_ingress)

    def test_live_space_cross_check(self, small_line):
        """ISSUE acceptance: after a real tour, per-server counter sums
        match the TrafficMeter within 1% on every host."""
        network, servers = small_line
        listener = repro.NapletListener()
        agent = CollectorNaplet("cross-check")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(
                    ["s01", "s02", "s03"], post_action=ResultReport("visited")
                )
            )
        )
        servers["s00"].launch(agent, owner="perf", listener=listener)
        listener.next_report(timeout=15)
        assert SpaceAdmin(servers).wait_space_idle()

        meter = network.transport.meter
        checked = 0
        for hostname in servers:
            egress, ingress = servers[hostname].transport.endpoint_bytes(hostname)
            meter_egress, meter_ingress = meter.host_bytes(hostname)
            assert _within_1pct(egress, meter_egress), hostname
            assert _within_1pct(ingress, meter_ingress), hostname
            checked += 1
        assert checked == 4
        # Conservation inside one space: every byte sent arrived somewhere.
        transport = network.transport
        total_sent = sum(
            transport.endpoint_bytes(h)[0] for h in servers
        )
        total_received = sum(
            transport.endpoint_bytes(h)[1] for h in servers
        )
        assert total_sent == total_received == meter.total_bytes

    def test_unknown_endpoint_reads_zero(self):
        transport = InMemoryTransport()
        assert transport.endpoint_bytes("naplet://ghost") == (0, 0)


class TestTcpSymmetry:
    @pytest.fixture(params=[True, False], ids=["pooled", "unpooled"])
    def transport(self, request):
        t = TcpTransport(pooled=request.param)
        yield t
        t.close()

    def test_client_sent_equals_server_received(self, transport):
        """Both sides account the same pickled blobs, so egress at the
        requester equals ingress at the responder — byte for byte."""
        transport.register("naplet://server", lambda f: pickle.dumps(f.payload))
        transport.register("naplet://client", lambda f: None)
        for i in range(4):
            reply = transport.request(
                Frame(
                    kind=FrameKind.MESSAGE,
                    source="naplet://client",
                    dest="naplet://server",
                    payload=bytes(50 * (i + 1)),
                ),
                timeout=5,
            )
            assert pickle.loads(reply) == bytes(50 * (i + 1))

        client_egress, client_ingress = transport.endpoint_bytes("client")
        assert client_egress > 0 and client_ingress > 0
        # The server accounts ingress before it replies, so by the time the
        # client holds the reply the request bytes are fully booked...
        assert transport.endpoint_bytes("server")[1] == client_egress
        # ...while its egress is booked on the serving thread just after
        # the write, so it may trail the client's read by a beat.
        from repro.util.concurrency import wait_until

        assert wait_until(
            lambda: transport.endpoint_bytes("server")[0] == client_ingress,
            timeout=5,
        )

    def test_one_way_send_accounts_egress_and_ingress(self, transport):
        import threading

        seen = threading.Event()
        transport.register("naplet://sink", lambda f: seen.set())
        transport.register("naplet://src", lambda f: None)
        transport.send(
            Frame(
                kind=FrameKind.PING,
                source="naplet://src",
                dest="naplet://sink",
                payload=b"p" * 128,
            )
        )
        assert seen.wait(5)
        egress, _ = transport.endpoint_bytes("src")
        assert egress > 128  # blob = pickled frame, bigger than the payload
        # The sink's read loop has accounted the same blob once drained.
        from repro.util.concurrency import wait_until

        assert wait_until(
            lambda: transport.endpoint_bytes("sink")[1] == egress, timeout=5
        )
