"""Delta shipping: base caches, v2 envelopes, and the fallback contract."""

from __future__ import annotations

import pytest

from repro.codeshipping.codebase import CodeBaseRegistry, CodeCache
from repro.codeshipping.shipping import shipping_stamp_of
from repro.core.errors import (
    DeltaBaseMissingError,
    SerializationError,
    ShippedCodeMissingError,
)
from repro.transport.delta import (
    DeltaCache,
    FieldEntry,
    ImageRecord,
    content_hash,
    image_hash,
)
from repro.transport.serializer import NapletSerializer
from tests.core.test_naplet import _identified
from tests.transport.shipped_fixture import StampedPayload


def _record(img: str, **fields: bytes) -> ImageRecord:
    entries = {
        name: FieldEntry(data=data, hash=content_hash(data), value=data)
        for name, data in fields.items()
    }
    return ImageRecord(hash=img, cls_ref=("pickle", b""), fields=entries)


class TestHashes:
    def test_content_hash_is_stable_across_buffer_types(self):
        data = b"payload-bytes"
        assert content_hash(data) == content_hash(memoryview(data))

    def test_image_hash_is_order_independent(self):
        hashes = {"a": "1" * 32, "b": "2" * 32}
        assert image_hash(hashes) == image_hash(dict(reversed(hashes.items())))

    def test_image_hash_sensitive_to_name_and_value(self):
        base = image_hash({"a": "1" * 32})
        assert image_hash({"b": "1" * 32}) != base
        assert image_hash({"a": "2" * 32}) != base


class TestDeltaCache:
    def test_get_requires_matching_hash(self):
        cache = DeltaCache()
        cache.put("n1", _record("H1", f=b"x"))
        assert cache.get("n1", "H1") is not None
        assert cache.get("n1", "H2") is None
        assert cache.get("n1") is not None  # hash optional

    def test_lru_eviction_at_capacity(self):
        cache = DeltaCache(capacity=2)
        cache.put("n1", _record("H1"))
        cache.put("n2", _record("H2"))
        cache.get("n1")  # promote n1; n2 becomes LRU
        cache.put("n3", _record("H3"))
        assert "n1" in cache and "n3" in cache and "n2" not in cache
        assert cache.stats()["evictions"] == 1

    def test_peek_is_a_pure_probe(self):
        cache = DeltaCache(capacity=2)
        cache.put("n1", _record("H1"))
        cache.put("n2", _record("H2"))
        before = cache.stats()
        assert cache.peek("n1").hash == "H1"
        assert cache.peek("missing") is None
        assert cache.stats() == before  # no hit/miss movement
        cache.put("n3", _record("H3"))
        assert "n1" not in cache  # peek did not promote n1 over n2

    def test_drop_and_clear(self):
        cache = DeltaCache()
        cache.put("n1", _record("H1"))
        cache.drop("n1")
        assert len(cache) == 0
        cache.put("n2", _record("H2"))
        cache.clear()
        assert "n2" not in cache

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DeltaCache(capacity=0)


class TestV2Envelope:
    def _pair(self):
        return NapletSerializer(), NapletSerializer()

    def test_first_dump_is_full_v2(self):
        sender, receiver = self._pair()
        agent = _identified("full")
        agent.state.set("k", 1)
        data, buffers, cost = sender.dumps_with_cost(agent)
        assert not cost.delta and cost.saved_bytes == 0
        copy, info = receiver.loads_with_info(data, buffers=buffers or None)
        assert info["v"] == 2 and info["mode"] == "full"
        assert isinstance(info["hash"], str)
        assert copy.state.get("k") == 1

    def test_acked_base_turns_repeat_hop_into_delta(self):
        sender, receiver = self._pair()
        agent = _identified("delta")
        agent.state.set("k", 1)
        agent.cargo = b"\xee" * 50_000
        data, buffers, full_cost = sender.dumps_with_cost(agent)
        _, info = receiver.loads_with_info(data, buffers=buffers or None)

        agent.state.set("k", 2)  # tiny mutation; cargo untouched
        data2, buffers2, cost = sender.dumps_with_cost(agent, base_hint=info["hash"])
        assert cost.delta
        assert cost.saved_bytes > 0
        assert cost.payload_bytes < full_cost.payload_bytes / 10
        copy, info2 = receiver.loads_with_info(data2, buffers=buffers2 or None)
        assert info2["mode"] == "delta"
        assert copy.state.get("k") == 2
        assert copy.cargo == b"\xee" * 50_000

    def test_unacked_base_ships_full(self):
        sender, receiver = self._pair()
        agent = _identified("no-ack")
        sender.dumps_with_cost(agent)
        # base_hint None (destination never acked): full image again.
        data, buffers, cost = sender.dumps_with_cost(agent)
        assert not cost.delta
        copy, info = receiver.loads_with_info(data, buffers=buffers or None)
        assert info["mode"] == "full"

    def test_deleted_field_travels_in_removed_list(self):
        sender, receiver = self._pair()
        agent = _identified("shrink")
        agent.extra = "short-lived"
        data, buffers, _ = sender.dumps_with_cost(agent)
        _, info = receiver.loads_with_info(data, buffers=buffers or None)

        del agent.extra
        data2, buffers2, cost = sender.dumps_with_cost(agent, base_hint=info["hash"])
        assert cost.delta
        copy, _ = receiver.loads_with_info(data2, buffers=buffers2 or None)
        assert not hasattr(copy, "extra")

    def test_evicted_base_raises_delta_base_missing(self):
        sender, receiver = self._pair()
        agent = _identified("evicted")
        data, buffers, _ = sender.dumps_with_cost(agent)
        _, info = receiver.loads_with_info(data, buffers=buffers or None)

        receiver.delta_cache.clear()  # the receiver lost the base image
        agent.state.set("k", 9)
        data2, buffers2, cost = sender.dumps_with_cost(agent, base_hint=info["hash"])
        assert cost.delta
        with pytest.raises(DeltaBaseMissingError):
            receiver.loads_with_info(data2, buffers=buffers2 or None)
        # The sender's escalation re-ships full; the receiver recovers.
        data3, buffers3, cost3 = sender.dumps_with_cost(agent)
        assert not cost3.delta
        copy, info3 = receiver.loads_with_info(data3, buffers=buffers3 or None)
        assert info3["mode"] == "full"
        assert copy.state.get("k") == 9

    def test_v2_into_v1_only_reader_is_a_clean_error(self):
        sender = NapletSerializer()
        v1_only = NapletSerializer(delta_shipping=False)
        agent = _identified("legacy-peer")
        data, buffers, _ = sender.dumps_with_cost(agent)
        with pytest.raises(SerializationError, match="only accepts v1"):
            v1_only.loads_with_info(data, buffers=buffers or None)

    def test_force_v1_round_trips_through_v1_only_reader(self):
        sender = NapletSerializer()
        v1_only = NapletSerializer(delta_shipping=False)
        agent = _identified("forced")
        agent.state.set("k", 7)
        data, buffers, cost = sender.dumps_with_cost(agent, force_v1=True)
        assert buffers == [] and not cost.delta
        copy, info = v1_only.loads_with_info(data)
        assert info["v"] == 1
        assert copy.state.get("k") == 7

    def test_delta_off_sender_always_ships_v1(self):
        sender = NapletSerializer(delta_shipping=False)
        agent = _identified("v1-sender")
        data, buffers, _ = sender.dumps_with_cost(agent, base_hint="deadbeef")
        assert buffers == []
        _, info = NapletSerializer(delta_shipping=False).loads_with_info(data)
        assert info["v"] == 1

    def test_corrupt_delta_fails_the_image_hash_check(self):
        import pickle as _pickle

        sender, receiver = self._pair()
        agent = _identified("tamper")
        data, buffers, _ = sender.dumps_with_cost(agent)
        _, info = receiver.loads_with_info(data, buffers=buffers or None)
        agent.state.set("k", 1)
        data2, buffers2, _ = sender.dumps_with_cost(agent, base_hint=info["hash"])
        envelope = _pickle.loads(data2, buffers=buffers2 or None)
        envelope["fields"] = {
            n: bytes(b) for n, b in envelope["fields"].items()
        }
        envelope["fields"]["_state"] = _pickle.dumps("tampered")
        with pytest.raises(SerializationError, match="content hash"):
            receiver.loads(_pickle.dumps(envelope))


class TestCodeNegotiation:
    @pytest.fixture
    def registry(self):
        reg = CodeBaseRegistry()
        reg.create("codebase://test/payload").add_class(StampedPayload)
        return reg

    def _module_hash(self, registry) -> str:
        codebase_name, module_key, _ = shipping_stamp_of(StampedPayload(0))
        return registry.get(codebase_name).hash_of(module_key)

    def test_known_code_replaces_bundle_with_hash_ref(self, registry):
        sender = NapletSerializer(registry, eager_code=True)
        agent = _identified("codeful")
        agent.payload = StampedPayload(11)

        import pickle as _pickle

        data, buffers, cost = sender.dumps_with_cost(agent)
        envelope = _pickle.loads(data, buffers=buffers or None)
        assert envelope["bundles"] and not envelope["code_refs"]
        assert cost.code_bytes > 0

        known = {self._module_hash(registry)}
        sender2 = NapletSerializer(registry, eager_code=True)
        data2, buffers2, cost2 = sender2.dumps_with_cost(agent, known_code=known)
        envelope2 = _pickle.loads(data2, buffers=buffers2 or None)
        assert envelope2["code_refs"] and not envelope2["bundles"]
        assert cost2.code_bytes == 0

    def test_code_ref_resolves_when_cache_holds_the_module(self, registry):
        sender = NapletSerializer(registry, eager_code=True)
        receiver = NapletSerializer()
        cache = CodeCache(CodeBaseRegistry())  # fetchless: bundles only
        agent = _identified("code-hop")
        agent.payload = StampedPayload(21)

        # Hop 1 ships the bundle; the landing installs it in the cache.
        data, buffers, _ = sender.dumps_with_cost(agent)
        copy, _ = receiver.loads_with_info(data, cache, buffers=buffers or None)
        assert copy.payload.value == 21
        known = set(cache.known_hashes())
        assert self._module_hash(registry) in known

        # Hop 2 ships only the hash reference — and it resolves.
        sender2 = NapletSerializer(registry, eager_code=True)
        data2, buffers2, _ = sender2.dumps_with_cost(agent, known_code=known)
        receiver2 = NapletSerializer()
        copy2, _ = receiver2.loads_with_info(data2, cache, buffers=buffers2 or None)
        assert copy2.payload.value == 21

    def test_missing_code_ref_raises_shipped_code_missing(self, registry):
        sender = NapletSerializer(registry, eager_code=True)
        agent = _identified("code-miss")
        agent.payload = StampedPayload(31)
        known = {self._module_hash(registry)}
        data, buffers, _ = sender.dumps_with_cost(agent, known_code=known)
        bare_cache = CodeCache(CodeBaseRegistry())  # never saw the bundle
        with pytest.raises(ShippedCodeMissingError):
            NapletSerializer().loads_with_info(data, bare_cache, buffers=buffers or None)
