"""Pooled TCP connections: multiplexing, reuse, reconnects, frame limits."""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.core.errors import NapletCommunicationError
from repro.transport import pool as poolmod
from repro.transport.base import Frame, FrameKind
from repro.transport.tcp import TcpTransport


@pytest.fixture
def transport():
    t = TcpTransport()
    yield t
    t.close()


def _frame(dest, payload=b"", kind=FrameKind.MESSAGE):
    return Frame(kind=kind, source="naplet://a", dest=dest, payload=payload)


class TestPooledReuse:
    def test_sequential_requests_share_one_connection(self, transport):
        transport.register("naplet://echo", lambda f: pickle.dumps(f.payload))
        for i in range(20):
            reply = transport.request(_frame("naplet://echo", str(i).encode()), timeout=5)
            assert pickle.loads(reply) == str(i).encode()
        assert transport.connections_opened() == 1
        assert transport.pool_reuse_count() == 19

    def test_concurrent_interleaved_requests_over_one_connection(self, transport):
        def slow_echo(frame):
            time.sleep(0.01)  # force interleaving of in-flight requests
            return pickle.dumps(frame.payload)

        transport.register("naplet://echo", slow_echo)
        results: dict[int, bytes] = {}
        errors: list[Exception] = []

        def worker(i):
            try:
                for j in range(5):
                    payload = f"{i}:{j}".encode()
                    reply = transport.request(_frame("naplet://echo", payload), timeout=10)
                    assert pickle.loads(reply) == payload
                results[i] = b"ok"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        assert len(results) == 8
        assert transport.connections_opened() == 1

    def test_correlation_ids_are_distinct(self, transport):
        seen = []
        transport.register(
            "naplet://c", lambda f: seen.append(f.correlation_id) or pickle.dumps(b"ok")
        )
        for _ in range(5):
            transport.request(_frame("naplet://c"), timeout=5)
        assert len(set(seen)) == 5
        assert all(cid is not None for cid in seen)

    def test_unpooled_transport_dials_per_frame(self):
        transport = TcpTransport(pooled=False)
        try:
            transport.register("naplet://echo", lambda f: pickle.dumps(b"ok"))
            for _ in range(5):
                transport.request(_frame("naplet://echo"), timeout=5)
            assert transport.connections_opened() == 5
            assert transport.pool_reuse_count() == 0
        finally:
            transport.close()

    def test_one_way_send_rides_the_pool(self, transport):
        seen = threading.Event()
        transport.register("naplet://sink", lambda f: seen.set())
        transport.request(_frame("naplet://sink"), timeout=5)  # open the conn
        seen.clear()
        transport.send(_frame("naplet://sink"))
        assert seen.wait(5)
        assert transport.connections_opened() == 1


class TestPoolResilience:
    def test_reconnect_after_peer_closes_keepalive(self, transport):
        transport.register("naplet://echo", lambda f: pickle.dumps(b"ok"))
        transport.request(_frame("naplet://echo"), timeout=5)
        assert transport.connections_opened() == 1
        # The peer drops the kept-alive connection (restart, idle timeout).
        endpoint = transport._endpoints["naplet://echo"]
        endpoint.drop_connections()
        conn = transport.pool.connection_to("naplet://echo")
        deadline = time.monotonic() + 5
        while conn.alive and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not conn.alive
        # The next request transparently redials.
        reply = transport.request(_frame("naplet://echo"), timeout=5)
        assert pickle.loads(reply) == b"ok"
        assert transport.connections_opened() == 2

    def test_handler_error_poisons_only_its_request(self, transport):
        def sometimes(frame):
            if frame.payload == b"boom":
                raise RuntimeError("handler exploded")
            return pickle.dumps(b"ok")

        transport.register("naplet://mixed", sometimes)
        with pytest.raises(NapletCommunicationError, match="handler exploded"):
            transport.request(_frame("naplet://mixed", b"boom"), timeout=5)
        # Connection survives: the next request reuses it and succeeds.
        reply = transport.request(_frame("naplet://mixed", b"fine"), timeout=5)
        assert pickle.loads(reply) == b"ok"
        assert transport.connections_opened() == 1

    def test_timeout_leaves_connection_usable(self, transport):
        def slow(frame):
            if frame.payload == b"slow":
                time.sleep(0.5)
            return pickle.dumps(b"ok")

        transport.register("naplet://slow", slow)
        with pytest.raises(NapletCommunicationError, match="timed out"):
            transport.request(_frame("naplet://slow", b"slow"), timeout=0.05)
        reply = transport.request(_frame("naplet://slow", b"fast"), timeout=5)
        assert pickle.loads(reply) == b"ok"
        assert transport.connections_opened() == 1


class TestFrameSizeBoundary:
    def test_frame_at_limit_passes_over_limit_rejected(self, transport, monkeypatch):
        monkeypatch.setattr(poolmod, "MAX_FRAME", 64 * 1024)
        transport.register("naplet://big", lambda f: pickle.dumps(len(f.payload)))
        # Comfortably under the limit: passes.
        ok = _frame("naplet://big", b"z" * (32 * 1024))
        assert pickle.loads(transport.request(ok, timeout=5)) == 32 * 1024
        # Encoded size over the limit: rejected at send time, before the wire.
        too_big = _frame("naplet://big", b"z" * (64 * 1024 + 1))
        with pytest.raises(NapletCommunicationError, match="frame too large"):
            transport.request(too_big, timeout=5)
        # The shared connection was not poisoned by the rejected frame.
        assert pickle.loads(transport.request(_frame("naplet://big", b"x"), timeout=5)) == 1

    def test_oversized_length_prefix_counted_as_dropped(self, transport):
        import socket
        import struct

        transport.register("naplet://sturdy", lambda f: pickle.dumps(b"ok"))
        before = int(transport.metrics.counter("wire_dropped_connections_total").total())
        raw = socket.create_connection(("127.0.0.1", transport.port_of("naplet://sturdy")))
        raw.sendall(struct.pack("!I", poolmod.MAX_FRAME + 1) + b"xxxx")
        raw.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            dropped = int(
                transport.metrics.counter("wire_dropped_connections_total").total()
            )
            if dropped > before:
                break
            time.sleep(0.01)
        assert dropped == before + 1
        assert transport.events.count("transport-connection-dropped") == 1
        # Valid traffic still flows.
        assert pickle.loads(transport.request(_frame("naplet://sturdy"), timeout=5)) == b"ok"


class TestOutOfBandSegments:
    """REQB frames: protocol-5 buffers travel as raw segments, uncopied."""

    def test_request_with_buffers_round_trips_segments(self, transport):
        seen = {}

        def handler(frame):
            seen["buffers"] = [bytes(b) for b in frame.buffers]
            seen["payload"] = frame.payload
            return pickle.dumps(len(frame.buffers))

        transport.register("naplet://segmented", handler)
        buffers = (b"\xaa" * 70_000, b"tail-segment")
        frame = Frame(
            kind=FrameKind.NAPLET_TRANSFER,
            source="naplet://a",
            dest="naplet://segmented",
            payload=pickle.dumps("envelope-core"),
            buffers=buffers,
        )
        assert pickle.loads(transport.request(frame, timeout=10)) == 2
        assert seen["payload"] == pickle.dumps("envelope-core")
        assert seen["buffers"] == [bytes(b) for b in buffers]

    def test_buffer_bytes_are_accounted_on_the_wire(self, transport):
        transport.register("naplet://meter", lambda f: pickle.dumps(f.size))
        wire = transport.metrics.counter("wire_bytes_total")
        before = int(wire.value(kind="naplet-transfer"))
        frame = Frame(
            kind=FrameKind.NAPLET_TRANSFER,
            source="naplet://a",
            dest="naplet://meter",
            payload=b"p",
            buffers=(b"\xbb" * 10_000,),
        )
        reported = pickle.loads(transport.request(frame, timeout=10))
        # Frame.size counts the out-of-band segments on both ends ...
        assert reported >= 10_000
        assert frame.size >= 10_000
        # ... and so does the byte meter for the transfer kind.
        assert int(wire.value(kind="naplet-transfer")) - before >= 10_000

    def test_bufferless_frames_still_use_plain_req(self, transport):
        # A frame without buffers must not regress to the segmented layout
        # (interop: v1-era peers only speak "req").
        transport.register("naplet://plain", lambda f: pickle.dumps(f.buffers == ()))
        frame = Frame(
            kind=FrameKind.MESSAGE,
            source="naplet://a",
            dest="naplet://plain",
            payload=b"p",
        )
        assert pickle.loads(transport.request(frame, timeout=10)) is True


class TestLivePeers:
    """live_peers/live_destinations: what a heartbeat may ride for free."""

    def test_live_peers_lists_pooled_keepalives_only(self, transport):
        assert transport.live_peers("naplet://a") == []
        transport.register("naplet://echo", lambda f: pickle.dumps(b"ok"))
        transport.request(_frame("naplet://echo"), timeout=5)
        assert transport.live_peers("naplet://a") == ["naplet://echo"]
        assert transport.pool.live_destinations() == ["naplet://echo"]

    def test_live_peers_excludes_self(self, transport):
        transport.register("naplet://echo", lambda f: pickle.dumps(b"ok"))
        transport.request(_frame("naplet://echo"), timeout=5)
        assert transport.live_peers("naplet://echo") == []

    def test_unpooled_transport_has_no_live_peers(self):
        transport = TcpTransport(pooled=False)
        try:
            transport.register("naplet://echo", lambda f: pickle.dumps(b"ok"))
            transport.request(_frame("naplet://echo"), timeout=5)
            assert transport.live_peers("naplet://a") == []
        finally:
            transport.close()
