"""Fixture module for code-shipping tests.

Kept free of imports outside the restricted loader's allowlist: this whole
module's source is bundled into a codebase and re-executed on 'arrival'.
"""

from __future__ import annotations


class StampedPayload:
    """A payload class shipped by codebase reference."""

    def __init__(self, value):
        self.value = value

    def doubled(self):
        return self.value * 2
