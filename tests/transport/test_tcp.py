"""TcpTransport: real localhost sockets carrying frames."""

from __future__ import annotations

import pickle

import pytest

from repro.core.errors import NapletCommunicationError
from repro.transport.base import Frame, FrameKind
from repro.transport.tcp import TcpTransport


@pytest.fixture
def transport():
    t = TcpTransport()
    yield t
    t.close()


class TestTcp:
    def test_request_reply_roundtrip(self, transport):
        transport.register("naplet://b", lambda f: pickle.dumps(f.payload.upper()))
        frame = Frame(kind=FrameKind.MESSAGE, source="naplet://a", dest="naplet://b", payload=b"hello")
        assert pickle.loads(transport.request(frame, timeout=5)) == b"HELLO"

    def test_send_one_way(self, transport):
        import threading

        seen = threading.Event()
        received = []

        def handler(frame):
            received.append(frame.payload)
            seen.set()
            return None

        transport.register("naplet://sink", handler)
        transport.send(Frame(kind=FrameKind.PING, source="naplet://a", dest="naplet://sink", payload=b"x"))
        assert seen.wait(5)
        assert received == [b"x"]

    def test_each_endpoint_gets_distinct_port(self, transport):
        transport.register("naplet://a", lambda f: None)
        transport.register("naplet://b", lambda f: None)
        assert transport.port_of("naplet://a") != transport.port_of("naplet://b")

    def test_unknown_destination_raises(self, transport):
        with pytest.raises(NapletCommunicationError):
            transport.send(Frame(kind=FrameKind.PING, source="a", dest="naplet://ghost"))

    def test_unregister_closes_listener(self, transport):
        transport.register("naplet://temp", lambda f: pickle.dumps(b"ok"))
        transport.unregister("naplet://temp")
        with pytest.raises(NapletCommunicationError):
            transport.port_of("naplet://temp")

    def test_large_payload(self, transport):
        transport.register("naplet://big", lambda f: pickle.dumps(len(f.payload)))
        blob = b"z" * (2 * 1024 * 1024)
        frame = Frame(kind=FrameKind.NAPLET_TRANSFER, source="a", dest="naplet://big", payload=blob)
        assert pickle.loads(transport.request(frame, timeout=10)) == len(blob)

    def test_concurrent_requests(self, transport):
        import threading

        transport.register("naplet://echo", lambda f: pickle.dumps(f.payload))
        results = []

        def call(i):
            frame = Frame(kind=FrameKind.MESSAGE, source="a", dest="naplet://echo", payload=str(i).encode())
            results.append(pickle.loads(transport.request(frame, timeout=5)))

        threads = [threading.Thread(target=call, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5)
        assert sorted(results) == sorted(str(i).encode() for i in range(8))
