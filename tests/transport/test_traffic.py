"""TrafficMeter under concurrency: totals, host splits, snapshot consistency."""

from __future__ import annotations

import threading

import pytest

from repro.transport.traffic import LinkStats, TrafficMeter

RECORDERS = 8
PER_RECORDER = 400


class TestConcurrentRecorders:
    def _hammer(self, meter: TrafficMeter) -> None:
        """RECORDERS threads record on distinct and shared links at once."""
        barrier = threading.Barrier(RECORDERS)

        def work(index: int) -> None:
            barrier.wait()
            for i in range(PER_RECORDER):
                # Half the traffic contends on one shared link, half fans
                # out per-thread, so both dict-hit and dict-miss paths race.
                if i % 2:
                    meter.record("hub", "spoke", "message", 100, 0.001)
                else:
                    meter.record(f"h{index}", "hub", "transfer", 50, 0.002)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(RECORDERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert not any(t.is_alive() for t in threads)

    def test_totals_lose_no_frames_or_bytes(self):
        meter = TrafficMeter()
        self._hammer(meter)
        expected_frames = RECORDERS * PER_RECORDER
        assert meter.total_frames == expected_frames
        assert meter.total_bytes == RECORDERS * (
            (PER_RECORDER // 2) * 100 + (PER_RECORDER // 2) * 50
        )
        assert meter.kind_stats("message").frames == RECORDERS * PER_RECORDER // 2

    def test_host_bytes_sum_egress_and_ingress(self):
        meter = TrafficMeter()
        self._hammer(meter)
        egress, ingress = meter.host_bytes("hub")
        assert egress == RECORDERS * (PER_RECORDER // 2) * 100
        assert ingress == RECORDERS * (PER_RECORDER // 2) * 50
        assert meter.host_total("hub") == egress + ingress
        # Per-thread sources saw only egress.
        assert meter.host_bytes("h0") == ((PER_RECORDER // 2) * 50, 0)

    def test_snapshot_is_internally_consistent_mid_race(self):
        """A snapshot taken while recorders run must always balance:
        its link sums equal its totals (one lock acquisition, not two)."""
        meter = TrafficMeter()
        stop = threading.Event()

        def record_forever() -> None:
            while not stop.is_set():
                meter.record("a", "b", "message", 7, 0.0)
                meter.record("b", "c", "transfer", 13, 0.0)

        recorders = [threading.Thread(target=record_forever) for _ in range(4)]
        for t in recorders:
            t.start()
        try:
            for _ in range(200):
                snap = meter.snapshot()
                links = snap["links"].values()
                assert sum(s.bytes for s in links) == snap["total_bytes"]
                assert sum(s.frames for s in links) == snap["total_frames"]
                by_kind = snap["by_kind"].values()
                assert sum(s.bytes for s in by_kind) == snap["total_bytes"]
        finally:
            stop.set()
            for t in recorders:
                t.join(5)

    def test_snapshot_and_links_return_copies(self):
        meter = TrafficMeter()
        meter.record("a", "b", "message", 10, 0.0)
        snap = meter.snapshot()
        snap["links"][("a", "b")].bytes = 999_999
        meter.links()[("a", "b")].frames = 999_999
        assert meter.link("a", "b") == LinkStats(frames=1, bytes=10)

    def test_reset_clears_everything(self):
        meter = TrafficMeter()
        meter.record("a", "b", "message", 10, 0.5)
        meter.reset()
        assert meter.total_bytes == 0
        assert meter.total_frames == 0
        assert meter.links() == {}
        assert meter.host_bytes("a") == (0, 0)

    def test_virtual_seconds_accumulate(self):
        meter = TrafficMeter()
        meter.record("a", "b", "message", 1, 0.25)
        meter.record("a", "b", "message", 1, 0.25)
        assert meter.total_virtual_seconds == pytest.approx(0.5)
        assert meter.link("a", "b").virtual_seconds == pytest.approx(0.5)
