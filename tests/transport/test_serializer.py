"""NapletSerializer: envelopes, transients, and shipped-class integration."""

from __future__ import annotations

import pytest

from repro.codeshipping.codebase import CodeBaseRegistry, CodeCache
from repro.core.errors import SerializationError
from repro.transport.serializer import NapletSerializer
from tests.core.test_naplet import ProbeNaplet


from tests.transport.shipped_fixture import StampedPayload


class PlainPayload:
    def __init__(self, value):
        self.value = value


@pytest.fixture
def registry():
    reg = CodeBaseRegistry()
    codebase = reg.create("codebase://test/payload")
    codebase.add_class(StampedPayload)
    return reg


@pytest.fixture
def cache(registry):
    return CodeCache(registry)


class TestPlainRoundtrip:
    def test_roundtrip_without_cache(self):
        serializer = NapletSerializer()
        data = serializer.dumps({"a": [1, 2, 3]})
        assert serializer.loads(data) == {"a": [1, 2, 3]}

    def test_naplet_roundtrip_drops_context(self):
        serializer = NapletSerializer()
        agent = ProbeNaplet("traveller")
        agent._context = "fake-context"  # type: ignore[assignment]
        agent.state.set("k", 1)
        copy = serializer.loads(serializer.dumps(agent))
        assert copy.context is None
        assert copy.state.get("k") == 1

    def test_corrupt_envelope_raises(self):
        with pytest.raises(SerializationError):
            NapletSerializer().loads(b"not-an-envelope")

    def test_wrong_version_raises(self):
        import pickle

        data = pickle.dumps({"v": 99, "payload": b"", "bundles": {}})
        with pytest.raises(SerializationError):
            NapletSerializer().loads(data)

    def test_unpicklable_object_raises(self):
        serializer = NapletSerializer()
        with pytest.raises(SerializationError):
            serializer.dumps(lambda x: x)  # lambdas don't pickle

    def test_payload_size_positive_and_monotone(self):
        serializer = NapletSerializer()
        small = serializer.payload_size("x")
        big = serializer.payload_size("x" * 10_000)
        assert 0 < small < big

    def test_payload_size_bypasses_perf_observer(self):
        # Regression: sizing probes used to flow through the observer and
        # pollute naplet_serialize_seconds / hop-byte telemetry with
        # phantom "hops".  payload_size must stay invisible.
        class RecordingObserver:
            def __init__(self):
                self.serialized_calls = []
                self.deserialized_calls = []

            def serialized(self, cost):
                self.serialized_calls.append(cost)

            def deserialized(self, seconds, nbytes):
                self.deserialized_calls.append(nbytes)

        observer = RecordingObserver()
        serializer = NapletSerializer(observer=observer)
        serializer.payload_size({"k": "v" * 1000})
        assert observer.serialized_calls == []
        # ... while a real dumps is still observed exactly once.
        serializer.dumps({"k": 1})
        assert len(observer.serialized_calls) == 1

    def test_payload_size_never_touches_the_delta_cache(self):
        from tests.core.test_naplet import _identified

        serializer = NapletSerializer()
        serializer.payload_size(_identified("probe-sized"))
        assert len(serializer.delta_cache) == 0


class TestShippedClasses:
    def test_lazy_roundtrip_through_cache(self, registry, cache):
        serializer = NapletSerializer(registry)
        data = serializer.dumps(StampedPayload(41))
        restored = serializer.loads(data, cache)
        assert restored.value == 41
        # Reconstructed through the codebase, not the local class object.
        assert type(restored) is not StampedPayload
        assert type(restored).__name__ == "StampedPayload"
        assert cache.misses == 1

    def test_second_load_hits_cache(self, registry, cache):
        serializer = NapletSerializer(registry)
        serializer.loads(serializer.dumps(StampedPayload(1)), cache)
        serializer.loads(serializer.dumps(StampedPayload(2)), cache)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_lazy_without_cache_raises(self, registry):
        serializer = NapletSerializer(registry)
        data = serializer.dumps(StampedPayload(1))
        with pytest.raises(SerializationError):
            serializer.loads(data)

    def test_eager_mode_embeds_bundles(self, registry):
        lazy = NapletSerializer(registry, eager_code=False)
        eager = NapletSerializer(registry, eager_code=True)
        obj = StampedPayload(7)
        assert len(eager.dumps(obj)) > len(lazy.dumps(obj))

    def test_eager_load_needs_no_registry_fetch(self, registry):
        eager = NapletSerializer(registry, eager_code=True)
        data = eager.dumps(StampedPayload(9))
        # A cache whose registry is EMPTY: only the embedded bundle can help.
        fetchless_cache = CodeCache(CodeBaseRegistry())
        restored = eager.loads(data, fetchless_cache)
        assert restored.value == 9
        assert fetchless_cache.misses == 0  # install_source pre-seeded it

    def test_eager_requires_registry(self):
        with pytest.raises(SerializationError):
            NapletSerializer(None, eager_code=True)

    def test_plain_classes_not_affected_by_cache(self, cache):
        serializer = NapletSerializer()
        restored = serializer.loads(serializer.dumps(PlainPayload(3)), cache)
        assert type(restored) is PlainPayload
        assert restored.value == 3

    def test_nested_shipped_instances(self, registry, cache):
        serializer = NapletSerializer(registry)
        data = serializer.dumps({"inner": [StampedPayload(1), StampedPayload(2)]})
        restored = serializer.loads(data, cache)
        assert [p.value for p in restored["inner"]] == [1, 2]
