#!/usr/bin/env python
"""Quickstart: a roaming naplet in ten lines of agent code.

Builds a four-host virtual network, deploys one NapletServer per host,
and launches an agent whose business logic (collect hostnames) is cleanly
separated from its itinerary (a Seq tour of three servers).  The final
ResultReport post-action sends the collected list back to the home
listener — the paper's Example 1.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import deploy
from repro.simnet import VirtualNetwork, line


class GreeterNaplet(repro.Naplet):
    """Visits servers and remembers who it met."""

    def on_start(self) -> None:
        context = self.require_context()
        visited = (self.state.get("visited") or []) + [context.hostname]
        self.state.set("visited", visited)
        print(f"  [{context.hostname}] hello from {self.naplet_id}")
        self.travel()


def main() -> None:
    # One millisecond per link; bytes and virtual delay are metered.
    network = VirtualNetwork(line(4, prefix="host", latency=0.001))
    servers = deploy(network)

    listener = repro.NapletListener()
    agent = GreeterNaplet("greeter")
    agent.set_itinerary(
        Itinerary(
            SeqPattern.of_servers(
                ["host01", "host02", "host03"],
                post_action=ResultReport("visited"),
            )
        )
    )

    print("launching from host00 ...")
    nid = servers["host00"].launch(agent, owner="quickstart", listener=listener)
    report = listener.next_report(timeout=10)

    print(f"\nnaplet id     : {nid}")
    print(f"visited       : {report.payload}")
    print(f"network bytes : {network.meter.total_bytes}")
    print(f"virtual delay : {network.clock.virtual_time * 1000:.1f} ms accounted")
    log = [f"{r.server_urn} ({r.dwell:.4f}s)" for r in agent.navigation_log if r.dwell]
    print(f"navigation log: {log if log else '(travelled copy holds the full log)'}")
    network.shutdown()


if __name__ == "__main__":
    main()
