#!/usr/bin/env python
"""The paper's §2.1 shopping agent: state protection modes in action.

A shopping naplet tours vendor hosts collecting price quotes:

- gathered quotes live in a **PRIVATE** state entry — visited servers
  cannot read a competitor's bid (the paper's confidentiality case);
- the agent also carries a **PROTECTED** "catalog-notes" entry that only
  the *trusted* vendors may update — "a naplet server can update a
  returning naplet with new information";
- vendors trying to peek at the private entry get a StateAccessError.

Run:  python examples/shopping_agent.py
"""

from __future__ import annotations

import repro
from repro.core import AccessMode, StateAccessError
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import deploy
from repro.simnet import VirtualNetwork, ring

PRODUCT = "sparc-ultra-10"  # it is 2002, after all
PRICES = {"vendor01": 4200.0, "vendor02": 3950.0, "vendor03": 4480.0}
TRUSTED = {"vendor02"}


class PriceDesk:
    """Stationary vendor service: quotes prices, annotates trusted agents."""

    def __init__(self, hostname: str) -> None:
        self.hostname = hostname
        self.snoop_attempts = 0

    def quote(self, product: str) -> float:
        return PRICES[self.hostname] if product == PRODUCT else float("nan")

    def annotate(self, naplet: repro.Naplet) -> str:
        """Try to read the agent's private quotes, then update the
        protected notes if this vendor is allowed to."""
        try:
            naplet.state.server_get("quotes", self.hostname)
        except StateAccessError:
            self.snoop_attempts += 1  # private state held: snooping denied
        try:
            naplet.state.server_set(
                "catalog_notes",
                f"{self.hostname}: restock of {PRODUCT} expected next week",
                self.hostname,
            )
            return "updated"
        except StateAccessError:
            return "not trusted"


class ShoppingNaplet(repro.Naplet):
    def on_start(self) -> None:
        context = self.require_context()
        desk: PriceDesk = context.open_service("price-desk")
        quotes = dict(self.state.get("quotes") or {})
        quotes[context.hostname] = desk.quote(PRODUCT)
        self.state.set("quotes", quotes, mode=AccessMode.PRIVATE)
        verdict = desk.annotate(self)
        print(f"  [{context.hostname}] quoted {quotes[context.hostname]:.2f}, "
              f"annotation: {verdict}")
        self.travel()


def main() -> None:
    network = VirtualNetwork(ring(4, prefix="vendor", latency=0.001))
    servers = deploy(network)
    desks = {}
    for hostname, server in servers.items():
        desk = PriceDesk(hostname)
        desks[hostname] = desk
        server.register_open_service("price-desk", desk)

    listener = repro.NapletListener()
    agent = ShoppingNaplet("shopper")
    # protected notes: only the trusted vendor may write
    agent.state.set(
        "catalog_notes", None, mode=AccessMode.PROTECTED, allowed_servers=TRUSTED
    )
    agent.set_itinerary(
        Itinerary(
            SeqPattern.of_servers(
                ["vendor01", "vendor02", "vendor03"], post_action=ResultReport()
            )
        )
    )
    servers["vendor00"].launch(agent, owner="buyer", listener=listener)
    report = listener.next_report(timeout=10)

    quotes = report.payload["quotes"]
    best = min(quotes, key=quotes.get)
    print(f"\nbest offer : {best} at {quotes[best]:.2f}")
    print(f"notes      : {report.payload['catalog_notes']}")
    snoops = sum(d.snoop_attempts for d in desks.values())
    print(f"snooping   : {snoops} denied attempts on the private quote book")
    assert best == "vendor02"
    assert "vendor02" in (report.payload["catalog_notes"] or "")
    network.shutdown()


if __name__ == "__main__":
    main()
