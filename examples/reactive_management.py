#!/usr/bin/env python
"""Management by exception: SNMP traps dispatch diagnosis naplets.

The station does *no* polling.  When a device's interface fails, its SNMP
agent emits a linkDown trap; the station's trap sink hands it to a
ReactiveDispatcher, which launches a DiagnosisNaplet to the reporting
device.  The naplet walks the interface table on-site and reports a digest
— the combination of asynchronous SNMP and mobile agents the paper's
network-management section motivates.

Run:  python examples/reactive_management.py
"""

from __future__ import annotations

import time

from repro.man import ManFramework, ReactiveDispatcher
from repro.snmp.trap import TrapSender


def main() -> None:
    framework = ManFramework(n_devices=5, latency=0.001)
    dispatcher = ReactiveDispatcher(framework.station_server)
    sink = dispatcher.sink_for(framework.network.transport, framework.station_host)
    senders = {
        hostname: TrapSender(
            framework.devices[hostname], framework.network.transport, sink.urn
        )
        for hostname in framework.device_hosts
    }

    print("station idle — no polling. Injecting faults...\n")
    failures = [("dev01", 2), ("dev03", 1)]
    for hostname, if_index in failures:
        print(f"  !! {hostname}: interface {if_index} went down (trap emitted)")
        senders[hostname].link_down(if_index)

    for _ in failures:
        report = dispatcher.listener.next_report(timeout=20)
        d = report.payload
        print(f"  -> diagnosis from {report.reporter}:")
        print(f"     device={d['device']} interfaces_down={d['interfaces_down']} "
              f"cpu={d['cpu_load']:.2f} uptime={d['uptime_ticks']} ticks")

    # recovery: the same machinery reports the all-clear
    print("\nrepair crews at work...")
    senders["dev01"].link_up(2)
    report = dispatcher.listener.next_report(timeout=20)
    print(f"  -> post-repair diagnosis: device={report.payload['device']} "
          f"interfaces_down={report.payload['interfaces_down']}")

    time.sleep(0.1)
    traps = framework.network.meter.kind_stats("snmp-trap")
    print(f"\ntotals: {dispatcher.dispatch_count} agents dispatched, "
          f"{traps.frames} trap frames ({traps.bytes} bytes) — zero polling traffic")
    sink.close()
    framework.shutdown()


if __name__ == "__main__":
    main()
