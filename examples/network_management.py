#!/usr/bin/env python
"""Mobile-agent network management (paper §6, Figure 3).

Builds the MAN framework — managed devices with synthetic MIB-II data,
SNMP agents, NapletServers exposing the NetManagement privileged service —
and collects the same device-status table three ways:

1. conventional centralized polling (CNMP), one Get round-trip per OID;
2. a single NMNaplet touring all devices sequentially;
3. the paper's broadcast itinerary — one spawned child per device.

It then prints the measured network cost of each approach, reproducing the
paper's motivation: centralized micro-management generates heavy traffic on
the management station's links.

Run:  python examples/network_management.py [n_devices]
"""

from __future__ import annotations

import sys

from repro.man import ComparisonRunner, ManFramework

PARAMETERS = ["sysName", "sysUpTime", "ipInReceives", "tcpCurrEstab", "cpuLoad"]


def main(n_devices: int = 8) -> None:
    print(f"MAN framework: {n_devices} managed devices, 2 ms links")
    framework = ManFramework(n_devices=n_devices, latency=0.002)
    runner = ComparisonRunner(framework)

    results = runner.run_all(PARAMETERS)

    print(f"\ncollected parameters: {', '.join(PARAMETERS)}\n")
    header = f"{'approach':<12} {'station-link B':>14} {'total B':>10} {'virtual s':>10} {'complete':>9}"
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result.approach:<12} {result.station_link_bytes:>14} "
            f"{result.total_bytes:>10} {result.virtual_seconds:>10.4f} "
            f"{str(result.complete):>9}"
        )

    sample_host = framework.device_hosts[0]
    table = results[-1].table
    print(f"\nsample device status [{sample_host}]: {table[sample_host]}")
    framework.shutdown()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
