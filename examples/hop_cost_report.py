#!/usr/bin/env python
"""What does a hop cost?  The perf plane, end to end (DESIGN.md §6.6).

A naplet's migration bill has three line items: the time to pickle it,
the bytes its image occupies on the wire, and the framing around it.
This walkthrough makes all three visible for one journey:

1. a tour through three servers leaves a ``hop-cost`` record in the
   flight recorder at every departure — serialize seconds plus the
   payload/header/code byte split of the transfer frame;
2. ``render_hop_costs`` turns the harvested records into the same
   per-hop table ``tools/napletperf.py hops`` prints;
3. ``explain_pickle`` X-rays the naplet's serialized form and attributes
   the payload bytes to individual attributes — which is how you learn
   that the 4 KB blob in ``state`` is what makes the agent heavy;
4. the journey's critical path gains a bytes column, and the transport's
   per-endpoint counters show each server's ingress/egress share.

Run:  python examples/hop_cost_report.py
"""

from __future__ import annotations

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.perf import explain_pickle, render_hop_costs
from repro.server import SpaceAdmin, deploy
from repro.simnet import VirtualNetwork, line

ROUTE = ["s01", "s02", "s03"]


class Courier(repro.Naplet):
    """Carries a deliberately heavy payload around the space."""

    def on_start(self) -> None:
        context = self.require_context()
        visited = (self.state.get("visited") or []) + [context.hostname]
        self.state.set("visited", visited)
        self.travel()


def main() -> None:
    network = VirtualNetwork(line(4, prefix="s"))
    servers = deploy(network)
    try:
        agent = Courier("courier")
        agent.state.set("cargo", "x" * 4096)  # the weight we'll X-ray later
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(ROUTE, post_action=ResultReport("visited"))
            )
        )

        # 0. X-ray before launch: where will the bytes go?
        xray = explain_pickle(agent)
        print("=== pickle X-ray (before launch) ===")
        print(xray.render())
        heaviest, nbytes = xray.top(1)[0]
        print(f"\nheaviest attribute: {heaviest} ({nbytes} bytes)")

        listener = repro.NapletListener()
        nid = servers["s00"].launch(agent, owner="alice", listener=listener)
        report = listener.next_report(timeout=20)
        print(f"\ntour complete: {report.payload}")
        admin = SpaceAdmin(servers)
        admin.wait_space_idle()

        # 1. The per-hop cost table from the flight recorder.
        records = admin.harvest_journal(category="perf")
        print("\n=== per-hop costs (flight recorder) ===")
        print(render_hop_costs(records, naplet=str(nid)))

        # 2. The critical path now carries the bytes column.
        print("\n=== critical path with bytes ===")
        print(admin.journey(nid).critical_path().render())

        # 3. Each server's share of the wire.
        print("\n=== per-server wire bytes ===")
        for hostname in sorted(servers):
            egress, ingress = servers[hostname].transport.endpoint_bytes(hostname)
            print(f"  {hostname}: out={egress:>6}  in={ingress:>6}")
    finally:
        network.shutdown()


if __name__ == "__main__":
    main()
