#!/usr/bin/env python
"""The flight recorder: one causal timeline for a clock-skewed space.

Three servers run with deliberately skewed journal clocks — h00 five
seconds fast, h01 five seconds slow — while a tourist naplet bounces
between them under a seeded fault plan injecting delivery delays.  Each
server's flight-recorder journal (DESIGN.md §6.5) captures the journey's
events, spans and injected faults, stamped with hybrid logical clocks
that piggyback on every frame header and naplet pickle.

Back home we show:

1. the harvested space-wide timeline, causally ordered — every hop's
   depart precedes its landing despite the skew;
2. the same records sorted by raw wall time, where the skew visibly
   *inverts* hops (the proof the HLC is doing the work);
3. a napletlog-style journey query reconstructing the itinerary; and
4. the probe-naplet harvest (`harvest_journal_via_probe`) reading the
   ``"journal"`` service at every stop — the MAN pattern applied to the
   platform's own black box.

Run:  python examples/flight_recorder.py
"""

from __future__ import annotations

import dataclasses
import time

import repro
from repro.faults import FaultPlan
from repro.health import harvest_journal_via_probe
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import NapletServer, ServerConfig, SpaceAdmin
from repro.simnet import VirtualNetwork, full_mesh
from repro.telemetry.journal import causal_key, format_record

ROUTE = ["h01", "h02", "h01"]
SKEWS = {"h00": +5.0, "h01": -5.0, "h02": 0.0}


class Tourist(repro.Naplet):
    """Appends each visited hostname to its state and travels on."""

    def on_start(self) -> None:
        context = self.require_context()
        visited = (self.state.get("visited") or []) + [context.hostname]
        self.state.set("visited", visited)
        self.travel()


def build_skewed_space():
    """Three servers whose journal clocks disagree by ±5 seconds."""
    plan = FaultPlan(seed=29).delay(0.002)
    network = VirtualNetwork(full_mesh(3, prefix="h"), fault_plan=plan)
    base = ServerConfig(health_cadence=0.05)
    servers = {}
    for hostname, skew in SKEWS.items():
        config = dataclasses.replace(
            base, journal_time_source=lambda skew=skew: time.time() + skew
        )
        servers[hostname] = NapletServer.attach(network.host(hostname), config)
    return network, servers


def show(title: str, records) -> None:
    print(f"\n=== {title} ===")
    for record in records:
        print("  " + format_record(record))
    print(f"  ({len(records)} records)")


def main() -> None:
    network, servers = build_skewed_space()
    try:
        print("space: " + ", ".join(
            f"{h} ({skew:+.0f}s)" for h, skew in SKEWS.items()
        ))

        listener = repro.NapletListener()
        agent = Tourist("skew-tour")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(ROUTE, post_action=ResultReport("visited"))
            )
        )
        nid = servers["h00"].launch(agent, owner="alice", listener=listener)
        report = listener.next_report(timeout=20)
        print(f"tour complete: {report.payload}")
        admin = SpaceAdmin(servers)
        admin.wait_space_idle()

        # 1. The causally merged timeline for this journey.
        story = admin.harvest_journal(naplet=str(nid))
        show("causal order (harvest_journal)", story)

        # 2. Raw wall order inverts hops: a depart minted at wall+5 sorts
        #    after its landing minted at wall-5.
        hops = [r for r in story if r.kind in ("naplet-depart", "naplet-arrive")]
        by_wall = sorted(hops, key=lambda r: (r.wall, r.server, r.seq))
        show("the same hops by raw wall clock (inverted!)", by_wall)
        causal_hops = sorted(hops, key=causal_key)
        inverted = [r.kind for r in by_wall] != [r.kind for r in causal_hops]
        print(f"\nwall order differs from causal order: {inverted}")

        # 3. Reconstruct the itinerary from arrivals alone.
        arrivals = [r.server for r in causal_hops if r.kind == "naplet-arrive"]
        print(f"itinerary reconstructed from the journal: {arrivals}")
        assert arrivals == ROUTE

        # 4. The over-the-wire harvest: a probe naplet tours the space
        #    reading each server's "journal" service.
        probed = harvest_journal_via_probe(
            servers["h00"], list(SKEWS), repro.NapletListener()
        )
        faults = [r for r in probed if r.category == "fault"]
        print(
            f"\nprobe harvest: {len(probed)} records from {len(SKEWS)} servers, "
            f"{len(faults)} injected faults on the timeline"
        )
    finally:
        network.shutdown()


if __name__ == "__main__":
    main()
