#!/usr/bin/env python
"""Lazy code loading (paper §2.1): codebases and on-demand class fetch.

The agent class below is bundled into a CodeBase — the JAR analogue — and
*stamped*, so migrating instances travel as ``(codebase, module, qualname,
state)`` references instead of by import path.  Each destination server
resolves the class through its local CodeCache:

- first arrival at a server → cache **miss** → the bundle is fetched from
  the codebase registry (billed as network traffic from the codebase host)
  and executed by the restricted loader;
- revisits → cache **hit** → no fetch.

Compare the ``codebase-fetch`` events and per-server cache stats printed at
the end, and rerun with ``eager=True`` to ship code with every transfer
instead (bigger payloads, zero fetches).

Run:  python examples/code_shipping.py
"""

from __future__ import annotations

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import ServerConfig, deploy
from repro.simnet import VirtualNetwork, line


class ShippedProbe(repro.Naplet):
    """A tiny probe whose *code* is delivered lazily."""

    def __init__(self, name: str, **kwargs) -> None:
        super().__init__(name, codebase="codebase://examples/probe", **kwargs)

    def on_start(self) -> None:
        context = self.require_context()
        hops = (self.state.get("hops") or []) + [context.hostname]
        self.state.set("hops", hops)
        self.travel()


def main(eager: bool = False) -> None:
    network = VirtualNetwork(line(4, prefix="srv", latency=0.001))
    config = ServerConfig(eager_code=eager, codebase_host="srv00")
    servers = deploy(network, config=config)

    # Author the codebase once, at the home side.
    codebase = network.code_registry.create("codebase://examples/probe")
    codebase.add_class(ShippedProbe)
    print(f"codebase bundled: {codebase.total_bytes} bytes of source, eager={eager}")

    # Tour out and back: srv01 -> srv02 -> srv03 -> srv02 (revisit = cache hit)
    listener = repro.NapletListener()
    agent = ShippedProbe("probe")
    agent.set_itinerary(
        Itinerary(
            SeqPattern.of_servers(
                ["srv01", "srv02", "srv03", "srv02"],
                post_action=ResultReport("hops"),
            )
        )
    )
    servers["srv00"].launch(agent, owner="shipper", listener=listener)
    report = listener.next_report(timeout=10)
    print(f"hops: {report.payload}")

    print("\nper-server lazy-loading stats:")
    for hostname in sorted(servers):
        cache = servers[hostname].code_cache
        fetches = servers[hostname].events.count("codebase-fetch")
        print(
            f"  {hostname}: cache hits={cache.hits} misses={cache.misses} "
            f"fetch events={fetches}"
        )
    network.shutdown()


if __name__ == "__main__":
    main(eager=False)
