#!/usr/bin/env python
"""Surviving a hostile network: fault injection, retries, failover, dead letters.

The paper's Alt pattern promises "go to the mirror if the primary is
down", and the post office promises messages eventually find a moving
naplet.  This walkthrough *breaks the network on purpose* and watches
those promises hold:

1. a seeded :class:`FaultPlan` drops the first NAPLET_TRANSFER frame and
   partitions one host — every run of this script sees the same faults;
2. a journey through ``alt(partitioned-primary, mirror)`` completes
   anyway: the retry policy re-sends through the dropped frame, the Alt
   failover routes around the partition;
3. a message aimed at the partitioned host exhausts its retry budget and
   is captured in the dead-letter queue (the send still raises — the
   caller is told the truth);
4. the partition heals, dead letters requeue automatically, and the
   redelivery re-resolves the target to where it actually lives.

Run:  python examples/chaos_space.py
"""

from __future__ import annotations

import repro
from repro.core.errors import NapletCommunicationError
from repro.faults import FaultPlan, RetryPolicy
from repro.itinerary import Itinerary, ResultReport, alt, seq, singleton
from repro.server import ServerConfig, SpaceAdmin, deploy
from repro.simnet import VirtualNetwork, full_mesh
from repro.transport.base import FrameKind, urn_of
from repro.util.concurrency import wait_until

HOSTS = ["h00", "h01", "h02", "h03"]


class Tourist(repro.Naplet):
    """Visits each stop, recording where it actually landed."""

    def on_start(self) -> None:
        context = self.require_context()
        visited = (self.state.get("visited") or []) + [context.hostname]
        self.state.set("visited", visited)
        self.travel()


class Sitter(repro.Naplet):
    """Stays resident at its first stop so mail can find it."""

    def on_start(self) -> None:
        import time

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            self.checkpoint()
            time.sleep(0.01)


def main() -> None:
    # -- 1. a seeded, replayable fault schedule --------------------------- #
    plan = (
        FaultPlan(seed=42)
        .drop(kind=FrameKind.NAPLET_TRANSFER, nth=1)  # lose the first transfer
        .partition("h02")                             # and isolate a host
    )
    network = VirtualNetwork(full_mesh(len(HOSTS), prefix="h"), fault_plan=plan)
    config = ServerConfig(
        migration_retry=RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0),
        message_retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
    )
    servers = deploy(network, config=config)
    admin = SpaceAdmin(servers)

    # -- 2. the journey survives both faults ------------------------------ #
    listener = repro.NapletListener()
    tourist = Tourist("tourist")
    tourist.set_itinerary(
        Itinerary(
            seq(
                alt("h02", "h01"),  # primary is partitioned -> mirror
                singleton("h03", post_action=ResultReport("visited")),
            )
        )
    )
    servers["h00"].launch(tourist, owner="demo", listener=listener)
    visited = listener.next_report(timeout=15).payload
    print("— journey under fire —")
    print("  itinerary : seq(alt(h02, h01), h03)   [h02 partitioned]")
    print(f"  visited   : {visited}")
    retries = servers["h00"].telemetry.migration_retries.value()
    print(f"  transfer retries burned at home: {retries:.0f}")

    # -- 3. a message into the partition dead-letters ---------------------- #
    sitter = Sitter("sitter")
    sitter.set_itinerary(Itinerary(seq("h01")))
    sitter_id = servers["h00"].launch(sitter, owner="demo")
    wait_until(lambda: servers["h01"].manager.is_resident(sitter_id), timeout=10)

    print("\n— messaging the partitioned host —")
    try:
        servers["h00"].messenger.post(
            None, sitter_id, {"op": "hello"}, dest_urn=urn_of("h02")
        )
    except NapletCommunicationError as exc:
        print(f"  post() raised as promised: {exc}")
    for host, letters in admin.dead_letters().items():
        for letter in letters:
            print(f"  dead letter at {host}: dest={letter['dest']} "
                  f"attempts={letter['attempts']}")

    # -- 4. heal: automatic requeue, re-routed delivery -------------------- #
    network.heal()
    wait_until(lambda: admin.dead_letter_depth() == 0, timeout=5)
    print("\n— after heal —")
    print(f"  dead-letter depth : {admin.dead_letter_depth()}")
    requeued = servers["h00"].telemetry.dead_letters_requeued.value()
    print(f"  letters requeued  : {requeued:.0f}")
    # The redelivery re-resolved the target and landed in the sitter's h01
    # mailbox — NOT at the dead h02 address the message was posted to.
    mailbox = servers["h01"].messenger.mailbox_of(sitter_id)
    print(
        "  redelivered to the sitter's REAL host (h01 mailbox): "
        f"{mailbox is not None and len(mailbox) == 1}"
    )

    print("\n— what the fault plan actually did —")
    for row in plan.summary():
        print(f"  {row['label']:<24} matched={row['matched']:<3} "
              f"fired={row['fired']}")

    admin.terminate(sitter_id)
    network.shutdown()


if __name__ == "__main__":
    main()
