#!/usr/bin/env python
"""Watching the space: load digests, the merged view, load-aware routing.

The observatory (DESIGN.md §6.8) gives every server a live picture of
the whole space without a single extra connection: each heartbeat rides
the channels earlier traffic already opened.  This walkthrough shows the
loop closing:

1. a warm-up tour opens the links, and one heartbeat later every server
   holds fresh digests of its peers — the merged ``SpaceView``;
2. a pack of parked residents makes ``s01`` visibly busy, and the next
   heartbeat carries the skew to the launcher;
3. an ``alt(s01, s02)`` journey — declared busy-first — is rerouted to
   the idle mirror, and the flight recorder holds the whole decision:
   which digests, how stale, what score, what order;
4. the busy server is partitioned; past ``stale_after`` its digest
   decays to *unknown* (never to idle) and navigation falls back to
   static declaration order, journaled with the reason.

Run:  python examples/space_observatory.py
"""

from __future__ import annotations

import time

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern, alt, seq, singleton
from repro.server import ServerConfig, SpaceAdmin, deploy
from repro.simnet import VirtualNetwork, full_mesh
from repro.telemetry import format_record

STALE_AFTER = 0.5


class Tourist(repro.Naplet):
    def on_start(self) -> None:
        context = self.require_context()
        visited = (self.state.get("visited") or []) + [context.hostname]
        self.state.set("visited", visited)
        self.travel()


class Parked(repro.Naplet):
    """Sits at its server doing very little — residency is the load."""

    def on_start(self) -> None:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            self.checkpoint()
            time.sleep(0.01)


def show_view(admin: SpaceAdmin, observer: str) -> None:
    view = admin.space_view()[observer]
    print(f"  {observer} sees:")
    for peer, entry in view["peers"].items():
        score = entry["score"]
        label = "unknown (stale)" if score is None else f"score {score:.1f}"
        print(f"    {peer:<6} {label:<18} age {entry['age_s']:.2f}s")


def main() -> None:
    network = VirtualNetwork(full_mesh(3, prefix="s"))
    servers = deploy(
        network,
        config=ServerConfig(load_cadence=0.1, load_stale_after=STALE_AFTER),
    )
    admin = SpaceAdmin(servers)
    try:
        # 1. Warm-up tour: its frames open the links the heartbeats will
        # ride.  A beat later, every server holds its peers' digests.
        warmup = Tourist("warmup")
        warmup.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(
                    ["s01", "s02"], post_action=ResultReport("visited")
                )
            )
        )
        listener = repro.NapletListener()
        servers["s00"].launch(warmup, owner="demo", listener=listener)
        listener.next_report(timeout=10)
        for server in servers.values():
            server.observatory.beat_now()
        print("=== 1. the merged space view after one heartbeat ===")
        show_view(admin, "s00")

        # 2. Pin a busy mirror: five parked residents at s01.
        for i in range(5):
            parked = Parked(f"parked-{i}")
            parked.set_itinerary(Itinerary(seq(singleton("s01"))))
            servers["s00"].launch(parked, owner="demo")
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if servers["s01"].manager.resident_count >= 5:
                break
            time.sleep(0.05)
        for server in servers.values():
            server.observatory.beat_now()
        print("\n=== 2. the view after pinning 5 residents at s01 ===")
        show_view(admin, "s00")

        # 3. An alt(s01, s02) journey, busy mirror declared first: the
        # Navigator consults the view and goes idle-first instead.
        tourist = Tourist("tourist")
        tourist.set_itinerary(
            Itinerary(
                seq(
                    alt(
                        singleton("s01", post_action=ResultReport("visited")),
                        singleton("s02", post_action=ResultReport("visited")),
                    )
                )
            )
        )
        listener = repro.NapletListener()
        servers["s00"].launch(tourist, owner="demo", listener=listener)
        report = listener.next_report(timeout=10)
        print("\n=== 3. alt(s01, s02) with s01 busy ===")
        print(f"  journey landed at: {report.payload[0]}")
        print(f"  reroutes at s00:   {servers['s00'].observatory.reroutes()}")
        print("  the decision, from the flight recorder alone:")
        for record in servers["s00"].journal.records(kind="load"):
            print("   ", format_record(record))

        # 4. Partition s01 and let its digest age out: unknown, not idle.
        network.partition_host("s01")
        time.sleep(STALE_AFTER + 0.3)
        print(f"\n=== 4. s01 partitioned, {STALE_AFTER}s stale_after elapsed ===")
        show_view(admin, "s00")
        blind = Tourist("blind")
        blind.set_itinerary(
            Itinerary(
                seq(
                    alt(
                        singleton("s02", post_action=ResultReport("visited")),
                        singleton("s01", post_action=ResultReport("visited")),
                    )
                )
            )
        )
        listener = repro.NapletListener()
        servers["s00"].launch(blind, owner="demo", listener=listener)
        report = listener.next_report(timeout=10)
        fallback = servers["s00"].journal.records(kind="load")[-1]
        print(f"  journey landed at: {report.payload[0]} (static declaration order)")
        print(f"  fallback reason:   {fallback.detail['fallback']}")
    finally:
        network.shutdown()


if __name__ == "__main__":
    main()
