#!/usr/bin/env python
"""Periodic network monitoring with a repeating itinerary (extension).

One monitoring naplet tours every managed device M times using
``repeat(seq(devices), M)`` and reports per-round CPU-load snapshots —
filtering at the source: only devices above the alert threshold appear in
the report, so the management station's link carries alerts, not samples.

Run:  python examples/periodic_monitoring.py
"""

from __future__ import annotations

import repro
from repro.itinerary import Itinerary, repeat, seq
from repro.man import SERVICE_NAME, net_management_factory
from repro.server import SpaceAdmin, deploy
from repro.simnet import VirtualNetwork, star
from repro.snmp import DeviceProfile, ManagedDevice, SnmpAgent

ROUNDS = 3
ALERT_THRESHOLD = 0.45


class MonitorNaplet(repro.Naplet):
    """Samples cpuLoad at each stop; keeps only above-threshold readings."""

    def on_start(self) -> None:
        context = self.require_context()
        if context.hostname == "station":
            self.travel()  # home stop: nothing to sample, just report
        channel = context.service_channel(SERVICE_NAME)
        channel.get_naplet_writer().write_line("cpuLoad;sysUpTime")
        sample = channel.get_naplet_reader().read_line()
        load = sample["cpuLoad"]
        alerts = list(self.state.get("alerts") or [])
        if load is not None and load >= ALERT_THRESHOLD:
            alerts.append((context.hostname, sample["sysUpTime"], load))
            self.state.set("alerts", alerts)
        samples = int(self.state.get("samples") or 0)
        self.state.set("samples", samples + 1)
        self.travel()


def main() -> None:
    network = VirtualNetwork(star(4, latency=0.001))
    servers = deploy(network)
    devices = sorted(h for h in servers if h != "station")
    for index, hostname in enumerate(devices):
        agent = SnmpAgent(ManagedDevice(DeviceProfile(hostname=hostname), seed=index * 3 + 1))
        servers[hostname].register_privileged_service(
            SERVICE_NAME, net_management_factory(agent)
        )

    from repro.itinerary import ResultReport, singleton

    listener = repro.NapletListener()
    monitor = MonitorNaplet("cpu-watch")
    tour = repeat(seq(*devices), ROUNDS)
    # return to the station at the end to deliver the alert digest
    plan = seq(tour, singleton("station", post_action=ResultReport()))
    monitor.set_itinerary(Itinerary(plan))

    admin = SpaceAdmin(servers)
    nid = servers["station"].launch(monitor, owner="noc", listener=listener)
    report = listener.next_report(timeout=30)

    payload = report.payload
    print(f"monitoring naplet : {nid}")
    print(f"rounds            : {ROUNDS} over {len(devices)} devices "
          f"({payload['samples']} device samples)")
    alerts = payload.get("alerts") or []
    print(f"alerts (load >= {ALERT_THRESHOLD}):")
    for hostname, uptime_ticks, load in alerts:
        print(f"  {hostname}: load={load:.2f} at uptime {uptime_ticks} ticks")
    print(f"journey           : {len(admin.trace(nid))} footprints across the space")
    assert payload["samples"] == ROUNDS * len(devices)
    network.shutdown()


if __name__ == "__main__":
    main()
