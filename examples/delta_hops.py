#!/usr/bin/env python
"""Delta state shipping, visibly (DESIGN.md §6.7).

A courier carries 256 KiB of immutable cargo and a tiny visit log on a
ping-pong tour between two servers.  With delta shipping (the default),
only the first hop toward each destination pays for the cargo; repeat
hops ship just the fields that changed since the base image the
destination acked.

The walkthrough shows the mechanism at three magnifications:

1. ``explain_delta`` *before the journey*: no cached base, everything
   ships — the classic full-image hop;
2. ``explain_delta`` *after the journey*: the serializer's base cache
   knows the cargo didn't move, so the next hop would ship a few hundred
   bytes and keep the cargo off the wire;
3. the per-hop cost table (``+d`` path suffix, ``saved`` column) and the
   ``naplet_delta_*`` counters tally what the journey actually saved.

Run:  python examples/delta_hops.py
"""

from __future__ import annotations

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.perf import explain_delta, render_hop_costs
from repro.server import SpaceAdmin, deploy
from repro.simnet import VirtualNetwork, line

ROUTE = ["d01", "d00"] * 3  # six hops between the same pair of servers
CARGO = b"\xc3" * (256 * 1024)


class Courier(repro.Naplet):
    """Immutable cargo, mutating visit log — delta shipping's home turf."""

    def __init__(self, name: str, cargo: bytes, **kwargs) -> None:
        super().__init__(name, **kwargs)
        self.cargo = cargo

    def on_start(self) -> None:
        context = self.require_context()
        visited = (self.state.get("visited") or []) + [context.hostname]
        self.state.set("visited", visited)
        self.travel()


def main() -> None:
    network = VirtualNetwork(line(2, prefix="d"))
    servers = deploy(network)
    try:
        agent = Courier("courier", cargo=CARGO)
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(ROUTE, post_action=ResultReport("visited"))
            )
        )
        launcher = servers["d00"]

        # 1. Before launch: the launcher has no base image for this
        #    naplet, so the delta view predicts a full ship — cargo and
        #    all.  (A pure probe: caches and dirty flags are untouched.)
        print("=== delta view before launch (no cached base) ===")
        print(explain_delta(agent, launcher.serializer).render())

        listener = repro.NapletListener()
        nid = launcher.launch(agent, owner="alice", listener=listener)

        report = listener.next_report(timeout=30)
        print(f"\ntour complete: {report.payload}")
        admin = SpaceAdmin(servers)
        admin.wait_space_idle()

        # 2. After the journey the launcher's cache holds the last image
        #    it saw; an unchanged cargo would ride the cache, not the wire.
        print("\n=== delta view after the journey ===")
        view = explain_delta(agent, launcher.serializer)
        print(view.render())

        # 3. What the hops actually cost: repeat hops show the ``+d``
        #    path and a fat ``saved`` column.
        records = admin.harvest_journal(category="perf")
        print("\n=== per-hop costs (delta hops marked +d) ===")
        print(render_hop_costs(records, naplet=str(nid)))

        delta_hops = sum(s.telemetry.delta_hops.total() for s in servers.values())
        saved = sum(s.telemetry.delta_saved_bytes.total() for s in servers.values())
        print(f"\n{int(delta_hops)} of {len(ROUTE)} hops shipped deltas, "
              f"keeping {int(saved):,} bytes off the wire")
    finally:
        network.shutdown()


if __name__ == "__main__":
    main()
