#!/usr/bin/env python
"""Parallel and sequential search with conditional visits (paper §3).

A "document" is hidden on one host's DataStore.  Two strategies find it:

- **sequential search**: one agent tours the hosts; every visit after the
  first is a *conditional visit* guarded on the search-done flag, so the
  route ends early once the document is found (the paper's
  ``<C -> S; T>`` motivating case);
- **parallel search**: a Par itinerary fans out one clone per host; each
  finder reports home, and the home side terminates the still-running
  siblings with a system TERMINATE message — "success of the search in a
  naplet may need to terminate the execution of the others".

Run:  python examples/parallel_search.py
"""

from __future__ import annotations

import queue

import repro
from repro.hpc import DATASTORE_SERVICE, DataStore
from repro.itinerary import (
    Itinerary,
    ParPattern,
    ResultReport,
    SeqPattern,
    StateFlagClear,
)
from repro.server import deploy
from repro.simnet import VirtualNetwork, ring


class SearchNaplet(repro.Naplet):
    """Looks for a named document in each host's datastore."""

    def __init__(self, name: str, document: str, **kwargs) -> None:
        super().__init__(name, **kwargs)
        self.document = document

    def on_start(self) -> None:
        context = self.require_context()
        store = context.open_service(DATASTORE_SERVICE)
        if store.has(self.document):
            self.state.set("found_at", context.hostname)
            self.state.set("done", True)  # trips the conditional guards
            print(f"  [{context.hostname}] found {self.document!r}!")
        else:
            print(f"  [{context.hostname}] not here")
        self.travel()


def build_network(n: int, hide_at: str, document: str):
    network = VirtualNetwork(ring(n, prefix="node", latency=0.001))
    servers = deploy(network)
    for hostname, server in servers.items():
        store = DataStore()
        if hostname == hide_at:
            store.put(document, [1.0])
        server.register_open_service(DATASTORE_SERVICE, store)
    return network, servers


def sequential(document: str = "report.pdf") -> None:
    print("— sequential search (conditional visits stop the tour early) —")
    network, servers = build_network(6, hide_at="node02", document=document)
    route = [f"node{i:02d}" for i in range(1, 6)]
    listener = repro.NapletListener()
    agent = SearchNaplet("seq-searcher", document)
    # Conditional tour, then return home to report whatever was found —
    # the guarded visits are skipped once state["done"] trips.
    from repro.itinerary import SingletonPattern, seq

    tour = SeqPattern.of_servers(route, guard=StateFlagClear("done"))
    report_home = SingletonPattern.to("node00", post_action=ResultReport("found_at"))
    agent.set_itinerary(Itinerary(seq(tour, report_home)))
    servers["node00"].launch(agent, owner="searcher", listener=listener)
    report = listener.next_report(timeout=10)
    print(f"found at: {report.payload}  (tour ended early, remaining visits skipped)\n")
    network.shutdown()


def parallel(document: str = "report.pdf") -> None:
    print("— parallel search (first hit terminates the siblings) —")
    network, servers = build_network(6, hide_at="node04", document=document)
    targets = [f"node{i:02d}" for i in range(1, 6)]
    listener = repro.NapletListener()
    agent = SearchNaplet("par-searcher", document)
    agent.set_itinerary(
        Itinerary(
            ParPattern.of_servers(targets, per_branch_action=ResultReport("found_at"))
        )
    )
    home = servers["node00"]
    home.launch(agent, owner="searcher", listener=listener)

    winner = None
    losers = []
    for _ in targets:
        try:
            envelope = listener.next_report(timeout=10)
        except queue.Empty:
            break
        if envelope.payload is not None and winner is None:
            winner = envelope
            # Terminate the remaining siblings by naplet id.
            for nid in agent.address_book.naplet_ids():
                if nid != envelope.reporter:
                    try:
                        home.terminate_naplet(nid)
                    except repro.NapletError:
                        pass  # already finished
        else:
            losers.append(envelope.reporter)
    assert winner is not None
    print(f"winner: {winner.reporter} found it at {winner.payload}")
    network.shutdown()


if __name__ == "__main__":
    sequential()
    parallel()
