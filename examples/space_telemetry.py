#!/usr/bin/env python
"""Observing a naplet space from the inside.

The paper's MAN agents itinerate a network harvesting SNMP variables; here
observability itself is the network-centric workload.  A *monitoring
naplet* tours every host, opens the ``telemetry`` service each server
exposes, and carries the per-server metric snapshots home in its state.
Back home we print:

1. the table the monitoring naplet assembled host by host;
2. the space-wide merged metrics (``SpaceAdmin.space_metrics``), which
   also fold in the transport's wire counters;
3. the monitoring naplet's **own journey tree** — every hop, landing and
   post-action of the telemetry sweep, stitched from the per-server
   tracers (``SpaceAdmin.journey``).

Run:  python examples/space_telemetry.py
"""

from __future__ import annotations

import repro
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.server import SpaceAdmin, deploy
from repro.simnet import VirtualNetwork, full_mesh
from repro.util.concurrency import wait_until


class TelemetryHarvester(repro.Naplet):
    """Tours the space; at each stop harvests the local telemetry service."""

    def on_start(self) -> None:
        context = self.require_context()
        service = context.open_service("telemetry")
        snap = service.metrics()
        harvested = self.state.get("harvested") or []
        harvested.append(
            {
                "host": service.hostname,
                "landings": snap.total("naplet_landings_total"),
                "hops": snap.total("naplet_hops_total"),
                "delivered": snap.total("naplet_messages_delivered_total"),
                "spans": len(service.spans()),
            }
        )
        self.state.set("harvested", harvested)
        self.travel()


class Tourist(repro.Naplet):
    """Background traffic: hops its line and reports home."""

    def on_start(self) -> None:
        self.travel()


def generate_traffic(servers) -> None:
    """A little background work so the harvest has something to show."""
    listener = repro.NapletListener()
    for i in range(3):
        agent = Tourist(f"tourist-{i}")
        agent.set_itinerary(
            Itinerary(
                SeqPattern.of_servers(
                    ["h01", "h02", "h03"], post_action=ResultReport("done")
                )
            )
        )
        servers["h00"].launch(agent, owner="traffic", listener=listener)
        listener.next_report(timeout=10)


def main() -> None:
    network = VirtualNetwork(full_mesh(4, prefix="h"))
    servers = deploy(network)
    admin = SpaceAdmin(servers)

    generate_traffic(servers)

    listener = repro.NapletListener()
    harvester = TelemetryHarvester("harvester")
    harvester.set_itinerary(
        Itinerary(
            SeqPattern.of_servers(
                ["h00", "h01", "h02", "h03"],
                post_action=ResultReport("harvested"),
            )
        )
    )
    nid = servers["h00"].launch(harvester, owner="noc", listener=listener)
    rows = listener.next_report(timeout=15).payload
    admin.wait_space_idle()
    # A hop span closes on the *source* server only after the destination
    # acknowledged the landing; give the last one a beat to flush so the
    # journey stitches to a single root.
    wait_until(lambda: len(admin.journey(nid).roots) == 1)

    print("— per-host snapshot (harvested in-space by the naplet) —")
    print(f"  {'host':<6}{'landings':>9}{'hops':>6}{'delivered':>11}{'spans':>7}")
    for row in rows:
        print(
            f"  {row['host']:<6}{row['landings']:>9.0f}{row['hops']:>6.0f}"
            f"{row['delivered']:>11.0f}{row['spans']:>7}"
        )

    merged = admin.space_metrics()
    print("\n— space-wide merged counters —")
    for name in (
        "naplet_launches_total",
        "naplet_hops_total",
        "naplet_landings_total",
        "naplet_frame_bytes_total",
        "wire_frames_total",
        "wire_bytes_total",
    ):
        print(f"  {name:<28} {merged.total(name):,.0f}")
    latency = merged.value("naplet_hop_latency_seconds")
    print(
        f"  hop latency: {latency.count:.0f} hops, "
        f"mean {latency.mean * 1e3:.2f} ms"
    )

    print("\n— the harvester's own journey —")
    print(admin.journey(nid).render())

    network.shutdown()


if __name__ == "__main__":
    main()
