#!/usr/bin/env python
"""Operating a naplet space: monitoring, control, freeze/thaw.

A small operations story over one space:

1. several long-running worker naplets are launched across the hosts;
2. the SpaceAdmin console shows who is alive where, with usage numbers;
3. one misbehaving worker is suspended, inspected, resumed;
4. another is **frozen** — checkpointed to bytes (as if its server were
   being drained for maintenance) — and **thawed** on a different host,
   where it carries on;
5. finally everything is terminated and the per-server summary printed.

Run:  python examples/space_administration.py
"""

from __future__ import annotations

import time

import repro
from repro.itinerary import Itinerary, seq
from repro.server import SpaceAdmin, deploy
from repro.simnet import VirtualNetwork, full_mesh


class Worker(repro.Naplet):
    """Simulates a long-running measurement job; checkpoints cooperatively."""

    def on_start(self) -> None:
        rounds = int(self.state.get("rounds") or 0)
        while True:
            rounds += 1
            self.state.set("rounds", rounds)
            self.checkpoint()
            time.sleep(0.01)


def main() -> None:
    network = VirtualNetwork(full_mesh(4, prefix="op"))
    servers = deploy(network)
    admin = SpaceAdmin(servers)

    ids = []
    for index, host in enumerate(["op01", "op02", "op03"]):
        worker = Worker(f"job-{index}")
        worker.set_itinerary(Itinerary(seq(host)))
        ids.append(servers["op00"].launch(worker, owner="ops"))
    time.sleep(0.15)

    print("— alive naplets —")
    for nid, host in sorted(admin.alive_naplets().items(), key=lambda kv: str(kv[0])):
        status = admin.status(nid)
        print(f"  {nid} @ {host}  cpu={status.cpu_seconds:.3f}s")

    # suspend / inspect / resume the first worker
    victim = ids[0]
    admin.suspend(victim)
    time.sleep(0.1)
    print(f"\nsuspended {victim}; still alive: {admin.status(victim).alive}")
    admin.resume(victim)

    # freeze the second worker and revive it on a different host
    frozen_id = ids[1]
    host_before = admin.locate(frozen_id)
    image = servers[host_before].freeze_naplet(frozen_id)
    print(f"\nfroze {frozen_id} on {host_before}: {len(image)} bytes")
    servers["op03"].thaw_naplet(image)
    time.sleep(0.1)
    print(f"thawed on {admin.locate(frozen_id)} "
          f"(journey so far: {len(admin.trace(frozen_id))} footprints)")

    killed = admin.terminate_all()
    admin.wait_space_idle(10)
    print(f"\nterminated {killed} naplets; space summary:")
    for row in admin.space_summary():
        print(f"  {row.hostname}: admitted={row.admitted_total} "
              f"outcomes={row.outcomes}")
    network.shutdown()


if __name__ == "__main__":
    main()
