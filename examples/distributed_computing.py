#!/usr/bin/env python
"""Distributed computation with compute naplets (the Traveler heritage).

Two workloads on a five-host mesh:

1. **Monte-Carlo pi** — a Par itinerary fans one clone out per host; each
   clone draws its samples through the host's open math service and
   reports a partial count home;
2. **data-local mean** — numpy shards live in per-host DataStores; a Seq
   tour accumulates (sum, count) on-site and reports one global pair, so
   only a few floats ever cross the network instead of the raw arrays.

Run:  python examples/distributed_computing.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.hpc import (
    DATASTORE_SERVICE,
    MATH_SERVICE,
    DataStore,
    MathService,
    MonteCarloPiNaplet,
    ShardAggregateNaplet,
    combine_mean_reports,
    combine_pi_reports,
)
from repro.server import deploy
from repro.simnet import VirtualNetwork, full_mesh


def main() -> None:
    network = VirtualNetwork(full_mesh(5, prefix="node", latency=0.001))
    servers = deploy(network)

    rng = np.random.default_rng(7)
    shard_bytes = 0
    for server in servers.values():
        server.register_open_service(MATH_SERVICE, MathService())
        store = DataStore()
        shard = rng.normal(20.0, 5.0, size=50_000)
        shard_bytes += shard.nbytes
        store.put("telemetry", shard)
        server.register_open_service(DATASTORE_SERVICE, store)

    home = "node00"
    workers = [h for h in sorted(servers) if h != home]

    # --- Monte-Carlo pi ------------------------------------------------- #
    listener = repro.NapletListener()
    pi_agent = MonteCarloPiNaplet("pi", workers, samples_per_host=400_000)
    servers[home].launch(pi_agent, owner="hpc", listener=listener)
    estimate = combine_pi_reports(listener, expected=len(workers))
    print(f"monte-carlo pi over {len(workers)} hosts: {estimate:.5f} "
          f"(error {abs(estimate - np.pi):.5f})")

    # --- data-local mean -------------------------------------------------- #
    network.meter.reset()
    listener2 = repro.NapletListener()
    mean_agent = ShardAggregateNaplet("mean", workers, shard_key="telemetry", mode="seq")
    servers[home].launch(mean_agent, owner="hpc", listener=listener2)
    reports = listener2.reports(1, timeout=15)
    mean = combine_mean_reports(reports)
    moved = network.meter.total_bytes
    print(f"global mean of {len(workers)} shards: {mean:.4f}")
    print(f"bytes moved by the agent: {moved}  "
          f"(raw shards would have been {shard_bytes} bytes)")
    print(f"data-reduction factor: {shard_bytes / max(moved, 1):,.0f}x")
    network.shutdown()


if __name__ == "__main__":
    main()
