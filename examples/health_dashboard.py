#!/usr/bin/env python
"""The health plane end to end: watchdog, critical path, Chrome trace.

A chaos space (seeded delays) runs three workloads:

1. a **worker** touring the ring and burning CPU at each stop — it shows
   up in the per-naplet resource profiles;
2. a **wedged** naplet that sleeps without checkpointing — the watchdog
   flags it as a ``stuck_naplet`` finding within one deadline;
3. a **health probe** (:class:`repro.health.HealthProbeNaplet`) touring
   the space and harvesting every server's health snapshot over the
   ``telemetry`` open service, the way ``tools/napletstat.py`` polls a
   space it cannot reach in-process.

Then the worker's journey is stitched and analysed: ``critical_path()``
attributes each hop's latency to serialize / wire / landing / execute
segments (the injected delays make the wire dominate), and the whole run
— spans, resource-profile counters, injected-fault instants — is
exported as a Chrome trace-event JSON you can load in ``chrome://tracing``
or https://ui.perfetto.dev.

Run:  python examples/health_dashboard.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import repro
from repro.faults import FaultPlan
from repro.itinerary import Itinerary, ResultReport, SeqPattern
from repro.itinerary.pattern import singleton
from repro.health import harvest_via_probe
from repro.server import ServerConfig, SpaceAdmin, deploy
from repro.simnet import VirtualNetwork, ring
from repro.telemetry import write_chrome_trace


class RingWorker(repro.Naplet):
    """Computes at each stop (checkpointing), then travels on."""

    def on_start(self) -> None:
        total = self.state.get("total") or 0
        for _ in range(30):
            total += sum(j * j for j in range(5000))
            self.checkpoint()
        self.state.set("total", total)
        self.travel()


class WedgedNaplet(repro.Naplet):
    """Sleeps forever without checkpointing: no CPU, no messages, no exit."""

    def on_start(self) -> None:
        while True:
            time.sleep(0.2)


def main() -> None:
    plan = FaultPlan(seed=11).delay(0.003)
    network = VirtualNetwork(ring(4, prefix="h"), fault_plan=plan)
    servers = deploy(
        network,
        config=ServerConfig(health_cadence=0.1, health_stuck_deadline=0.4),
    )
    admin = SpaceAdmin(servers)
    hosts = network.hostnames()

    listener = repro.NapletListener()
    worker = RingWorker("ring-worker")
    worker.set_itinerary(
        Itinerary(
            SeqPattern.of_servers(hosts[1:] * 2, post_action=ResultReport("total"))
        )
    )
    worker_nid = servers[hosts[0]].launch(worker, owner="demo", listener=listener)

    wedged = WedgedNaplet("wedged")
    wedged.set_itinerary(Itinerary(singleton(hosts[1])))
    servers[hosts[0]].launch(wedged, owner="demo")

    listener.next_report(timeout=30)

    # Give the watchdog a couple of cadence periods to flag the sleeper.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline and not admin.space_findings():
        time.sleep(0.05)

    print("— watchdog findings (SpaceAdmin.space_findings) —")
    for finding in admin.space_findings():
        print(f"  {finding}")

    print("\n— health harvest, carried home by a probe naplet —")
    probe_listener = repro.NapletListener()
    rows = harvest_via_probe(servers[hosts[0]], hosts, probe_listener)
    for row in rows:
        health = row.get("health", {})
        print(
            f"  {row['server']}: {len(health.get('profiles', []))} profiles, "
            f"{len(health.get('findings', []))} findings, "
            f"dead letters {health.get('dead_letter_depth', 0)}"
        )

    print("\n— the worker's critical path —")
    journey = admin.journey(worker_nid)
    print(journey.critical_path().render())

    trace_path = Path(tempfile.gettempdir()) / "naplet_health_trace.json"
    trace = write_chrome_trace(
        str(trace_path),
        journey,
        profiles=admin.top_naplets_by_cpu(10),
        fault_records=network.fault_records(),
    )
    print(
        f"\nChrome trace: {len(trace['traceEvents'])} events -> {trace_path}\n"
        "(load it in chrome://tracing or https://ui.perfetto.dev)"
    )

    network.shutdown()


if __name__ == "__main__":
    main()
