"""repro — a Python reproduction of the Naplet mobile agent framework.

    Naplet: A Flexible Mobile Agent Framework for Network-Centric
    Applications.  Cheng-Zhong Xu, IPPS/IPDPS 2002.

Public surface (see README.md for the tour):

- :mod:`repro.core`         — the Naplet agent programming model
- :mod:`repro.itinerary`    — structured itineraries (seq/alt/par algebra)
- :mod:`repro.server`       — the NapletServer architecture (7 components)
- :mod:`repro.transport`    — frames, in-memory + TCP transports, serializer
- :mod:`repro.codeshipping` — codebases and lazy class loading
- :mod:`repro.faults`       — fault injection, retry policies, dead letters
- :mod:`repro.simnet`       — virtual networks, topologies, traffic metering
- :mod:`repro.snmp`         — simulated SNMP/MIB substrate (paper §6)
- :mod:`repro.man`          — mobile-agent network management application
- :mod:`repro.hpc`          — distributed-computation workloads
"""

from repro.core import (
    AddressBook,
    Credential,
    Naplet,
    NapletError,
    NapletID,
    NapletListener,
    NapletState,
    SigningAuthority,
)
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.itinerary import Itinerary, JoinPolicy, alt, par, seq, singleton
from repro.server import (
    NapletServer,
    ResourceQuota,
    SecurityPolicy,
    ServerConfig,
    deploy,
)
from repro.simnet import VirtualNetwork

__version__ = "0.1.0"

__all__ = [
    "Naplet",
    "NapletID",
    "NapletState",
    "NapletListener",
    "AddressBook",
    "Credential",
    "SigningAuthority",
    "NapletError",
    "Itinerary",
    "JoinPolicy",
    "seq",
    "alt",
    "par",
    "singleton",
    "NapletServer",
    "ServerConfig",
    "SecurityPolicy",
    "ResourceQuota",
    "deploy",
    "VirtualNetwork",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "__version__",
]
