"""Deterministic fault injection and resilience policies.

This package supplies both halves of the reliability story promised by the
Naplet paper's "reliable location-independent communication":

- the *attack* side — :class:`FaultPlan` / :class:`FaultInjector`, a
  seeded, declarative way to drop, delay, duplicate, and corrupt frames,
  refuse dials, partition hosts, and crash mid-transfer, wrapped around
  any transport;
- the *defense* side — :class:`RetryPolicy` (bounded exponential backoff
  with seeded jitter, applied to migrations and messenger sends) and the
  :class:`DeadLetterQueue` that catches messages the retries could not
  save, for requeue once the network heals.

See DESIGN.md section 6.3 for the full fault model and semantics.
"""

from repro.faults.deadletter import DeadLetter, DeadLetterQueue
from repro.faults.engine import FaultInjector, FaultRecord, InjectedFault
from repro.faults.plan import FaultAction, FaultDecision, FaultPlan, FaultRule
from repro.faults.retry import RetryPolicy, no_retry

__all__ = [
    "FaultAction",
    "FaultDecision",
    "FaultPlan",
    "FaultRule",
    "FaultInjector",
    "FaultRecord",
    "InjectedFault",
    "RetryPolicy",
    "no_retry",
    "DeadLetter",
    "DeadLetterQueue",
]
