"""Fault injector: a transparent transport wrapper that executes a FaultPlan.

The :class:`FaultInjector` duck-types the :class:`~repro.transport.base.
Transport` surface the rest of the framework uses — ``send``, ``request``,
and attribute fall-through to the wrapped transport for everything else
(``register``, ``unregister``, ``metrics``, ``clock``, ``close`` …).  It is
deliberately *not* a ``Transport`` subclass: subclassing would mint a second
metrics registry and event-log plumbing, whereas the whole point is that
servers bound to the injector are indistinguishable from servers bound to
the raw transport.

Per-frame behavior, applied in order:

1. partitions and rules are consulted via ``plan.decide(frame)``;
2. refuse-dial / crash-before / drop stop the frame: ``request`` raises
   :class:`NapletCommunicationError`, one-way ``send`` loses the frame
   silently (real packet loss is silent);
3. delay pauses — virtually, through the inner transport's ``SimClock``
   when it has one, so simulated chaos costs no wall-clock time;
4. corrupt mangles the leading payload bytes so downstream
   deserialization deterministically fails;
5. duplicate delivers a best-effort extra copy *before* the real exchange,
   exercising the receiver's idempotence;
6. crash-after lets the exchange complete, then raises anyway — the
   lost-ack half of the two-generals problem.

Every fired fault increments ``fault_injected_total{fault=...}`` on the
*inner* transport's registry, so :meth:`SpaceAdmin.space_metrics` and the
exposition endpoint pick the counters up with no extra wiring.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.errors import NapletCommunicationError
from repro.faults.plan import FaultDecision, FaultPlan
from repro.transport.base import Frame

__all__ = ["FaultInjector", "FaultRecord", "InjectedFault"]

_CORRUPT_MARK = b"\xde\xad"
_RECORD_CAPACITY = 1024


@dataclass(frozen=True)
class FaultRecord:
    """One fired fault, annotated for trace timelines.

    The metrics counter answers *how many*; records answer *when and to
    whom*, which is what the Chrome trace exporter needs to pin injected
    faults onto the same monotonic timeline as the spans they disturbed.
    """

    labels: tuple[str, ...]
    kind: str  # frame kind the fault hit
    source: str
    dest: str
    wall: float
    mono: float

    def describe(self) -> dict:
        return {
            "labels": list(self.labels),
            "kind": self.kind,
            "source": self.source,
            "dest": self.dest,
            "wall": self.wall,
            "mono": self.mono,
        }


class InjectedFault(NapletCommunicationError):
    """A fault-plan rule refused, dropped, or crashed this exchange."""


class FaultInjector:
    """Wrap any transport and misbehave according to a :class:`FaultPlan`."""

    def __init__(
        self,
        inner,
        plan: FaultPlan | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        self._sleep = sleep
        self._fault_counter = inner.metrics.counter(
            "fault_injected_total", "Faults injected into the wire, by fault label."
        )
        self._records: deque[FaultRecord] = deque(maxlen=_RECORD_CAPACITY)
        # Flight-recorder journals by endpoint URN; each fired fault is
        # journaled at the *source* endpoint only, so a space-wide causal
        # merge sees it exactly once.
        self._journals: dict[str, Any] = {}

    # Everything the framework asks of a transport that we do not
    # intercept — register, unregister, bind_event_log, metrics, clock,
    # fail_link, close, … — falls through to the wrapped instance.
    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    # -- fault mechanics ----------------------------------------------------- #

    def _pause(self, seconds: float) -> None:
        if seconds <= 0:
            return
        if self._sleep is not None:
            self._sleep(seconds)
            return
        clock = getattr(self.inner, "clock", None)
        if clock is not None and hasattr(clock, "advance"):
            clock.advance(seconds)
        else:
            time.sleep(seconds)

    def bind_journal(self, urn: str, journal: Any) -> None:
        """Journal faults fired on frames *from* this endpoint into *journal*."""
        self._journals[urn] = journal

    def _count(self, decision: FaultDecision, frame: Frame) -> None:
        for label in decision.labels:
            self._fault_counter.inc(fault=label)
        record = FaultRecord(
            labels=tuple(decision.labels),
            kind=str(frame.kind),
            source=frame.source,
            dest=frame.dest,
            wall=time.time(),
            mono=time.monotonic(),
        )
        self._records.append(record)
        journal = self._journals.get(frame.source)
        if journal is not None:
            journal.observe_fault(record)

    def records(self) -> list[FaultRecord]:
        """Fired faults in firing order (bounded to the most recent 1024)."""
        return list(self._records)

    @staticmethod
    def _corrupted(frame: Frame) -> Frame:
        payload = frame.payload
        if isinstance(payload, (bytes, bytearray)) and len(payload) >= len(_CORRUPT_MARK):
            payload = _CORRUPT_MARK + bytes(payload[len(_CORRUPT_MARK):])
        else:
            payload = _CORRUPT_MARK
        return Frame(
            kind=frame.kind,
            source=frame.source,
            dest=frame.dest,
            payload=payload,
            headers=dict(frame.headers),
        )

    def _fail(self, decision: FaultDecision, frame: Frame) -> InjectedFault:
        reason = "refused dial" if decision.refuse_dial else (
            "crashed" if decision.crash_before or decision.crash_after else "dropped"
        )
        return InjectedFault(
            f"injected fault ({'+'.join(decision.labels) or reason}): "
            f"{frame.kind} {frame.source} -> {frame.dest} {reason}"
        )

    # -- transport surface --------------------------------------------------- #

    def send(self, frame: Frame) -> None:
        decision = self.plan.decide(frame)
        if not decision.labels:
            self.inner.send(frame)
            return
        self._count(decision, frame)
        if decision.terminal:
            return  # one-way loss is silent, like the real network
        self._pause(decision.delay)
        wire = self._corrupted(frame) if decision.corrupt else frame
        if decision.duplicate:
            try:
                self.inner.send(wire)
            except Exception:
                pass
        try:
            self.inner.send(wire)
        except NapletCommunicationError:
            raise
        except Exception as exc:
            # A corrupted one-way frame may blow up inside a synchronous
            # in-memory handler; normalize to the wire-error contract.
            raise InjectedFault(f"injected corruption broke delivery: {exc}") from exc
        if decision.crash_after:
            raise self._fail(decision, frame)

    def request(self, frame: Frame, timeout: float | None = None) -> bytes:
        decision = self.plan.decide(frame)
        if not decision.labels:
            return self.inner.request(frame, timeout)
        self._count(decision, frame)
        if decision.terminal:
            raise self._fail(decision, frame)
        self._pause(decision.delay)
        wire = self._corrupted(frame) if decision.corrupt else frame
        if decision.duplicate:
            # Best-effort extra delivery ahead of the real exchange; the
            # receiver's dedup machinery must make this invisible.
            try:
                self.inner.request(wire, timeout)
            except Exception:
                pass
        try:
            reply = self.inner.request(wire, timeout)
        except NapletCommunicationError:
            raise
        except Exception as exc:
            raise InjectedFault(f"injected corruption broke request: {exc}") from exc
        if decision.crash_after:
            raise self._fail(decision, frame)
        return reply

    # -- convenience --------------------------------------------------------- #

    def heal(self) -> None:
        self.plan.heal()

    def close(self) -> None:
        self.inner.close()
