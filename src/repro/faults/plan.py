"""Fault-plan grammar: declarative, seeded descriptions of network misbehavior.

A :class:`FaultPlan` is an ordered list of :class:`FaultRule`\\ s plus a set
of partitioned hosts.  Each rule pairs a match predicate (frame kind,
source host, destination host, nth matching occurrence, firing budget,
probability) with an action:

``drop``
    swallow the frame (one-way sends vanish; requests fail).
``delay``
    hold the frame for N seconds before delivery.
``duplicate``
    deliver the frame twice.
``corrupt``
    flip the leading payload bytes so deserialization fails downstream.
``refuse_dial``
    fail before any bytes move — a connection refused.
``crash``
    deliver-then-fail (``when="after"``, the classic lost-ack) or
    fail-before-delivery (``when="before"``); used for one-shot
    "crash during NAPLET_TRANSFER" scenarios.

Rules are evaluated in declaration order by the
:class:`~repro.faults.engine.FaultInjector`; probability draws come from a
single seeded :class:`random.Random` owned by the plan, so a seeded plan
replayed against the same traffic makes identical decisions.  Partitions
are checked before any rule and drop traffic in both directions.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.transport.base import Frame, FrameKind, host_of

__all__ = ["FaultAction", "FaultRule", "FaultDecision", "FaultPlan"]


class FaultAction:
    """Action vocabulary for fault rules."""

    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    CORRUPT = "corrupt"
    REFUSE_DIAL = "refuse_dial"
    CRASH = "crash"


@dataclass
class FaultRule:
    """One match-predicate/action pair inside a plan.

    Matching fields left ``None`` match anything.  ``src``/``dst`` match
    the *host* portion of frame endpoints, so a rule written against
    hostnames applies to every component URN on that host.  ``nth`` fires
    the rule only on the nth matching frame (1-based); ``times`` caps how
    often the rule may fire (``None`` = unlimited); ``probability`` gates
    each firing on a seeded coin flip.
    """

    action: str
    kind: str | None = None
    src: str | None = None
    dst: str | None = None
    nth: int | None = None
    times: int | None = None
    probability: float = 1.0
    delay: float = 0.0
    when: str = "after"  # for CRASH: "before" or "after" delivery
    label: str = ""
    matched: int = field(default=0, repr=False)
    fired: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        if self.when not in ("before", "after"):
            raise ValueError("when must be 'before' or 'after'")
        if not self.label:
            self.label = self.action

    @property
    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times

    def matches(self, frame: Frame) -> bool:
        if self.kind is not None and frame.kind != self.kind:
            return False
        if self.src is not None and host_of(frame.source) != self.src:
            return False
        if self.dst is not None and host_of(frame.dest) != self.dst:
            return False
        return True


@dataclass
class FaultDecision:
    """What the injector should do to one frame, composed across rules."""

    drop: bool = False
    refuse_dial: bool = False
    crash_before: bool = False
    crash_after: bool = False
    corrupt: bool = False
    duplicate: bool = False
    delay: float = 0.0
    labels: list[str] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        """True when the frame never reaches (or never cleanly leaves) the peer."""
        return self.drop or self.refuse_dial or self.crash_before


class FaultPlan:
    """Ordered, seeded rule set consulted for every frame on the wire."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: list[FaultRule] = []
        self._partitioned: set[str] = set()
        self._lock = threading.Lock()
        self._heal_listeners: list = []

    # -- builder vocabulary ------------------------------------------------- #

    def rule(self, rule: FaultRule) -> "FaultPlan":
        with self._lock:
            self._rules.append(rule)
        return self

    def drop(self, **match) -> "FaultPlan":
        return self.rule(FaultRule(FaultAction.DROP, **match))

    def delay(self, seconds: float, **match) -> "FaultPlan":
        return self.rule(FaultRule(FaultAction.DELAY, delay=seconds, **match))

    def duplicate(self, **match) -> "FaultPlan":
        return self.rule(FaultRule(FaultAction.DUPLICATE, **match))

    def corrupt(self, **match) -> "FaultPlan":
        return self.rule(FaultRule(FaultAction.CORRUPT, **match))

    def refuse_dial(self, **match) -> "FaultPlan":
        return self.rule(FaultRule(FaultAction.REFUSE_DIAL, **match))

    def kill_link(self, src: str, dst: str, sends: int | None = None) -> "FaultPlan":
        """Drop everything from *src* to *dst*, optionally only for N sends."""
        return self.rule(FaultRule(FaultAction.DROP, src=src, dst=dst, times=sends,
                                   label=f"kill_link:{src}->{dst}"))

    def partition(self, *hosts: str) -> "FaultPlan":
        """Isolate *hosts*: all traffic to or from them is dropped."""
        with self._lock:
            self._partitioned.update(hosts)
        return self

    def crash_during_transfer(self, dst: str | None = None, when: str = "after",
                              nth: int = 1) -> "FaultPlan":
        """One-shot crash around the nth NAPLET_TRANSFER (lost-ack by default)."""
        return self.rule(FaultRule(
            FaultAction.CRASH, kind=FrameKind.NAPLET_TRANSFER, dst=dst,
            nth=nth, times=1, when=when, label="crash_during_transfer",
        ))

    # -- healing ------------------------------------------------------------ #

    def heal(self) -> None:
        """Clear partitions and exhaust every rule: the network is whole again."""
        with self._lock:
            self._partitioned.clear()
            for rule in self._rules:
                rule.times = rule.fired
        self._notify_heal()

    def heal_host(self, host: str) -> None:
        """Lift one partition.  Unlike :meth:`heal`, a partial heal does
        NOT fire the heal listeners — other faults may still be active, so
        automatic dead-letter requeue stays an operator decision (via
        ``SpaceAdmin.requeue_dead_letters``) until the full heal."""
        with self._lock:
            self._partitioned.discard(host)

    def is_partitioned(self, host: str) -> bool:
        with self._lock:
            return host in self._partitioned

    def on_heal(self, callback) -> None:
        """Register *callback* to run after any heal (dead-letter requeue hook)."""
        self._heal_listeners.append(callback)

    def _notify_heal(self) -> None:
        for callback in list(self._heal_listeners):
            callback()

    # -- evaluation --------------------------------------------------------- #

    def decide(self, frame: Frame) -> FaultDecision:
        """Fold every applicable rule into one decision for *frame*.

        Terminal actions (drop / refuse-dial / crash-before) stop rule
        evaluation; delay, duplicate, corrupt, and crash-after compose.
        """
        decision = FaultDecision()
        with self._lock:
            src_host, dst_host = host_of(frame.source), host_of(frame.dest)
            if src_host in self._partitioned or dst_host in self._partitioned:
                decision.drop = True
                decision.labels.append("partition")
                return decision
            for rule in self._rules:
                if not rule.matches(frame):
                    continue
                rule.matched += 1
                if rule.exhausted:
                    continue
                if rule.nth is not None and rule.matched != rule.nth:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                rule.fired += 1
                decision.labels.append(rule.label)
                if rule.action == FaultAction.DROP:
                    decision.drop = True
                elif rule.action == FaultAction.REFUSE_DIAL:
                    decision.refuse_dial = True
                elif rule.action == FaultAction.CRASH:
                    if rule.when == "before":
                        decision.crash_before = True
                    else:
                        decision.crash_after = True
                elif rule.action == FaultAction.DELAY:
                    decision.delay += rule.delay
                elif rule.action == FaultAction.DUPLICATE:
                    decision.duplicate = True
                elif rule.action == FaultAction.CORRUPT:
                    decision.corrupt = True
                if decision.terminal:
                    break
        return decision

    # -- introspection ------------------------------------------------------ #

    def summary(self) -> list[dict]:
        with self._lock:
            return [
                {
                    "label": rule.label,
                    "action": rule.action,
                    "matched": rule.matched,
                    "fired": rule.fired,
                    "exhausted": rule.exhausted,
                }
                for rule in self._rules
            ]
