"""Retry policies: bounded exponential backoff with seeded jitter.

A :class:`RetryPolicy` describes how many times an operation may be
attempted and how long to wait between attempts.  The schedule is
exponential backoff capped at ``max_delay`` with multiplicative jitter;
both the jitter source (a seeded :class:`random.Random`) and the sleep
primitive are injectable, so the same policy object drives production
retries (real sleeps, fresh entropy) and deterministic tests (fixed seed,
no-op sleep or a :class:`~repro.transport.clock.SimClock` advance).

``max_attempts=1`` is the degenerate policy: one try, no retry — exactly
the framework's historical give-up behavior, kept reachable so tests can
pin it down (see ``tests/integration/test_faults.py``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

__all__ = ["RetryPolicy", "no_retry"]

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts (>= 1).  ``1`` means no retry at all.
    base_delay:
        Wait before the first retry, in seconds (pre-jitter).
    multiplier:
        Backoff growth factor (>= 1) applied per retry.
    max_delay:
        Upper bound on any single pre-jitter wait.
    jitter:
        Fraction in ``[0, 1)``: each wait is scaled by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]``.
    seed:
        Seed for the jitter RNG.  ``None`` draws fresh entropy per
        schedule; a fixed seed makes :meth:`schedule` fully deterministic.
    sleep:
        Wait primitive; defaults to :func:`time.sleep`.  Tests inject a
        no-op or a simulation-clock advance.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.1
    seed: int | None = None
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not (0 <= self.jitter < 1):
            raise ValueError("jitter must be in [0, 1)")

    @property
    def retries(self) -> int:
        """Retries after the first attempt (``max_attempts - 1``)."""
        return self.max_attempts - 1

    def backoff(self, retry_index: int) -> float:
        """Pre-jitter wait before retry number *retry_index* (0-based)."""
        return min(self.base_delay * self.multiplier**retry_index, self.max_delay)

    def schedule(self) -> tuple[float, ...]:
        """Jittered waits for every retry, deterministic under a fixed seed."""
        rng = random.Random(self.seed) if self.seed is not None else random.Random()
        waits = []
        for index in range(self.retries):
            factor = 1.0 + rng.uniform(-self.jitter, self.jitter) if self.jitter else 1.0
            waits.append(self.backoff(index) * factor)
        return tuple(waits)

    def run(
        self,
        fn: Callable[[], T],
        retry_on: tuple[type[BaseException], ...],
        give_up_on: tuple[type[BaseException], ...] = (),
        on_retry: Callable[[int, float, BaseException], None] | None = None,
    ) -> T:
        """Call *fn* under this policy and return its result.

        ``retry_on`` failures are retried until attempts run out (the last
        one re-raises); ``give_up_on`` failures — deterministic rejections
        like a denied landing — propagate immediately even when they
        subclass a retryable type.  ``on_retry(attempt, wait, error)`` fires
        before each backoff wait.
        """
        waits = self.schedule()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except give_up_on:
                raise
            except retry_on as exc:
                if attempt >= self.max_attempts:
                    raise
                wait = waits[attempt - 1]
                if on_retry is not None:
                    on_retry(attempt, wait, exc)
                if wait > 0:
                    self.sleep(wait)
        raise AssertionError("unreachable")  # pragma: no cover


def no_retry() -> RetryPolicy:
    """The single-attempt policy: the framework's historical give-up mode."""
    return RetryPolicy(max_attempts=1)
