"""Per-server dead-letter queue for undeliverable messages.

When the messenger exhausts its retry budget (or a forwarding hop silently
fails), the message lands here instead of vanishing.  The queue is bounded
FIFO — past capacity the oldest letter is evicted and counted — and every
letter records why and when (by attempt count) it died, so operators can
inspect the backlog via :class:`~repro.server.admin.SpaceAdmin` and requeue
it once the network heals.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["DeadLetter", "DeadLetterQueue"]


@dataclass
class DeadLetter:
    """One undeliverable message with its failure context."""

    message: Any
    dest_urn: str
    reason: str
    attempts: int = 1
    requeues: int = 0
    source: str = ""

    def describe(self) -> dict:
        summary = getattr(self.message, "subject", None) or type(self.message).__name__
        return {
            "message": str(summary),
            "message_id": getattr(self.message, "message_id", None),
            "dest": self.dest_urn,
            "reason": self.reason,
            "attempts": self.attempts,
            "requeues": self.requeues,
            "source": self.source,
        }


class DeadLetterQueue:
    """Bounded FIFO of :class:`DeadLetter`\\ s with drain-for-redelivery."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._letters: deque[DeadLetter] = deque()
        self._lock = threading.Lock()
        self.total_enqueued = 0
        self.total_evicted = 0
        self.total_redelivered = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._letters)

    def put(self, letter: DeadLetter) -> None:
        with self._lock:
            self._letters.append(letter)
            self.total_enqueued += 1
            while len(self._letters) > self.capacity:
                self._letters.popleft()
                self.total_evicted += 1

    def peek(self) -> list[DeadLetter]:
        with self._lock:
            return list(self._letters)

    def drain(self) -> list[DeadLetter]:
        """Remove and return every letter (oldest first)."""
        with self._lock:
            letters = list(self._letters)
            self._letters.clear()
        return letters

    def redeliver(self, deliver: Callable[[DeadLetter], None]) -> tuple[int, int]:
        """Drain the queue through *deliver*; letters that fail again re-enter.

        Returns ``(delivered, requeued)``.  Letters are attempted oldest
        first so requeue-on-heal preserves send order.
        """
        delivered = requeued = 0
        for letter in self.drain():
            try:
                deliver(letter)
            except Exception as exc:  # still unreachable: back on the queue
                letter.attempts += 1
                letter.requeues += 1
                letter.reason = str(exc)
                self.put(letter)
                requeued += 1
            else:
                delivered += 1
                with self._lock:
                    self.total_redelivered += 1
        return delivered, requeued

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._letters),
                "capacity": self.capacity,
                "enqueued": self.total_enqueued,
                "evicted": self.total_evicted,
                "redelivered": self.total_redelivered,
            }
