"""Health harvesting as an itinerant workload (paper §6 applied to us).

The paper's MAN application treats monitoring as *just another naplet*:
an agent tours the space and reads SNMP variables on-site.  The
:class:`HealthProbeNaplet` does the same for the platform's own health
plane — it visits every server, opens the standard ``telemetry`` service,
collects the health snapshot plus a few headline metrics, and reports the
merged harvest home.  Because it rides the normal migration machinery the
probe works over any transport (in-memory or TCP-split) with zero extra
wiring — exactly how ``tools/napletstat.py`` polls a space it cannot
reach in-process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.naplet import Naplet
from repro.itinerary import Itinerary, ResultReport, SeqPattern

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.listener import NapletListener
    from repro.server.server import NapletServer

__all__ = [
    "HealthProbeNaplet",
    "harvest_via_probe",
    "JournalProbeNaplet",
    "harvest_journal_via_probe",
]

# Counters worth carrying home verbatim (headline dashboard numbers).
_HEADLINE_METRICS = (
    "naplet_hops_total",
    "naplet_landings_total",
    "naplet_messages_delivered_total",
    "naplet_dead_letters_total",
    "naplet_health_active_findings",
)


class HealthProbeNaplet(Naplet):
    """Visits each server and harvests its telemetry service's health view."""

    def on_start(self) -> None:
        context = self.require_context()
        harvest: list[dict[str, Any]] = self.state.get("harvest") or []
        row: dict[str, Any] = {"server": context.hostname}
        try:
            service = context.open_service("telemetry")
        except Exception as exc:
            row["error"] = str(exc)
        else:
            row["status"] = service.status()
            row["health"] = service.health()
            snapshot = service.metrics()
            row["metrics"] = {
                name: snapshot.total(name) for name in _HEADLINE_METRICS
            }
            # Transport-level ingress/egress (perf plane): these live on
            # the transport's registry, not the server's, so they ride as
            # their own harvest entry rather than a headline metric.
            row["metrics"].update(service.wire_bytes())
        harvest.append(row)
        self.state.set("harvest", harvest)
        self.travel()


def harvest_via_probe(
    home: "NapletServer",
    hostnames: list[str],
    listener: "NapletListener",
    owner: str = "napletstat",
    timeout: float = 30.0,
) -> list[dict[str, Any]]:
    """Tour *hostnames* with a probe launched from *home*; return the rows."""
    probe = HealthProbeNaplet("health-probe")
    probe.set_itinerary(
        Itinerary(SeqPattern.of_servers(hostnames, post_action=ResultReport("harvest")))
    )
    home.launch(probe, owner=owner, listener=listener)
    report = listener.next_report(timeout=timeout)
    return list(report.payload or [])


class JournalProbeNaplet(Naplet):
    """Tours the space reading each server's flight-recorder journal.

    The over-the-wire half of the harvest protocol (DESIGN.md §6.5): at
    every stop it opens the standard ``"journal"`` service and carries the
    described records home, where :func:`harvest_journal_via_probe` merges
    them into one causal timeline — the same result
    ``SpaceAdmin.harvest_journal`` computes in-process, but reachable over
    any transport the space runs on.
    """

    def on_start(self) -> None:
        context = self.require_context()
        harvest: list[dict[str, Any]] = self.state.get("journal_harvest") or []
        row: dict[str, Any] = {"server": context.hostname}
        try:
            service = context.open_service("journal")
        except Exception as exc:
            row["error"] = str(exc)
        else:
            row["status"] = service.status()
            row["records"] = service.record_dicts()
        harvest.append(row)
        self.state.set("journal_harvest", harvest)
        self.travel()


def harvest_journal_via_probe(
    home: "NapletServer",
    hostnames: list[str],
    listener: "NapletListener",
    owner: str = "napletlog",
    timeout: float = 30.0,
):
    """Tour *hostnames* with a journal probe; return the merged timeline."""
    from repro.telemetry.journal import JournalRecord, merge_journals

    probe = JournalProbeNaplet("journal-probe")
    probe.set_itinerary(
        Itinerary(
            SeqPattern.of_servers(
                hostnames, post_action=ResultReport("journal_harvest")
            )
        )
    )
    home.launch(probe, owner=owner, listener=listener)
    report = listener.next_report(timeout=timeout)
    journals = [
        [JournalRecord.from_dict(data) for data in row.get("records") or []]
        for row in report.payload or []
    ]
    return merge_journals(journals)
