"""Space health plane: resource profiles, watchdog findings, harvesting.

Extends the telemetry layer (DESIGN.md §6.1) with *continuous* platform
observability (§6.4):

- :mod:`repro.health.profile`  — per-naplet CPU/message/bandwidth time
  series sampled from the NapletMonitor's control blocks;
- :mod:`repro.health.findings` — typed, severity-ranked watchdog findings;
- :mod:`repro.health.plane`    — the per-server sampler + watchdog;
- :mod:`repro.health.harvest`  — an itinerant probe that harvests health
  over any transport, the paper's MAN pattern applied to the platform;
- :mod:`repro.health.observatory` — heartbeat load digests, the merged
  per-server space view, and load-aware Alt/Par ordering (§6.8).
"""

from repro.health.findings import FindingKind, HealthFinding, Severity
from repro.health.harvest import (
    HealthProbeNaplet,
    JournalProbeNaplet,
    harvest_journal_via_probe,
    harvest_via_probe,
)
from repro.health.observatory import (
    LoadDigest,
    LoadObservatory,
    LoadService,
    SpaceView,
)
from repro.health.plane import HealthPlane
from repro.health.profile import ProfileTable, ResourceProfile, ResourceSample

__all__ = [
    "FindingKind",
    "HealthFinding",
    "Severity",
    "HealthPlane",
    "HealthProbeNaplet",
    "harvest_via_probe",
    "JournalProbeNaplet",
    "harvest_journal_via_probe",
    "LoadDigest",
    "LoadObservatory",
    "LoadService",
    "SpaceView",
    "ProfileTable",
    "ResourceProfile",
    "ResourceSample",
]
