"""Per-naplet resource profiles: bounded time series over monitor samples.

The paper's NapletMonitor accounts CPU, memory and bandwidth per confined
naplet thread group (§5.3); the control blocks already hold the point-in-
time numbers.  A :class:`ResourceProfile` turns those into *history*: the
health plane samples every resident control block on a fixed cadence and
appends a :class:`ResourceSample` here, so consumers (the watchdog, the
``napletstat`` dashboard, the Chrome trace exporter) can ask for rates —
CPU utilisation, message bandwidth — and for progress ("has this naplet
done anything since sample N?") instead of instantaneous counters.

Profiles are bounded two ways: each keeps at most ``window`` samples
(a ring), and the :class:`ProfileTable` keeps at most ``capacity`` naplet
profiles, evicting the least-recently-updated (retired naplets age out
first).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet_id import NapletID

__all__ = ["ResourceSample", "ResourceProfile", "ProfileTable"]

# CPU deltas below this are clock jitter, not progress.
_CPU_EPSILON = 1e-7


@dataclass(frozen=True)
class ResourceSample:
    """One reading of a naplet's control block."""

    wall: float  # time.time() at the sample
    mono: float  # time.monotonic() at the sample
    cpu_seconds: float
    wall_seconds: float  # age of this visit
    messages_sent: int
    message_bytes: int

    def describe(self) -> dict[str, Any]:
        return {
            "wall": self.wall,
            "cpu_seconds": self.cpu_seconds,
            "wall_seconds": self.wall_seconds,
            "messages_sent": self.messages_sent,
            "message_bytes": self.message_bytes,
        }


class ResourceProfile:
    """Bounded CPU/message/bandwidth time series for one naplet."""

    def __init__(self, nid: "NapletID", window: int = 240) -> None:
        self.naplet_id = nid
        self.samples: deque[ResourceSample] = deque(maxlen=window)
        self.resident = True
        self.last_progress_mono: float | None = None
        self.first_seen_mono: float | None = None

    # -- recording (health-plane thread only) --------------------------- #

    def append(self, sample: ResourceSample) -> bool:
        """Record *sample*; returns True when it shows progress.

        Progress means the naplet consumed CPU, or sent a message or
        bytes, since the previous sample.  The first sample of a visit
        counts as progress (the naplet just landed).
        """
        previous = self.samples[-1] if self.samples else None
        self.samples.append(sample)
        if self.first_seen_mono is None:
            self.first_seen_mono = sample.mono
        progressed = previous is None or (
            sample.cpu_seconds - previous.cpu_seconds > _CPU_EPSILON
            or sample.messages_sent > previous.messages_sent
            or sample.message_bytes > previous.message_bytes
        )
        if progressed:
            self.last_progress_mono = sample.mono
        return progressed

    # -- rates ----------------------------------------------------------- #

    @property
    def latest(self) -> ResourceSample | None:
        return self.samples[-1] if self.samples else None

    def stalled_for(self, now_mono: float) -> float:
        """Seconds since the last observed progress (0.0 if never sampled)."""
        if self.last_progress_mono is None:
            return 0.0
        return max(0.0, now_mono - self.last_progress_mono)

    def _span(self) -> tuple[ResourceSample, ResourceSample] | None:
        if len(self.samples) < 2:
            return None
        return self.samples[0], self.samples[-1]

    def cpu_rate(self) -> float:
        """Mean CPU-seconds per wall-second over the retained window."""
        span = self._span()
        if span is None:
            return 0.0
        first, last = span
        elapsed = last.mono - first.mono
        if elapsed <= 0:
            return 0.0
        return max(0.0, last.cpu_seconds - first.cpu_seconds) / elapsed

    def bandwidth(self) -> float:
        """Mean message bytes per second over the retained window."""
        span = self._span()
        if span is None:
            return 0.0
        first, last = span
        elapsed = last.mono - first.mono
        if elapsed <= 0:
            return 0.0
        return max(0, last.message_bytes - first.message_bytes) / elapsed

    def series(self, attribute: str) -> list[tuple[float, float]]:
        """``(mono, value)`` pairs of one sample attribute, oldest first."""
        return [(s.mono, float(getattr(s, attribute))) for s in self.samples]

    def describe(self) -> dict[str, Any]:
        latest = self.latest
        return {
            "naplet": str(self.naplet_id),
            "resident": self.resident,
            "samples": len(self.samples),
            "cpu_seconds": latest.cpu_seconds if latest else 0.0,
            "cpu_rate": self.cpu_rate(),
            "bandwidth": self.bandwidth(),
            "messages_sent": latest.messages_sent if latest else 0,
            "message_bytes": latest.message_bytes if latest else 0,
            "wall_seconds": latest.wall_seconds if latest else 0.0,
        }

    def __len__(self) -> int:
        return len(self.samples)


class ProfileTable:
    """LRU-bounded map of naplet id → :class:`ResourceProfile`."""

    def __init__(self, capacity: int = 512, window: int = 240) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.window = window
        self._profiles: "OrderedDict[NapletID, ResourceProfile]" = OrderedDict()
        self._lock = threading.Lock()
        self.evicted = 0

    def touch(self, nid: "NapletID") -> ResourceProfile:
        """Profile for *nid*, created (and moved to most-recent) on access."""
        with self._lock:
            profile = self._profiles.get(nid)
            if profile is None:
                profile = self._profiles[nid] = ResourceProfile(nid, self.window)
            else:
                self._profiles.move_to_end(nid)
            while len(self._profiles) > self.capacity:
                self._profiles.popitem(last=False)
                self.evicted += 1
            return profile

    def get(self, nid: "NapletID") -> ResourceProfile | None:
        with self._lock:
            return self._profiles.get(nid)

    def mark_non_resident(self, resident: "set[NapletID]") -> None:
        """Flip ``resident`` off for every profile not in *resident*."""
        with self._lock:
            for nid, profile in self._profiles.items():
                profile.resident = nid in resident

    def items(self) -> list[tuple["NapletID", ResourceProfile]]:
        with self._lock:
            return list(self._profiles.items())

    def top_by_cpu(self, count: int = 5) -> list[ResourceProfile]:
        """Profiles ordered by total CPU consumed, busiest first."""
        profiles = [p for _nid, p in self.items() if p.latest is not None]
        profiles.sort(key=lambda p: p.latest.cpu_seconds, reverse=True)  # type: ignore[union-attr]
        return profiles[:count]

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)

    def __iter__(self) -> Iterator[ResourceProfile]:
        return iter(p for _nid, p in self.items())
