"""The space load observatory (DESIGN.md §6.8).

The health plane (§6.4) watches only its *own* server; the Navigator
therefore expands ``Alt``/``Par`` itineraries blind to the rest of the
space.  The observatory closes that gap with three pieces:

- :class:`LoadDigest` — a compact, HLC-stamped snapshot of one server's
  load: residency, worker-pool occupancy, dead-letter depth, cpu and
  bandwidth rates aggregated from the resident
  :class:`~repro.health.profile.ResourceProfile`\\ s, and the wire bytes
  the traffic meter attributes to the host;
- :class:`SpaceView` — a per-server merge of peer digests ordered by
  their hybrid-logical-clock stamps, with staleness aging: a peer whose
  digest outlives ``stale_after`` decays toward *unknown*, never toward
  *idle* (a silent peer may be partitioned, not free);
- :class:`LoadObservatory` — the heartbeat loop.  Every ``cadence``
  seconds it computes the local digest and emits it as a ``"load"``
  frame toward every peer the transport already holds a live channel to
  (``Transport.live_peers``), so heartbeats ride pooled keepalive
  connections and in-memory links that an earlier exchange opened — a
  digest never dials.  Inbound digests merge into the view, update the
  ``naplet_peer_load{server,dimension}`` gauges, and land in the flight
  recorder as ``load-digest`` records.

Navigation closes the loop through :meth:`LoadObservatory.order_branches`:
the itinerary driver's duck-typed hooks ask for a load-ranked branch
permutation when expanding an Alt or Par.  The fallback ladder is strict —
load order applies only when *every* admitting candidate has a fresh
digest (the local server is always fresh; its digest is computed on
demand); any unknown or stale candidate, a dormant observatory, or
``load_aware_navigation`` off all fall back to static declaration order.
Ties break on declaration index, so equal scores reproduce the static
order exactly.  Every consulted decision is journaled (kind ``"load"``)
with each candidate's digest, staleness and score, making the chosen
order reconstructible from the flight recorder alone.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.transport.base import Frame, FrameKind, host_of
from repro.util.hlc import HLCStamp

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet
    from repro.itinerary.pattern import ItineraryPattern
    from repro.server.server import NapletServer

__all__ = ["LoadDigest", "SpaceView", "LoadObservatory", "LoadService"]

# CPU-rate contribution to the score is capped so one spinning naplet
# cannot outweigh queue depths by an unbounded margin.
_CPU_SCORE_CAP = 8.0


@dataclass(frozen=True)
class LoadDigest:
    """One server's load snapshot: small enough to ride any open channel.

    ``hlc`` is the encoded :class:`~repro.util.hlc.HLCStamp` taken when
    the digest was computed; receivers decode it to merge by causal
    order (the encoded string is exact but not lexicographically
    ordered).  ``seq`` is the emitter's beat counter, a human-friendly
    freshness hint for journals and dashboards.
    """

    server: str
    seq: int
    hlc: str
    residents: int = 0
    active: int = 0
    worker_backlog: int = 0
    dead_letter_depth: int = 0
    cpu_rate: float = 0.0
    bandwidth: float = 0.0
    egress_bytes: int = 0
    ingress_bytes: int = 0

    def stamp(self) -> HLCStamp:
        return HLCStamp.decode(self.hlc)

    def score(self) -> float:
        """Scalar load pressure: queue depths plus a capped CPU term.

        Each unit is roughly "one piece of work waiting or running":
        resident naplets, active threads, backlogged inbound frames and
        dead letters count 1 apiece; the CPU rate (cores busy) joins
        capped at ``_CPU_SCORE_CAP`` so a spin loop cannot dominate.
        """
        return (
            self.residents
            + self.active
            + self.worker_backlog
            + self.dead_letter_depth
            + min(self.cpu_rate, _CPU_SCORE_CAP)
        )

    def describe(self) -> dict[str, Any]:
        return {
            "server": self.server,
            "seq": self.seq,
            "hlc": self.hlc,
            "residents": self.residents,
            "active": self.active,
            "worker_backlog": self.worker_backlog,
            "dead_letter_depth": self.dead_letter_depth,
            "cpu_rate": self.cpu_rate,
            "bandwidth": self.bandwidth,
            "egress_bytes": self.egress_bytes,
            "ingress_bytes": self.ingress_bytes,
            "score": self.score(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LoadDigest":
        return cls(
            server=str(data["server"]),
            seq=int(data["seq"]),
            hlc=str(data["hlc"]),
            residents=int(data.get("residents", 0)),
            active=int(data.get("active", 0)),
            worker_backlog=int(data.get("worker_backlog", 0)),
            dead_letter_depth=int(data.get("dead_letter_depth", 0)),
            cpu_rate=float(data.get("cpu_rate", 0.0)),
            bandwidth=float(data.get("bandwidth", 0.0)),
            egress_bytes=int(data.get("egress_bytes", 0)),
            ingress_bytes=int(data.get("ingress_bytes", 0)),
        )


class SpaceView:
    """Merged peer digests at one server, aged by receipt time.

    Merging is by HLC order: a digest replaces the held one for its
    server only when its stamp is strictly newer, so duplicated or
    reordered heartbeats (the fault injector produces both) cannot roll
    the view backwards.  Staleness is judged against the *local*
    monotonic receipt time, not the digest's remote clock — a partition
    freezes receipts, which is exactly the signal to decay on.
    """

    def __init__(self, stale_after: float = 5.0) -> None:
        self.stale_after = stale_after
        self._lock = threading.Lock()
        # server -> (digest, decoded stamp, monotonic receipt time)
        self._held: dict[str, tuple[LoadDigest, HLCStamp, float]] = {}

    def observe(self, digest: LoadDigest, now_mono: float | None = None) -> bool:
        """Merge *digest*; True when it advanced the view (HLC order)."""
        try:
            stamp = digest.stamp()
        except (ValueError, AttributeError):
            return False  # malformed stamp: never corrupt the view
        now = time.monotonic() if now_mono is None else now_mono
        with self._lock:
            held = self._held.get(digest.server)
            if held is not None and held[1] >= stamp:
                return False
            self._held[digest.server] = (digest, stamp, now)
            return True

    def digest(self, server: str) -> LoadDigest | None:
        """The held digest for *server* regardless of age (None if none)."""
        with self._lock:
            held = self._held.get(server)
        return None if held is None else held[0]

    def staleness(self, server: str, now_mono: float | None = None) -> float | None:
        """Seconds since *server*'s digest arrived (None if never seen)."""
        with self._lock:
            held = self._held.get(server)
        if held is None:
            return None
        now = time.monotonic() if now_mono is None else now_mono
        return max(0.0, now - held[2])

    def fresh_digest(
        self, server: str, now_mono: float | None = None
    ) -> LoadDigest | None:
        """The digest for *server* if younger than ``stale_after``.

        A stale digest returns None — the peer decays to *unknown*, it
        is never treated as idle.
        """
        with self._lock:
            held = self._held.get(server)
        if held is None:
            return None
        now = time.monotonic() if now_mono is None else now_mono
        if now - held[2] > self.stale_after:
            return None
        return held[0]

    def peers(self) -> list[str]:
        with self._lock:
            return sorted(self._held)

    def forget(self, server: str) -> None:
        with self._lock:
            self._held.pop(server, None)

    def describe(self, now_mono: float | None = None) -> dict[str, Any]:
        """JSON-able view: per-peer digest, age, and aged score."""
        now = time.monotonic() if now_mono is None else now_mono
        with self._lock:
            held = dict(self._held)
        peers: dict[str, Any] = {}
        for server in sorted(held):
            digest, _stamp, received = held[server]
            age = max(0.0, now - received)
            fresh = age <= self.stale_after
            peers[server] = {
                "digest": digest.describe(),
                "age_s": age,
                "fresh": fresh,
                # Stale decays to unknown (None), never to an idle 0.0.
                "score": digest.score() if fresh else None,
            }
        return peers


class LoadObservatory:
    """Heartbeat emitter + view merger + load-aware ordering for one server.

    Mirrors the :class:`~repro.health.plane.HealthPlane` lifecycle: dormant
    (no thread, empty answers) unless telemetry and the observatory are
    both enabled; :meth:`beat_now` is the thread's body and is public so
    tests and ``napletstat`` get a deterministic beat without waiting out
    the cadence.
    """

    def __init__(self, server: "NapletServer") -> None:
        config = server.config
        self.server = server
        self.enabled = bool(config.telemetry_enabled and config.observatory_enabled)
        self.cadence = config.load_cadence
        self.load_aware = bool(config.load_aware_navigation)
        self.view = SpaceView(stale_after=config.load_stale_after)
        self.beats = 0
        self._seq = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if self.enabled:
            registry = server.telemetry.registry
            self._digests_sent = registry.counter(
                "naplet_load_digests_sent_total",
                "Load-digest heartbeats emitted, by destination host",
            )
            self._digests_received = registry.counter(
                "naplet_load_digests_received_total",
                "Load digests merged into the view, by source host",
            )
            self._send_failures = registry.counter(
                "naplet_load_digest_send_failures_total",
                "Heartbeats lost to unreachable peers, by destination host",
            )
            self._reroutes = registry.counter(
                "load_aware_reroutes_total",
                "Alt/Par expansions whose load-ranked order differed from "
                "declaration order",
            )
            self._peer_gauge = registry.gauge(
                "naplet_peer_load",
                "Last merged peer load, by server and dimension",
            )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start the heartbeat thread (no-op when dormant or running)."""
        if not self.enabled or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name=f"observatory-{self.server.hostname}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=1.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.cadence):
            try:
                self.beat_now()
            except Exception:
                # A heartbeat must never take the server down with it.
                self.server.events.record("load-beat-error")

    # ------------------------------------------------------------------ #
    # Digests
    # ------------------------------------------------------------------ #

    def local_digest(self) -> LoadDigest:
        """This server's load right now (always fresh by construction)."""
        server = self.server
        cpu_rate = 0.0
        bandwidth = 0.0
        for profile in server.health.profiles:
            if profile.resident:
                cpu_rate += profile.cpu_rate()
                bandwidth += profile.bandwidth()
        worker_backlog = 0
        backlog_fn = getattr(server.transport, "worker_backlog", None)
        if callable(backlog_fn):
            try:
                worker_backlog = int(backlog_fn(server.urn))
            except Exception:
                worker_backlog = 0
        egress = ingress = 0
        meter = getattr(server.transport, "meter", None)
        try:
            if meter is not None and hasattr(meter, "host_bytes"):
                egress, ingress = meter.host_bytes(server.hostname)
            else:
                egress, ingress = server.transport.endpoint_bytes(server.hostname)
        except Exception:
            egress = ingress = 0
        # The journal's clock is the server's HLC; it exists (and keeps
        # causal order) even when the journal itself is disabled.
        stamp = server.journal.clock.now()
        return LoadDigest(
            server=server.hostname,
            seq=self._seq,
            hlc=stamp.encode(),
            residents=server.manager.resident_count,
            active=server.monitor.active_count,
            worker_backlog=worker_backlog,
            dead_letter_depth=len(server.messenger.dead_letters),
            cpu_rate=cpu_rate,
            bandwidth=bandwidth,
            egress_bytes=int(egress),
            ingress_bytes=int(ingress),
        )

    def beat_now(self) -> int:
        """One heartbeat pass: digest, merge locally, emit to live peers.

        Returns the number of peers the digest was sent to.  Public so
        tests and tools run a deterministic beat on demand.
        """
        if not self.enabled:
            return 0
        self._seq += 1
        digest = self.local_digest()
        # Our own row in the view keeps dashboards symmetric; ordering
        # never reads it (it calls local_digest() for an exact value).
        self.view.observe(digest)
        self._set_peer_gauges(digest)
        sent = self._emit(digest)
        self._refresh_staleness_gauges()
        self.beats += 1
        return sent

    def _emit(self, digest: LoadDigest) -> int:
        """Send *digest* toward every peer with an already-open channel.

        ``live_peers`` is the no-dial guarantee: the in-memory transport
        lists only links an earlier frame opened, the TCP transport only
        destinations with a live pooled keepalive.  Per-peer failures are
        counted and swallowed — a heartbeat is best-effort by design.
        """
        transport = self.server.transport
        live = getattr(transport, "live_peers", None)
        if not callable(live):
            return 0
        try:
            peers = live(self.server.urn)
        except Exception:
            return 0
        payload = pickle.dumps(digest.describe())
        sent = 0
        for urn in peers:
            if host_of(urn) == self.server.hostname:
                continue
            frame = Frame(
                kind=FrameKind.LOAD,
                source=self.server.urn,
                dest=urn,
                payload=payload,
                headers={"hlc": self.server.journal.clock.now().encode()},
            )
            try:
                transport.send(frame)
            except Exception:
                self._send_failures.inc(dest=host_of(urn))
                continue
            sent += 1
            self._digests_sent.inc(dest=host_of(urn))
        return sent

    def handle_load_frame(self, frame: Frame) -> bytes:
        """Inbound ``"load"`` frame: merge, gauge, journal the receipt."""
        try:
            digest = LoadDigest.from_dict(pickle.loads(frame.payload))
        except Exception:
            return pickle.dumps({"ok": False, "reason": "malformed load digest"})
        if not self.enabled:
            # A dormant observatory still acks politely so a mixed space
            # (observing and non-observing servers) stays quiet on the wire.
            return pickle.dumps({"ok": True, "merged": False})
        merged = self.view.observe(digest)
        if merged:
            self._digests_received.inc(source=digest.server)
            self._set_peer_gauges(digest)
            journal = self.server.journal
            if journal.enabled:
                journal.append(
                    kind="load-digest",
                    category="load",
                    detail={
                        "peer": digest.server,
                        "seq": digest.seq,
                        "score": digest.score(),
                        "residents": digest.residents,
                        "active": digest.active,
                        "worker_backlog": digest.worker_backlog,
                        "dead_letter_depth": digest.dead_letter_depth,
                        "cpu_rate": round(digest.cpu_rate, 4),
                    },
                )
        return pickle.dumps({"ok": True, "merged": merged})

    # ------------------------------------------------------------------ #
    # Gauges
    # ------------------------------------------------------------------ #

    _GAUGE_DIMENSIONS = (
        "score",
        "residents",
        "active",
        "worker_backlog",
        "dead_letter_depth",
        "cpu_rate",
        "bandwidth",
    )

    def _set_peer_gauges(self, digest: LoadDigest) -> None:
        for dimension in self._GAUGE_DIMENSIONS:
            value = digest.score() if dimension == "score" else getattr(digest, dimension)
            self._peer_gauge.set(float(value), server=digest.server, dimension=dimension)

    def _refresh_staleness_gauges(self) -> None:
        now = time.monotonic()
        for peer in self.view.peers():
            age = self.view.staleness(peer, now)
            if age is not None:
                self._peer_gauge.set(age, server=peer, dimension="staleness")

    # ------------------------------------------------------------------ #
    # Load-aware navigation
    # ------------------------------------------------------------------ #

    def order_branches(
        self, naplet: "Naplet", pattern: "ItineraryPattern", kind: str = "alt"
    ) -> tuple[int, ...] | None:
        """Load-ranked branch permutation for an Alt/Par, or None for static.

        The fallback ladder, top to bottom:

        1. observatory dormant, ``load_aware_navigation`` off, or fewer
           than two admitting branches → None, nothing journaled (there
           is no decision to explain);
        2. any admitting candidate's server has no digest or a stale one
           → None, journaled with the failing candidate as the reason —
           a stale peer is *unknown*, and unknown beats a wrong guess;
        3. otherwise the admitting branches sort by ``(score,
           declaration index)`` — the deterministic tie-break that makes
           equal scores reproduce declaration order exactly — followed by
           the non-admitting branches in declaration order (they are
           skipped at selection time regardless of position).

        A decision whose admitting order differs from declaration order
        counts on ``load_aware_reroutes_total``; every rung-2/3 decision
        is journaled with each candidate's digest, staleness and score.
        """
        if not self.enabled or not self.load_aware:
            return None
        children = getattr(pattern, "children", None)
        if not children or len(children) < 2:
            return None
        now_mono = time.monotonic()
        candidates: list[dict[str, Any]] = []
        admitting = 0
        fallback: str | None = None
        for index, child in enumerate(children):
            visit = child.first_admitting_visit(naplet)
            if visit is None:
                candidates.append(
                    {"branch": index, "server": None, "score": None, "stale_s": None}
                )
                continue
            admitting += 1
            host = host_of(visit.server)
            entry: dict[str, Any] = {"branch": index, "server": host}
            if host == self.server.hostname:
                digest: LoadDigest | None = self.local_digest()
                stale: float | None = 0.0
            else:
                digest = self.view.fresh_digest(host, now_mono)
                stale = self.view.staleness(host, now_mono)
            entry["stale_s"] = None if stale is None else round(stale, 3)
            if digest is None:
                entry["score"] = None
                if fallback is None:
                    fallback = (
                        f"{host}: no digest"
                        if stale is None
                        else f"{host}: digest stale ({stale:.2f}s > "
                        f"{self.view.stale_after:.2f}s)"
                    )
            else:
                entry["score"] = digest.score()
                entry["seq"] = digest.seq
                entry["hlc"] = digest.hlc
            candidates.append(entry)
        if admitting < 2:
            return None
        static = tuple(range(len(children)))
        if fallback is not None:
            self._journal_decision(
                naplet, kind, candidates, order=static, changed=False, fallback=fallback
            )
            return None
        ranked = [c for c in candidates if c["score"] is not None]
        skipped = [c for c in candidates if c["score"] is None]
        ranked.sort(key=lambda c: (c["score"], c["branch"]))
        order = tuple(c["branch"] for c in ranked) + tuple(c["branch"] for c in skipped)
        # "Changed" judges only the admitting branches: non-admitting ones
        # are never chosen, so shuffling them is not a reroute.
        changed = [c["branch"] for c in ranked] != sorted(c["branch"] for c in ranked)
        if changed:
            self._reroutes.inc(kind=kind)
        self._journal_decision(
            naplet, kind, candidates, order=order, changed=changed, fallback=None
        )
        return order

    def _journal_decision(
        self,
        naplet: "Naplet",
        kind: str,
        candidates: list[dict[str, Any]],
        order: tuple[int, ...],
        changed: bool,
        fallback: str | None,
    ) -> None:
        """One ``load`` record per consulted expansion: the whole decision."""
        journal = self.server.journal
        if not journal.enabled:
            return
        try:
            naplet_key = str(naplet.naplet_id) if naplet.has_id else naplet.name
        except Exception:  # pragma: no cover - defensive
            naplet_key = getattr(naplet, "name", None)
        ctx = getattr(naplet, "trace_context", None)
        journal.append(
            kind="load",
            category="load",
            naplet=naplet_key,
            trace_id=ctx.trace_id if ctx is not None else None,
            detail={
                "pattern": kind,
                "candidates": candidates,
                "order": list(order),
                "changed": changed,
                "fallback": fallback,
            },
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def reroutes(self) -> int:
        """Expansions where load ranking beat declaration order so far."""
        if not self.enabled:
            return 0
        return int(self._reroutes.total())

    def describe(self) -> dict[str, Any]:
        """JSON-serializable observatory snapshot (what the service exposes)."""
        info: dict[str, Any] = {
            "enabled": self.enabled,
            "server": self.server.hostname,
            "cadence": self.cadence,
            "stale_after": self.view.stale_after,
            "load_aware": self.load_aware,
            "beats": self.beats,
            "peers": self.view.describe(),
        }
        if self.enabled:
            info["local"] = self.local_digest().describe()
            info["reroutes"] = self.reroutes()
        return info


class LoadService:
    """Open-service handler exposing one server's observatory in-space.

    Registered under ``"load"`` next to the ``"telemetry"`` and
    ``"journal"`` services, so a probe naplet (or ``SpaceAdmin``) reads
    the merged view the same way it harvests health and journals.
    """

    SERVICE_NAME = "load"

    def __init__(self, server: "NapletServer") -> None:
        self._server = server

    @property
    def hostname(self) -> str:
        return self._server.hostname

    def status(self) -> dict[str, Any]:
        observatory = self._server.observatory
        return {
            "server": self._server.hostname,
            "observatory": "enabled" if observatory.enabled else "disabled",
            "beats": observatory.beats,
            "peers": len(observatory.view.peers()),
        }

    def digest(self) -> dict[str, Any]:
        """The local load digest, computed on demand."""
        return self._server.observatory.local_digest().describe()

    def view(self) -> dict[str, Any]:
        """The merged space view as this server sees it."""
        return self._server.observatory.describe()
