"""The per-server HealthPlane: sampler, watchdog, findings (DESIGN.md §6.4).

The paper's NapletMonitor accounts each confined naplet's consumption but
nobody *watches* the accounting.  The HealthPlane closes that loop with a
background sampler that, every ``cadence`` seconds:

1. copies every resident control block into the naplet's bounded
   :class:`~repro.health.profile.ResourceProfile` (CPU / messages /
   bandwidth time series);
2. runs the **watchdog** over the fresh samples and the server's queues,
   emitting typed :class:`~repro.health.findings.HealthFinding`\\ s:

   - ``stuck_naplet`` — a resident naplet showed no CPU, message, or byte
     progress for longer than ``stuck_deadline`` (escalates to critical at
     twice the deadline);
   - ``dead_letter_backlog`` — the dead-letter queue is non-empty and grew
     across consecutive samples (the network is eating messages faster
     than heals drain them);
   - ``wedged_server`` — the transport's inbound worker pool reports a
     sustained backlog, or the server sits at its ``max_residents`` cap
     with a growing dead-letter queue: arriving work cannot be served.

The plane is **dormant** when the server's telemetry is disabled or
``ServerConfig.health_enabled`` is off: no thread starts, every query
returns empty, and the hot path never notices it exists.  Sampling runs
off the hot path (its own daemon thread) and takes only the monitor's and
profile table's short locks, so enabling it costs the migration and
messaging paths nothing measurable (see the telemetry-overhead benchmark).

Findings are exposed three ways, mirroring the telemetry layer: the
``telemetry`` open service (`TelemetryService.health()`), space-wide
aggregation (`SpaceAdmin.space_health()`), and two instruments on the
server registry (``naplet_health_findings_total`` by kind and severity,
``naplet_health_active_findings``).
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any

from repro.health.findings import FindingKind, HealthFinding, Severity
from repro.health.profile import ProfileTable, ResourceSample

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet_id import NapletID
    from repro.server.server import NapletServer

__all__ = ["HealthPlane"]


class HealthPlane:
    """Background sampler + watchdog for one server."""

    def __init__(self, server: "NapletServer") -> None:
        config = server.config
        self.server = server
        self.enabled = bool(config.telemetry_enabled and config.health_enabled)
        self.cadence = config.health_cadence
        self.stuck_deadline = config.health_stuck_deadline
        self.profiles = ProfileTable(
            capacity=config.health_profile_capacity,
            window=config.health_profile_window,
        )
        self._findings: dict[tuple[str, str], HealthFinding] = {}
        self._resolved: list[HealthFinding] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples_taken = 0
        # Dead-letter trend state (previous depth, consecutive growth ticks).
        self._dl_prev_depth = 0
        self._dl_growth_streak = 0
        self._backlog_streak = 0
        if self.enabled:
            registry = server.telemetry.registry
            self._findings_total = registry.counter(
                "naplet_health_findings_total",
                "Watchdog findings raised, by kind and severity",
            )
            registry.gauge_fn(
                "naplet_health_active_findings",
                "Watchdog findings currently active at this server",
                lambda: float(len(self._findings)),
            )
            # The messenger tells us the instant a letter dies, so backlog
            # detection does not depend on catching the depth mid-growth.
            server.messenger.on_dead_letter = self._note_dead_letter
        self._last_dead_letter_mono: float | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start the sampling thread (no-op when dormant or already running)."""
        if not self.enabled or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name=f"health-{self.server.hostname}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=1.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.cadence):
            try:
                self.sample_now()
            except Exception:
                # The watchdog must never take the server down with it.
                self.server.events.record("health-sample-error")

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _note_dead_letter(self, letter: Any) -> None:
        self._last_dead_letter_mono = time.monotonic()

    def sample_now(self) -> None:
        """One synchronous sampling + watchdog pass (the thread's body).

        Also callable directly — ``napletstat --once`` and the tests use
        it to get a deterministic pass without waiting out the cadence.
        """
        if not self.enabled:
            return
        now_mono = time.monotonic()
        now_wall = time.time()
        usage = self.server.monitor.usage_table()
        for nid, snapshot in usage.items():
            profile = self.profiles.touch(nid)
            profile.resident = True
            profile.append(
                ResourceSample(
                    wall=now_wall,
                    mono=now_mono,
                    cpu_seconds=snapshot.cpu_seconds,
                    wall_seconds=snapshot.wall_seconds,
                    messages_sent=snapshot.messages_sent,
                    message_bytes=snapshot.message_bytes,
                )
            )
        self.profiles.mark_non_resident(set(usage))
        self.samples_taken += 1
        self._watch_naplets(now_mono, set(usage))
        self._watch_server(now_mono)

    # ------------------------------------------------------------------ #
    # Watchdog rules
    # ------------------------------------------------------------------ #

    def _watch_naplets(self, now_mono: float, resident: "set[NapletID]") -> None:
        stuck_subjects: set[str] = set()
        for nid in resident:
            profile = self.profiles.get(nid)
            if profile is None or len(profile.samples) < 2:
                continue  # one sample proves presence, not stagnation
            stalled = profile.stalled_for(now_mono)
            if stalled <= self.stuck_deadline:
                continue
            severity = (
                Severity.CRITICAL
                if stalled > 2 * self.stuck_deadline
                else Severity.WARNING
            )
            subject = str(nid)
            stuck_subjects.add(subject)
            self._raise(
                kind=FindingKind.STUCK_NAPLET,
                severity=severity,
                subject=subject,
                detail=(
                    f"no CPU/message progress for {stalled:.2f}s "
                    f"(deadline {self.stuck_deadline:.2f}s)"
                ),
                data={
                    "stalled_seconds": stalled,
                    "cpu_seconds": profile.latest.cpu_seconds if profile.latest else 0.0,
                    "messages_sent": profile.latest.messages_sent if profile.latest else 0,
                },
            )
        self._clear_absent(FindingKind.STUCK_NAPLET, keep=stuck_subjects)

    def _watch_server(self, now_mono: float) -> None:
        hostname = self.server.hostname
        # -- dead-letter backlog ---------------------------------------- #
        depth = len(self.server.messenger.dead_letters)
        if depth > self._dl_prev_depth and depth > 0:
            self._dl_growth_streak += 1
        elif depth == 0:
            self._dl_growth_streak = 0
        self._dl_prev_depth = depth
        backlog_active = depth > 0 and self._dl_growth_streak >= 1
        if backlog_active:
            self._raise(
                kind=FindingKind.DEAD_LETTER_BACKLOG,
                severity=Severity.CRITICAL if self._dl_growth_streak >= 3 else Severity.WARNING,
                subject=hostname,
                detail=f"dead-letter queue at depth {depth} and growing",
                data={"depth": depth, "growth_streak": self._dl_growth_streak},
            )
        else:
            self._clear(FindingKind.DEAD_LETTER_BACKLOG, hostname)

        # -- wedged server ----------------------------------------------- #
        backlog_fn = getattr(self.server.transport, "worker_backlog", None)
        worker_backlog = 0
        if callable(backlog_fn):
            try:
                worker_backlog = int(backlog_fn(self.server.urn))
            except Exception:
                worker_backlog = 0
        self._backlog_streak = self._backlog_streak + 1 if worker_backlog > 0 else 0
        limit = self.server.config.max_residents
        saturated = (
            limit is not None
            and self.server.manager.resident_count >= limit
            and depth > 0
        )
        if self._backlog_streak >= 2 or saturated:
            reason = (
                f"inbound worker pool backlog {worker_backlog} frames"
                if self._backlog_streak >= 2
                else f"at max_residents={limit} with {depth} dead letters queued"
            )
            self._raise(
                kind=FindingKind.WEDGED_SERVER,
                severity=Severity.CRITICAL,
                subject=hostname,
                detail=reason,
                data={
                    "worker_backlog": worker_backlog,
                    "residents": self.server.manager.resident_count,
                    "dead_letter_depth": depth,
                },
            )
        else:
            self._clear(FindingKind.WEDGED_SERVER, hostname)

    # ------------------------------------------------------------------ #
    # Finding bookkeeping
    # ------------------------------------------------------------------ #

    def _raise(
        self, kind: str, severity: str, subject: str, detail: str, data: dict[str, Any]
    ) -> None:
        # Every CRITICAL finding arrives with its own evidence: the slice
        # of the flight-recorder journal mentioning the subject, captured
        # the moment the finding is raised (or escalates) to CRITICAL.
        if severity == Severity.CRITICAL:
            with self._lock:
                existing = self._findings.get((kind, subject))
                fresh_critical = (
                    existing is None or existing.severity != Severity.CRITICAL
                )
                carried = (
                    None if existing is None else existing.data.get("journal_slice")
                )
            journal = getattr(self.server, "journal", None)
            if journal is not None and journal.enabled:
                data = dict(data)
                if fresh_critical:
                    data["journal_slice"] = [
                        r.describe() for r in journal.slice_for(subject)
                    ]
                elif carried is not None:
                    # Still CRITICAL: keep the slice captured at escalation
                    # (the evidence of *how it got here*, not the aftermath).
                    data["journal_slice"] = carried
        with self._lock:
            finding = self._findings.get((kind, subject))
            if finding is not None:
                finding.refresh(severity, detail, data)
                return
            finding = HealthFinding(
                kind=kind,
                severity=severity,
                server=self.server.hostname,
                subject=subject,
                detail=detail,
                data=data,
            )
            self._findings[finding.key] = finding
        self._findings_total.inc(kind=kind, severity=severity)
        self.server.events.record(
            "health-finding",
            finding=kind,
            severity=severity,
            subject=subject,
            detail=detail,
        )

    def _clear(self, kind: str, subject: str) -> None:
        with self._lock:
            finding = self._findings.pop((kind, subject), None)
            if finding is not None:
                self._resolved.append(finding)
                del self._resolved[:-64]
        if finding is not None:
            self.server.events.record(
                "health-finding-resolved", finding=kind, subject=subject
            )

    def _clear_absent(self, kind: str, keep: "set[str]") -> None:
        with self._lock:
            stale = [
                key for key in self._findings if key[0] == kind and key[1] not in keep
            ]
        for _kind, subject in stale:
            self._clear(kind, subject)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def findings(self) -> list[HealthFinding]:
        """Active findings, most severe first (then oldest first)."""
        with self._lock:
            active = list(self._findings.values())
        active.sort(key=lambda f: (-Severity.rank(f.severity), f.first_seen))
        return active

    def resolved_findings(self) -> list[HealthFinding]:
        with self._lock:
            return list(self._resolved)

    def profile(self, nid: "NapletID"):
        return self.profiles.get(nid)

    def describe(self) -> dict[str, Any]:
        """JSON-serializable health snapshot (what the service exposes)."""
        return {
            "enabled": self.enabled,
            "server": self.server.hostname,
            "cadence": self.cadence,
            "samples_taken": self.samples_taken,
            "findings": [f.describe() for f in self.findings()],
            "profiles": [p.describe() for p in self.profiles],
            "dead_letter_depth": len(self.server.messenger.dead_letters),
        }
