"""Typed health findings emitted by the per-server watchdog.

A :class:`HealthFinding` is the watchdog's unit of output: one condition,
on one subject (a naplet or the server itself), with a severity and enough
structured context (``data``) for an operator — or ``tools/napletstat.py``
— to act on it without grepping logs.  Findings are *stateful*: the
:class:`~repro.health.plane.HealthPlane` keeps one live finding per
``(kind, subject)`` pair, refreshes ``last_seen`` while the condition
persists, escalates severity as it worsens, and retires the finding when
the condition clears.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Severity", "FindingKind", "HealthFinding"]


class Severity:
    """Ordered severity vocabulary for findings."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"

    _ORDER = {INFO: 0, WARNING: 1, CRITICAL: 2}

    @classmethod
    def rank(cls, severity: str) -> int:
        return cls._ORDER.get(severity, -1)


class FindingKind:
    """Condition vocabulary the watchdog can report."""

    STUCK_NAPLET = "stuck_naplet"
    WEDGED_SERVER = "wedged_server"
    DEAD_LETTER_BACKLOG = "dead_letter_backlog"


@dataclass
class HealthFinding:
    """One detected health condition on one subject."""

    kind: str
    severity: str
    server: str
    subject: str  # naplet id, or the hostname for server-level findings
    detail: str
    first_seen: float = field(default_factory=time.time)
    last_seen: float = field(default_factory=time.time)
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str]:
        return (self.kind, self.subject)

    def refresh(self, severity: str, detail: str, data: dict[str, Any]) -> None:
        """The condition persists: bump timestamps, never de-escalate."""
        self.last_seen = time.time()
        if Severity.rank(severity) > Severity.rank(self.severity):
            self.severity = severity
        self.detail = detail
        self.data = data

    def describe(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "server": self.server,
            "subject": self.subject,
            "detail": self.detail,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "data": dict(self.data),
        }

    def __str__(self) -> str:
        return f"[{self.severity}] {self.kind} {self.subject}@{self.server}: {self.detail}"
