"""Dirty-field tracking for delta state shipping (DESIGN.md §6.7).

PR 6's hop-cost attribution showed per-hop cost dominated by pickling the
*whole* naplet on every migration, even when only a counter changed since
the last hop.  :class:`TrackedState` is the mixin that makes deltas
possible: it records which attributes were **rebound** since the last
successful dump, so the serializer can ship only changed fields to a
destination that still caches the prior image.

The contract is deliberately conservative — dirtiness is advisory for
*skipping work*, never for correctness:

- rebinding an attribute (``self.count = 3``) marks it dirty;
- mutating a nested object **in place** (``self.results.append(x)``) does
  NOT mark anything — such fields are re-pickled every dump unless their
  value is immutable (:func:`is_delta_stable`) or exposes a mutation
  fingerprint (``__delta_fingerprint__``, as :class:`~repro.core.state.
  NapletState` does);
- ``mark_dirty`` lets application code volunteer a field after an
  in-place mutation, which only ever widens the shipped set.

A clean field is therefore skipped only when *all three* hold: it was not
rebound, it is still the same object the last dump saw, and it is provably
unchanged (immutable value or matching fingerprint).  Everything else is
re-pickled and hash-compared, trading CPU for guaranteed correctness.
"""

from __future__ import annotations

from typing import Any

__all__ = ["TrackedState", "delta_fingerprint", "is_delta_stable"]

# The dirty ledger itself must never serialize (it is per-incarnation
# bookkeeping, not agent state) and must never mark itself dirty.
_DIRTY_SLOT = "_tracked_dirty__"

_IMMUTABLE_TYPES = (type(None), bool, int, float, complex, str, bytes)
# Containers that are immutable iff their members are.
_IMMUTABLE_CONTAINERS = (tuple, frozenset)
_STABLE_CHECK_LIMIT = 64  # members inspected before giving up on a container


def is_delta_stable(value: Any, _depth: int = 3) -> bool:
    """True when *value* provably cannot mutate in place.

    Immutable scalars are stable; tuples/frozensets are stable when every
    member is (checked to a small depth and width — a huge tuple is just
    re-pickled, which is always safe).  Everything else is unstable.
    """
    if isinstance(value, _IMMUTABLE_TYPES):
        return True
    if _depth <= 0:
        return False
    if isinstance(value, _IMMUTABLE_CONTAINERS):
        if len(value) > _STABLE_CHECK_LIMIT:
            return False
        return all(is_delta_stable(item, _depth - 1) for item in value)
    return False


def delta_fingerprint(value: Any) -> Any | None:
    """The value's mutation fingerprint, or None when it has none.

    A fingerprint is any equality-comparable token that is guaranteed to
    change whenever the object's serialized form could change (e.g. a
    mutation counter).  ``None`` means "no fingerprint protocol" — such
    values must be re-pickled to learn whether they changed.
    """
    probe = getattr(value, "__delta_fingerprint__", None)
    if probe is None:
        return None
    try:
        return probe()
    except Exception:
        return None


class TrackedState:
    """Mixin recording attribute names rebound since the last dump.

    Cooperative with any ``__init__`` order: the dirty set is created
    lazily on first write, so subclasses need no special setup.  The set
    is excluded from pickling (each incarnation starts clean — the
    receiving serializer seeds its own field cache from the wire image).
    """

    def __setattr__(self, name: str, value: Any) -> None:
        object.__setattr__(self, name, value)
        if name != _DIRTY_SLOT:
            dirty = self.__dict__.get(_DIRTY_SLOT)
            if dirty is None:
                dirty = set()
                object.__setattr__(self, _DIRTY_SLOT, dirty)
            dirty.add(name)

    def __delattr__(self, name: str) -> None:
        object.__delattr__(self, name)
        dirty = self.__dict__.get(_DIRTY_SLOT)
        if dirty is not None and name != _DIRTY_SLOT:
            dirty.add(name)

    # -- the serializer's view ------------------------------------------- #

    def mark_dirty(self, *names: str) -> None:
        """Volunteer fields mutated in place (widens the shipped set)."""
        dirty = self.__dict__.get(_DIRTY_SLOT)
        if dirty is None:
            dirty = set()
            object.__setattr__(self, _DIRTY_SLOT, dirty)
        dirty.update(names)

    def dirty_fields(self) -> frozenset[str]:
        """Attribute names rebound (or volunteered) since the last dump."""
        dirty = self.__dict__.get(_DIRTY_SLOT)
        return frozenset(dirty) if dirty else frozenset()

    def clear_dirty(self) -> None:
        """Reset the ledger — called by the serializer after a dump."""
        dirty = self.__dict__.get(_DIRTY_SLOT)
        if dirty is not None:
            dirty.clear()

    @staticmethod
    def strip_tracking(state: dict[str, Any]) -> dict[str, Any]:
        """Drop the dirty ledger from a ``__getstate__`` dict, in place."""
        state.pop(_DIRTY_SLOT, None)
        return state
