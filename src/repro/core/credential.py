"""Naplet credentials (paper §2.1, §5).

The paper certifies the naplet's immutable attributes — identifier and
codebase URL — with the creator's digital signature; naplet servers use the
credential to derive naplet-specific security and access-control policies.

We reproduce this with stdlib HMAC-SHA256 over a canonical rendering of the
immutable attributes.  A :class:`SigningAuthority` plays the role of the PKI:
it holds per-owner secrets and both signs and verifies.  This preserves the
behaviour the servers depend on (tamper detection over immutable attributes,
a feature set for the policy matrix) without a real certificate
infrastructure, which the paper itself leaves to future work.
"""

from __future__ import annotations

import hmac
import hashlib
import threading
from dataclasses import dataclass, field

from repro.core.errors import CredentialError
from repro.core.naplet_id import NapletID

__all__ = ["Credential", "SigningAuthority"]


def _canonical(nid: NapletID, codebase: str, attributes: tuple[tuple[str, str], ...]) -> bytes:
    attr_text = ";".join(f"{k}={v}" for k, v in attributes)
    return f"{nid}|{codebase}|{attr_text}".encode()


@dataclass(frozen=True)
class Credential:
    """Signed statement binding a naplet id to its codebase and attributes.

    ``attributes`` is a sorted tuple of (key, value) pairs carrying the
    *characteristic features* the paper's security policy maps to
    permissions (e.g. role=admin, app=netman).
    """

    naplet_id: NapletID
    codebase: str
    attributes: tuple[tuple[str, str], ...] = ()
    signature: bytes = b""

    @property
    def owner(self) -> str:
        return self.naplet_id.owner

    def feature(self, key: str, default: str | None = None) -> str | None:
        for k, v in self.attributes:
            if k == key:
                return v
        return default

    def features(self) -> dict[str, str]:
        """All characteristic features, including the implicit identity ones."""
        feats = dict(self.attributes)
        feats.setdefault("owner", self.naplet_id.owner)
        feats.setdefault("home", self.naplet_id.home)
        feats.setdefault("codebase", self.codebase)
        return feats

    def payload(self) -> bytes:
        return _canonical(self.naplet_id, self.codebase, self.attributes)

    def for_clone(self, clone_id: NapletID, authority: "SigningAuthority") -> "Credential":
        """Re-issue this credential for a clone (same codebase/attributes)."""
        return authority.issue(clone_id, self.codebase, dict(self.attributes))


class SigningAuthority:
    """Issues and verifies credentials; the reproduction's stand-in PKI.

    Per-owner secrets are registered once (``register_owner``); a credential
    signed under one owner's secret fails verification if any immutable
    attribute is altered or if presented for a different owner.
    """

    def __init__(self) -> None:
        self._secrets: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def register_owner(self, owner: str, secret: bytes | str | None = None) -> bytes:
        """Register (or fetch) the signing secret for *owner*."""
        if isinstance(secret, str):
            secret = secret.encode()
        with self._lock:
            if owner in self._secrets:
                if secret is not None and secret != self._secrets[owner]:
                    raise CredentialError(f"owner {owner!r} already registered with a different secret")
                return self._secrets[owner]
            if secret is None:
                secret = hashlib.sha256(f"naplet-authority:{owner}".encode()).digest()
            self._secrets[owner] = secret
            return secret

    def _secret_for(self, owner: str) -> bytes:
        with self._lock:
            try:
                return self._secrets[owner]
            except KeyError:
                raise CredentialError(f"unknown owner: {owner!r}") from None

    def issue(
        self,
        naplet_id: NapletID,
        codebase: str,
        attributes: dict[str, str] | None = None,
    ) -> Credential:
        """Sign a credential for *naplet_id* under its owner's secret."""
        attrs = tuple(sorted((attributes or {}).items()))
        secret = self._secret_for(naplet_id.owner)
        sig = hmac.new(secret, _canonical(naplet_id, codebase, attrs), hashlib.sha256).digest()
        return Credential(naplet_id=naplet_id, codebase=codebase, attributes=attrs, signature=sig)

    def verify(self, credential: Credential) -> bool:
        """Constant-time verification of a credential's signature."""
        try:
            secret = self._secret_for(credential.owner)
        except CredentialError:
            return False
        expect = hmac.new(secret, credential.payload(), hashlib.sha256).digest()
        return hmac.compare_digest(expect, credential.signature)

    def require_valid(self, credential: Credential) -> None:
        """Raise :class:`CredentialError` unless *credential* verifies."""
        if not self.verify(credential):
            raise CredentialError(f"invalid credential for {credential.naplet_id}")
