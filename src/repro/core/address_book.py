"""Address book for inter-naplet communication (paper §2.1).

Each naplet carries an :class:`AddressBook` of :class:`AddressEntry` records:
a naplet identifier plus an *initial location* (a server URN).  The location
may be stale — it only seeds tracing — and the book can grow as the naplet
does and is inherited by clones.  Communication is restricted to naplets the
sender knows by identifier, which the book enforces simply by being the only
source of destination ids the messenger accepts from an agent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator

from repro.core.naplet_id import NapletID

__all__ = ["AddressEntry", "AddressBook"]


@dataclass(frozen=True)
class AddressEntry:
    """A known naplet and (at least) one server it has resided on."""

    naplet_id: NapletID
    server_urn: str

    def with_location(self, server_urn: str) -> "AddressEntry":
        return AddressEntry(naplet_id=self.naplet_id, server_urn=server_urn)


class AddressBook:
    """Mutable, clonable set of naplet contact entries.

    Keyed by :class:`NapletID`; adding an entry for an id already present
    updates its last-known location.
    """

    def __init__(self, entries: list[AddressEntry] | None = None) -> None:
        self._entries: dict[NapletID, AddressEntry] = {}
        self._lock = threading.RLock()
        for entry in entries or []:
            self.add(entry)

    def add(self, entry: AddressEntry) -> None:
        with self._lock:
            self._entries[entry.naplet_id] = entry

    def add_contact(self, naplet_id: NapletID, server_urn: str) -> None:
        self.add(AddressEntry(naplet_id=naplet_id, server_urn=server_urn))

    def remove(self, naplet_id: NapletID) -> None:
        with self._lock:
            self._entries.pop(naplet_id, None)

    def lookup(self, naplet_id: NapletID) -> AddressEntry | None:
        with self._lock:
            return self._entries.get(naplet_id)

    def knows(self, naplet_id: NapletID) -> bool:
        with self._lock:
            return naplet_id in self._entries

    def update_location(self, naplet_id: NapletID, server_urn: str) -> bool:
        """Refresh the last-known server of *naplet_id*; False if unknown."""
        with self._lock:
            entry = self._entries.get(naplet_id)
            if entry is None:
                return False
            self._entries[naplet_id] = entry.with_location(server_urn)
            return True

    def naplet_ids(self) -> list[NapletID]:
        with self._lock:
            return list(self._entries)

    def entries(self) -> list[AddressEntry]:
        with self._lock:
            return list(self._entries.values())

    def inherit(self) -> "AddressBook":
        """Copy for a clone (paper: the book 'can be inherited in naplet clone')."""
        return AddressBook(self.entries())

    def merge(self, other: "AddressBook") -> None:
        """Absorb every entry of *other* (other's locations win on conflict)."""
        for entry in other.entries():
            self.add(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[AddressEntry]:
        return iter(self.entries())

    def __contains__(self, naplet_id: object) -> bool:
        if not isinstance(naplet_id, NapletID):
            return False
        return self.knows(naplet_id)

    # -- pickling -------------------------------------------------------- #

    def __getstate__(self) -> dict[str, object]:
        with self._lock:
            return {"entries": list(self._entries.values())}

    def __setstate__(self, state: dict[str, object]) -> None:
        self._entries = {}
        self._lock = threading.RLock()
        for entry in state["entries"]:  # type: ignore[union-attr]
            self._entries[entry.naplet_id] = entry
