"""The ``Naplet`` base class (paper §2.1).

``Naplet`` is the generic agent template every application extends.  Its
primary attributes follow the paper's class listing:

- ``nid``       — system-wide unique, immutable :class:`NapletID`;
- ``codebase``  — immutable codebase name/URL for lazy code loading;
- ``cred``      — creator-signed :class:`Credential` over the immutables;
- ``state``     — serializable :class:`NapletState` container;
- ``context``   — *transient* :class:`NapletContext`, rebound per server;
- ``itin``      — the :class:`Itinerary` separated from business logic;
- ``aBook``     — :class:`AddressBook` of known naplets;
- ``log``       — :class:`NavigationLog` of arrivals/departures.

Lifecycle hooks: :meth:`on_start` (abstract; single entry point on each
arrival), :meth:`on_interrupt`, :meth:`on_stop`, :meth:`on_destroy`.
"""

from __future__ import annotations

import abc
import copy
from typing import TYPE_CHECKING, Any

from repro.core.address_book import AddressBook
from repro.core.context import NapletContext
from repro.core.credential import Credential
from repro.core.errors import NapletError
from repro.core.listener import ListenerRef
from repro.core.naplet_id import NapletID
from repro.core.navigation_log import NavigationLog
from repro.core.state import NapletState
from repro.core.tracking import TrackedState
from repro.telemetry.trace import TraceContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.itinerary.itinerary import Itinerary

__all__ = ["Naplet"]


class Naplet(TrackedState, abc.ABC):
    """Abstract mobile agent. Extend and implement :meth:`on_start`.

    Subclasses perform their server-specific business logic in
    :meth:`on_start`, and usually end it with ``self.travel()`` to continue
    along the itinerary.  All attributes except ``context`` serialize and
    travel with the agent.

    Naplets are :class:`~repro.core.tracking.TrackedState`: attribute
    rebinds are recorded so repeat hops can ship only changed fields
    (DESIGN.md §6.7).  Mutate nested structures through ``self.state`` (it
    fingerprints itself) or call ``self.mark_dirty("attr")`` after in-place
    mutation of a plain attribute — untracked mutable fields are simply
    re-pickled every hop, which is always correct but never saves work.
    """

    def __init__(
        self,
        name: str,
        *,
        naplet_id: NapletID | None = None,
        codebase: str = "local",
        listener: ListenerRef | None = None,
    ) -> None:
        self._name = name
        self._nid = naplet_id  # usually assigned by the launching manager
        self._codebase = codebase
        self._cred: Credential | None = None
        self._state: NapletState = NapletState()
        self._context: NapletContext | None = None  # transient
        self._itinerary: "Itinerary | None" = None
        self._address_book = AddressBook()
        self._nav_log = NavigationLog()
        self._listener = listener
        self._trace_ctx: TraceContext | None = None  # minted at launch, travels
        self._hlc: Any | None = None  # HLC stamp of the last freeze/departure

    # ------------------------------------------------------------------ #
    # Lifecycle hooks (paper: onStart / onInterrupt / onStop / onDestroy)
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def on_start(self) -> None:
        """Single entry point executed when the naplet arrives at a server."""

    def on_interrupt(self, control: str, payload: Any | None = None) -> None:
        """React to a system message cast onto the naplet thread.

        Default: no reaction (the paper leaves the reaction unspecified,
        to be defined by the naplet creator).
        """

    def on_stop(self) -> None:
        """Called when the naplet is suspended or stopped at a server."""

    def on_destroy(self) -> None:
        """Called once, just before the naplet is disposed of."""

    # ------------------------------------------------------------------ #
    # Immutable attributes
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return self._name

    @property
    def naplet_id(self) -> NapletID:
        if self._nid is None:
            raise NapletError(f"naplet {self._name!r} has not been assigned an id yet")
        return self._nid

    @property
    def has_id(self) -> bool:
        return self._nid is not None

    def _assign_identity(self, nid: NapletID, credential: Credential) -> None:
        """Runtime hook: bind id + credential at launch. One-shot."""
        if self._nid is not None:
            raise NapletError(f"naplet {self._name!r} already has id {self._nid}")
        self._nid = nid
        self._cred = credential

    @property
    def codebase(self) -> str:
        return self._codebase

    @property
    def credential(self) -> Credential:
        if self._cred is None:
            raise NapletError(f"naplet {self._name!r} has no credential (not launched)")
        return self._cred

    # ------------------------------------------------------------------ #
    # Mutable travelling attributes
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> NapletState:
        return self._state

    def set_naplet_state(self, state: NapletState) -> None:
        self._state = state

    @property
    def address_book(self) -> AddressBook:
        return self._address_book

    @property
    def navigation_log(self) -> NavigationLog:
        return self._nav_log

    @property
    def itinerary(self) -> "Itinerary":
        if self._itinerary is None:
            raise NapletError(f"naplet {self._name!r} has no itinerary")
        return self._itinerary

    @property
    def has_itinerary(self) -> bool:
        return self._itinerary is not None

    def set_itinerary(self, itinerary: "Itinerary") -> None:
        self._itinerary = itinerary

    @property
    def trace_context(self) -> TraceContext | None:
        """Journey trace context; serializable, survives migration and thaw."""
        return getattr(self, "_trace_ctx", None)

    def _ensure_trace(self) -> TraceContext:
        """Runtime hook: the trace context, minted on first need."""
        ctx = self.trace_context
        if ctx is None:
            ctx = self._trace_ctx = TraceContext.mint()
        return ctx

    @property
    def hlc_stamp(self) -> Any | None:
        """Hybrid-logical-clock stamp the sender applied before serializing.

        Travels in the pickle like the trace context; the landing server
        feeds it to its flight-recorder clock, so causality survives even
        paths with no frame headers (thaw of a persisted image).
        """
        return getattr(self, "_hlc", None)

    def _stamp_hlc(self, stamp: Any) -> None:
        self._hlc = stamp

    @property
    def listener(self) -> ListenerRef | None:
        return self._listener

    def set_listener(self, listener: ListenerRef | None) -> None:
        self._listener = listener

    # ------------------------------------------------------------------ #
    # Transient context
    # ------------------------------------------------------------------ #

    @property
    def context(self) -> NapletContext | None:
        return self._context

    def require_context(self) -> NapletContext:
        if self._context is None:
            raise NapletError(f"naplet {self._name!r} is not bound to a server context")
        return self._context

    def _bind_context(self, context: NapletContext | None) -> None:
        """Runtime hook: (re)bind or clear the per-server context."""
        self._context = context

    # ------------------------------------------------------------------ #
    # Travel & checkpoints
    # ------------------------------------------------------------------ #

    def travel(self) -> None:
        """Advance along the itinerary: dispatch to the next stop.

        On migration the itinerary driver raises a control-flow signal that
        unwinds :meth:`on_start`; when the journey is complete this simply
        returns and the runtime retires the agent.
        """
        self.itinerary.travel(self)

    def checkpoint(self) -> None:
        """Cooperative scheduling point — see :meth:`NapletContext.checkpoint`."""
        if self._context is not None:
            self._context.checkpoint()

    def report_home(self, payload: Any) -> None:
        """Report *payload* to the home listener, if one was attached."""
        if self._listener is not None:
            self._listener.report(self, payload)

    # ------------------------------------------------------------------ #
    # Cloning (paper Fig. 1; used by Par itinerary patterns)
    # ------------------------------------------------------------------ #

    def clone(self) -> "Naplet":
        """Deep-copy this naplet under a fresh heritage-extended id.

        The clone inherits the address book, state, listener ref, and the
        navigation history up to the cloning point; its credential is
        cleared and must be re-issued by the runtime (clones are re-signed
        so servers can still verify immutables).
        """
        context = self._context
        self._context = None  # transient: never copied
        try:
            dup: Naplet = copy.deepcopy(self)
        finally:
            self._context = context
        dup._nid = self.naplet_id.next_clone()
        dup._inherit_attributes = (
            dict(self._cred.attributes) if self._cred is not None else {}
        )
        dup._cred = None
        return dup

    @property
    def inherited_attributes(self) -> dict[str, str]:
        """Credential attributes carried over from the parent at clone time."""
        return dict(getattr(self, "_inherit_attributes", {}))

    # ------------------------------------------------------------------ #
    # Serialization — context is transient
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> dict[str, Any]:
        state = TrackedState.strip_tracking(dict(self.__dict__))
        state["_context"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._context = None

    def __repr__(self) -> str:
        nid = str(self._nid) if self._nid is not None else "<unlaunched>"
        return f"<{type(self).__name__} {self._name!r} id={nid}>"
