"""Core Naplet programming model (paper §2.1).

Public surface: the :class:`Naplet` agent base class and the value objects
it carries — :class:`NapletID`, :class:`Credential`, :class:`NapletState`,
:class:`AddressBook`, :class:`NavigationLog` — plus the transient
:class:`NapletContext` and the error hierarchy.
"""

from repro.core.address_book import AddressBook, AddressEntry
from repro.core.context import NapletContext
from repro.core.credential import Credential, SigningAuthority
from repro.core.errors import (
    CodeShippingError,
    CredentialError,
    ItineraryError,
    LandingDeniedError,
    LaunchDeniedError,
    NapletCommunicationError,
    NapletError,
    NapletInterrupted,
    NapletLocationError,
    NapletMigrationError,
    NapletSecurityError,
    NapletTerminated,
    PermissionDeniedError,
    ResourceError,
    ResourceLimitExceeded,
    SerializationError,
    ServiceChannelClosed,
    ServiceNotFoundError,
    StateAccessError,
)
from repro.core.listener import ListenerRef, NapletListener, ReportEnvelope
from repro.core.naplet import Naplet
from repro.core.naplet_id import NapletID
from repro.core.navigation_log import NavigationLog, NavigationRecord
from repro.core.state import AccessMode, NapletState, ProtectedNapletState

__all__ = [
    "Naplet",
    "NapletID",
    "Credential",
    "SigningAuthority",
    "NapletState",
    "ProtectedNapletState",
    "AccessMode",
    "AddressBook",
    "AddressEntry",
    "NavigationLog",
    "NavigationRecord",
    "NapletContext",
    "NapletListener",
    "ListenerRef",
    "ReportEnvelope",
    # errors
    "NapletError",
    "NapletCommunicationError",
    "NapletLocationError",
    "NapletMigrationError",
    "LaunchDeniedError",
    "LandingDeniedError",
    "NapletSecurityError",
    "PermissionDeniedError",
    "CredentialError",
    "ResourceError",
    "ResourceLimitExceeded",
    "ServiceNotFoundError",
    "ServiceChannelClosed",
    "ItineraryError",
    "StateAccessError",
    "NapletInterrupted",
    "NapletTerminated",
    "SerializationError",
    "CodeShippingError",
]
