"""Navigation log (paper §2.1).

Records arrival and departure times of the naplet at each server, giving the
owner detailed travel information for post-analysis.  The log travels with
the naplet; entries are appended by the runtime (Navigator/Monitor), never by
application code.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["NavigationRecord", "NavigationLog"]


@dataclass
class NavigationRecord:
    """One visit: the server, when the naplet arrived, and when it left."""

    server_urn: str
    arrival: float
    departure: float | None = None
    notes: dict[str, object] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.departure is not None

    @property
    def dwell(self) -> float | None:
        """Seconds spent at the server, once departed."""
        if self.departure is None:
            return None
        return self.departure - self.arrival


class NavigationLog:
    """Ordered visit history of a naplet."""

    def __init__(self) -> None:
        self._records: list[NavigationRecord] = []
        self._lock = threading.RLock()

    def record_arrival(self, server_urn: str, when: float | None = None) -> NavigationRecord:
        rec = NavigationRecord(server_urn=server_urn, arrival=when if when is not None else time.time())
        with self._lock:
            self._records.append(rec)
        return rec

    def record_departure(self, server_urn: str, when: float | None = None) -> NavigationRecord:
        """Close the most recent open visit to *server_urn*.

        Raises ``ValueError`` if there is no open visit there — a departure
        without an arrival indicates a runtime protocol bug.
        """
        stamp = when if when is not None else time.time()
        with self._lock:
            for rec in reversed(self._records):
                if rec.server_urn == server_urn and rec.departure is None:
                    rec.departure = stamp
                    return rec
        raise ValueError(f"no open visit at {server_urn!r} to depart from")

    def current_server(self) -> str | None:
        """Server of the open (not yet departed) visit, if any."""
        with self._lock:
            if self._records and self._records[-1].departure is None:
                return self._records[-1].server_urn
        return None

    def visits(self) -> list[NavigationRecord]:
        with self._lock:
            return list(self._records)

    def servers_visited(self) -> list[str]:
        """Visit-ordered server names (with repeats for revisits)."""
        with self._lock:
            return [r.server_urn for r in self._records]

    def total_dwell(self) -> float:
        """Sum of completed dwell times across all visits."""
        with self._lock:
            return sum(r.dwell for r in self._records if r.dwell is not None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[NavigationRecord]:
        return iter(self.visits())

    # -- pickling -------------------------------------------------------- #

    def __getstate__(self) -> dict[str, object]:
        with self._lock:
            return {"records": list(self._records)}

    def __setstate__(self, state: dict[str, object]) -> None:
        self._records = list(state["records"])  # type: ignore[arg-type]
        self._lock = threading.RLock()
