"""Hierarchical, immutable naplet identifiers (paper §2.1, Fig. 1).

A naplet identifier encodes *who*, *when*, and *where* the naplet was
created, plus clone-heritage information::

    czxu@ece.eng.wayne.edu:010512172720:2.1

reads: cloned (child #1 of generation-member #2) from the naplet created by
user ``czxu`` at 17:27:20 on May 12 2001 on host ``ece.eng.wayne.edu``.  The
heritage is a dot-separated sequence of integers; ``0`` is reserved for the
originator in a generation, so the original naplet is ``...:0`` and its
clones are ``...:0.1``, ``...:0.2`` … with recursive cloning extending the
sequence.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Iterator

from repro.util.timeutil import compact_timestamp

__all__ = ["NapletID"]

_ID_RE = re.compile(
    r"^(?P<owner>[^@:\s]+)@(?P<home>[^@:\s]+):(?P<stamp>\d{12}):(?P<heritage>\d+(?:\.\d+)*)$"
)


@dataclass(frozen=True, order=False)
class NapletID:
    """System-wide unique, immutable naplet identifier.

    Attributes
    ----------
    owner:
        The creating user (paper: ``czxu``).
    home:
        Hostname of the home server where the naplet was created.
    stamp:
        12-digit ``YYMMDDHHMMSS`` creation timestamp.
    heritage:
        Clone-heritage sequence; ``(0,)`` for an original naplet.
    """

    owner: str
    home: str
    stamp: str
    heritage: tuple[int, ...] = (0,)
    # Per-instance clone counter; not part of identity/equality.
    _clone_counter: list[int] = field(
        default_factory=lambda: [0], compare=False, hash=False, repr=False
    )
    _clone_lock: threading.Lock = field(
        default_factory=threading.Lock, compare=False, hash=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.owner or "@" in self.owner or ":" in self.owner:
            raise ValueError(f"invalid owner: {self.owner!r}")
        if not self.home or "@" in self.home or ":" in self.home:
            raise ValueError(f"invalid home host: {self.home!r}")
        if len(self.stamp) != 12 or not self.stamp.isdigit():
            raise ValueError(f"invalid timestamp: {self.stamp!r}")
        if not self.heritage or any(h < 0 for h in self.heritage):
            raise ValueError(f"invalid heritage: {self.heritage!r}")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, owner: str, home: str, stamp: str | None = None) -> "NapletID":
        """Mint a fresh original identifier (heritage ``0``)."""
        return cls(owner=owner, home=home, stamp=stamp or compact_timestamp())

    @classmethod
    def parse(cls, text: str) -> "NapletID":
        """Parse the paper's textual form ``owner@home:stamp:heritage``."""
        m = _ID_RE.match(text)
        if m is None:
            raise ValueError(f"not a naplet id: {text!r}")
        heritage = tuple(int(part) for part in m.group("heritage").split("."))
        return cls(
            owner=m.group("owner"),
            home=m.group("home"),
            stamp=m.group("stamp"),
            heritage=heritage,
        )

    # ------------------------------------------------------------------ #
    # Cloning
    # ------------------------------------------------------------------ #

    def next_clone(self) -> "NapletID":
        """Identifier for the next clone of this naplet.

        Clone ids extend the heritage sequence: the *k*-th clone of
        ``...:H`` is ``...:H.k`` (k starting at 1; 0 is reserved for the
        originator of the generation).  Cloning is recursive: clones may be
        cloned again, extending the sequence further (Fig. 1 shows
        ``...:2.0``, ``...:2.1``, ``...:2.2`` under ``...:2``).
        """
        with self._clone_lock:
            self._clone_counter[0] += 1
            child = self._clone_counter[0]
        return NapletID(
            owner=self.owner,
            home=self.home,
            stamp=self.stamp,
            heritage=self.heritage + (child,),
        )

    def generation_originator(self) -> "NapletID":
        """The ``...H.0`` member representing the originator of the next generation."""
        return NapletID(
            owner=self.owner,
            home=self.home,
            stamp=self.stamp,
            heritage=self.heritage + (0,),
        )

    # ------------------------------------------------------------------ #
    # Heritage queries
    # ------------------------------------------------------------------ #

    @property
    def is_original(self) -> bool:
        """True for a naplet that was never cloned from another."""
        return self.heritage == (0,)

    @property
    def generation(self) -> int:
        """Clone depth: 0 for the original, 1 for its direct clones, …"""
        return len(self.heritage) - 1

    def parent(self) -> "NapletID | None":
        """Identifier of the naplet this one was cloned from (None for originals)."""
        if len(self.heritage) == 1:
            return None
        return NapletID(
            owner=self.owner,
            home=self.home,
            stamp=self.stamp,
            heritage=self.heritage[:-1],
        )

    def is_ancestor_of(self, other: "NapletID") -> bool:
        """True when *other* descends from this naplet by cloning."""
        if (self.owner, self.home, self.stamp) != (other.owner, other.home, other.stamp):
            return False
        if len(other.heritage) <= len(self.heritage):
            return False
        return other.heritage[: len(self.heritage)] == self.heritage

    def same_family(self, other: "NapletID") -> bool:
        """True when both ids share creator, home, and creation stamp."""
        return (self.owner, self.home, self.stamp) == (other.owner, other.home, other.stamp)

    def lineage(self) -> Iterator["NapletID"]:
        """Yield this id and then each ancestor up to the original."""
        node: NapletID | None = self
        while node is not None:
            yield node
            node = node.parent()

    # ------------------------------------------------------------------ #
    # Pickling — locks are not serializable, and identifiers must travel
    # with their naplet, so we ship the clone counter value and rebuild the
    # lock on arrival.
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> dict[str, object]:
        return {
            "owner": self.owner,
            "home": self.home,
            "stamp": self.stamp,
            "heritage": self.heritage,
            "clone_count": self._clone_counter[0],
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        object.__setattr__(self, "owner", state["owner"])
        object.__setattr__(self, "home", state["home"])
        object.__setattr__(self, "stamp", state["stamp"])
        object.__setattr__(self, "heritage", state["heritage"])
        object.__setattr__(self, "_clone_counter", [state["clone_count"]])
        object.__setattr__(self, "_clone_lock", threading.Lock())

    # ------------------------------------------------------------------ #
    # Identity & rendering
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NapletID):
            return NotImplemented
        return (
            self.owner == other.owner
            and self.home == other.home
            and self.stamp == other.stamp
            and self.heritage == other.heritage
        )

    def __hash__(self) -> int:
        return hash((self.owner, self.home, self.stamp, self.heritage))

    def __str__(self) -> str:
        heritage = ".".join(str(h) for h in self.heritage)
        return f"{self.owner}@{self.home}:{self.stamp}:{heritage}"

    def __repr__(self) -> str:
        return f"NapletID({str(self)!r})"
