"""Transient runtime context bound to a naplet at arrival (paper §2.1).

The :class:`NapletContext` defines the confined environment a naplet executes
in.  It provides references to the *dispatch proxy* (migration), the
*messenger* (communication), and *stationary application services* on the
current server.  It is transient: never serialized for migration, and rebound
by the destination's resource manager when the naplet lands.

To avoid import cycles the context is defined against small structural
protocols; the concrete providers live in :mod:`repro.server`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from repro.core.errors import NapletError, ServiceNotFoundError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.naplet_id import NapletID

__all__ = [
    "DispatchProxy",
    "MessengerProxy",
    "ServiceProxy",
    "CheckpointHook",
    "NapletContext",
]


@runtime_checkable
class DispatchProxy(Protocol):
    """Migration interface the Navigator exposes to a resident naplet."""

    def dispatch(self, naplet: Any, destination: str) -> None:
        """Move *naplet* to *destination*; does not return on success."""
        ...

    def spawn_clone(self, naplet: Any, clone: Any, destination: str) -> "NapletID":
        """Launch *clone* of *naplet* toward *destination*; returns its id."""
        ...


@runtime_checkable
class MessengerProxy(Protocol):
    """Messaging interface scoped to one resident naplet."""

    def post_message(self, server_urn: str | None, target: "NapletID", body: Any) -> None: ...

    def get_message(self, timeout: float | None = None) -> Any: ...

    def poll_message(self) -> Any | None: ...


@runtime_checkable
class ServiceProxy(Protocol):
    """Resource-manager interface scoped to one resident naplet."""

    def open_service(self, name: str) -> Any:
        """Handler for a non-privileged (open) service."""
        ...

    def request_service_channel(self, name: str) -> Any:
        """Naplet-side endpoint of a channel to a privileged service."""
        ...

    def service_channel_list(self) -> dict[str, Any]:
        """Channels already granted to this naplet, keyed by service name."""
        ...


@runtime_checkable
class CheckpointHook(Protocol):
    """Monitor hook the naplet calls at cooperative checkpoints."""

    def checkpoint(self) -> None: ...


class NapletContext:
    """Confined execution environment for one naplet on one server.

    Parameters are the per-server facades; ``server_urn`` names the hosting
    server (e.g. ``naplet://hostA``) and ``hostname`` its bare host.
    """

    def __init__(
        self,
        server_urn: str,
        hostname: str,
        dispatcher: DispatchProxy,
        messenger: MessengerProxy,
        services: ServiceProxy,
        monitor_hook: CheckpointHook | None = None,
        extras: dict[str, Any] | None = None,
    ) -> None:
        self._server_urn = server_urn
        self._hostname = hostname
        self._dispatcher = dispatcher
        self._messenger = messenger
        self._services = services
        self._monitor_hook = monitor_hook
        self._extras = dict(extras or {})

    # -- identity of the hosting server --------------------------------- #

    @property
    def server_urn(self) -> str:
        return self._server_urn

    @property
    def hostname(self) -> str:
        return self._hostname

    # -- facades --------------------------------------------------------- #

    @property
    def dispatcher(self) -> DispatchProxy:
        return self._dispatcher

    @property
    def messenger(self) -> MessengerProxy:
        return self._messenger

    @property
    def services(self) -> ServiceProxy:
        return self._services

    def open_service(self, name: str) -> Any:
        return self._services.open_service(name)

    def service_channel(self, name: str) -> Any:
        """Fetch (or request) the channel to privileged service *name*."""
        granted = self._services.service_channel_list()
        if name in granted:
            return granted[name]
        try:
            return self._services.request_service_channel(name)
        except ServiceNotFoundError:
            raise
        except NapletError:
            raise

    def service_channel_list(self) -> dict[str, Any]:
        return self._services.service_channel_list()

    def extra(self, key: str, default: Any = None) -> Any:
        """Server-specific extension point (e.g. simulation clock access)."""
        return self._extras.get(key, default)

    # -- cooperative scheduling ------------------------------------------ #

    def checkpoint(self) -> None:
        """Cooperative scheduling point: deliver pending interrupts & quotas.

        Long-running naplet code should call this periodically; the monitor
        raises :class:`~repro.core.errors.NapletInterrupted` (or a quota
        error) from inside.
        """
        if self._monitor_hook is not None:
            self._monitor_hook.checkpoint()

    # -- transient-ness ---------------------------------------------------- #

    def __reduce__(self) -> tuple[Any, ...]:  # pragma: no cover - defensive
        raise TypeError(
            "NapletContext is transient and must not be serialized; "
            "the runtime rebinds it on arrival"
        )
