"""Home-side result listener (paper §6: ``NapletListener``).

A naplet is created with an optional listener to receive information it
reports from the field (``nap.getListener().report(...)`` in the paper's
listings).  The listener object living at home is *not* serializable — what
travels with the naplet is a :class:`ListenerRef`: home server URN plus a
listener key.  ``report()`` on the ref posts a user message addressed to the
home server's listener registry via the current context's messenger.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["NapletListener", "ListenerRef", "ReportEnvelope"]


@dataclass(frozen=True)
class ReportEnvelope:
    """One report delivered to a home listener."""

    listener_key: str
    reporter: Any  # NapletID of the reporting naplet
    payload: Any


class NapletListener:
    """Queue-backed receiver of reports from travelling naplets.

    Lives at the naplet's home; the launching API registers it with the home
    server under a unique key and hands the matching :class:`ListenerRef` to
    the naplet.  An optional callback is invoked synchronously on each
    report in addition to queueing.
    """

    def __init__(self, callback: Callable[[ReportEnvelope], None] | None = None) -> None:
        self._queue: "queue.Queue[ReportEnvelope]" = queue.Queue()
        self._callback = callback
        self._lock = threading.Lock()
        self._received = 0

    def deliver(self, envelope: ReportEnvelope) -> None:
        with self._lock:
            self._received += 1
        self._queue.put(envelope)
        if self._callback is not None:
            self._callback(envelope)

    def reports(self, count: int, timeout: float | None = 10.0) -> list[ReportEnvelope]:
        """Block for *count* reports; raises ``queue.Empty`` on timeout."""
        return [self._queue.get(timeout=timeout) for _ in range(count)]

    def next_report(self, timeout: float | None = 10.0) -> ReportEnvelope:
        return self._queue.get(timeout=timeout)

    def try_next(self) -> ReportEnvelope | None:
        try:
            return self._queue.get_nowait()
        except queue.Empty:
            return None

    @property
    def received(self) -> int:
        with self._lock:
            return self._received


@dataclass(frozen=True)
class ListenerRef:
    """Serializable handle naming a listener at a home server."""

    home_urn: str
    listener_key: str

    def report(self, naplet: Any, payload: Any) -> None:
        """Send *payload* home through the naplet's current messenger.

        ``naplet`` must be context-bound (i.e. currently resident at a
        server); the runtime routes the report as a listener-directed system
        delivery to the home server.
        """
        context = naplet.context
        if context is None:
            raise RuntimeError("cannot report: naplet has no bound context")
        context.messenger.post_report(self.home_urn, self.listener_key, payload)
