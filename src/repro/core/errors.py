"""Exception hierarchy for the Naplet framework.

Mirrors the paper's exception surface: the code listings reference
``NapletCommunicationException`` and ``InterruptedException``; the security
and resource sections imply permission and quota failures.  Everything
derives from :class:`NapletError` so applications can catch framework
failures with one handler.
"""

from __future__ import annotations

__all__ = [
    "NapletError",
    "NapletCommunicationError",
    "NapletLocationError",
    "NapletMigrationError",
    "LaunchDeniedError",
    "LandingDeniedError",
    "NapletSecurityError",
    "PermissionDeniedError",
    "CredentialError",
    "ResourceError",
    "ResourceLimitExceeded",
    "ServiceNotFoundError",
    "ServiceChannelClosed",
    "ItineraryError",
    "StateAccessError",
    "NapletInterrupted",
    "NapletTerminated",
    "NapletFrozen",
    "SerializationError",
    "DeltaBaseMissingError",
    "CodeShippingError",
    "ShippedCodeMissingError",
    "NapletDeparted",
    "NapletCompleted",
]


class NapletError(Exception):
    """Base class for all framework errors."""


class NapletCommunicationError(NapletError):
    """Message could not be delivered (paper: NapletCommunicationException)."""


class NapletLocationError(NapletCommunicationError):
    """A naplet could not be located by the Locator / directory services."""


class NapletMigrationError(NapletError):
    """Migration failed between LAUNCH and LANDING."""


class LaunchDeniedError(NapletMigrationError):
    """The source server's security manager refused LAUNCH permission."""


class LandingDeniedError(NapletMigrationError):
    """The destination server refused LANDING permission."""


class NapletSecurityError(NapletError):
    """Base class for security violations."""


class PermissionDeniedError(NapletSecurityError):
    """An operation was denied by the active :class:`SecurityPolicy`."""


class CredentialError(NapletSecurityError):
    """A credential failed signature verification or was tampered with."""


class ResourceError(NapletError):
    """Base class for resource-management failures."""


class ResourceLimitExceeded(ResourceError):
    """A naplet exceeded a CPU / memory / bandwidth quota set by its monitor."""

    def __init__(self, resource: str, used: float, limit: float) -> None:
        super().__init__(f"{resource} quota exceeded: used {used!r}, limit {limit!r}")
        self.resource = resource
        self.used = used
        self.limit = limit


class ServiceNotFoundError(ResourceError):
    """No service registered under the requested name."""


class ServiceChannelClosed(ResourceError):
    """Read/write on a service channel whose peer has shut down."""


class ItineraryError(NapletError):
    """Malformed or unsatisfiable itinerary."""


class StateAccessError(NapletSecurityError):
    """NapletState access violating the entry's protection mode."""


class NapletInterrupted(NapletError):
    """Raised inside a naplet thread when a system message interrupts it.

    The paper's Messenger "casts an interrupt onto the running naplet
    thread"; in Python we surface that as this exception at the naplet's next
    checkpoint, and the naplet's ``on_interrupt`` hook decides the reaction.
    """

    def __init__(self, control: str = "interrupt", payload: object | None = None) -> None:
        super().__init__(f"naplet interrupted: {control}")
        self.control = control
        self.payload = payload


class NapletTerminated(NapletInterrupted):
    """A TERMINATE system message: the naplet must unwind and die."""

    def __init__(self, payload: object | None = None) -> None:
        super().__init__("terminate", payload)


class NapletFrozen(NapletInterrupted):
    """A FREEZE control: unwind for checkpointing, without on_destroy.

    The frozen naplet's serialized image can later be thawed on any server;
    its ``on_start`` re-runs there, consistent with the per-visit restart
    semantics of ordinary migration.
    """

    def __init__(self, payload: object | None = None) -> None:
        super().__init__("freeze", payload)


class SerializationError(NapletError):
    """Naplet (de)serialization failed during migration."""


class DeltaBaseMissingError(SerializationError):
    """A delta envelope arrived but its base image is not cached here.

    Recoverable by protocol: the receiver acks ``need_full`` and the
    sender transparently re-ships the full image (DESIGN.md §6.7).
    """


class NapletDeparted(BaseException):
    """Control-flow signal: the naplet was dispatched to another server.

    Raised by the Navigator inside ``travel()`` to unwind the naplet's
    ``on_start`` frame after a successful dispatch.  Derives from
    ``BaseException`` so application-level ``except Exception`` blocks in
    agent code cannot accidentally swallow a migration.
    """

    def __init__(self, destination: str) -> None:
        super().__init__(f"naplet departed for {destination}")
        self.destination = destination


class NapletCompleted(BaseException):
    """Control-flow signal: the itinerary finished; the runtime retires the agent."""


class CodeShippingError(NapletError):
    """Codebase fetch / class reconstruction failed during lazy loading."""


class ShippedCodeMissingError(CodeShippingError):
    """An envelope referenced code by content hash this server lacks.

    Raised when a sender skipped re-shipping a bundle it believed the
    destination held (code-hash negotiation) but the destination's
    CodeCache has no matching module.  Recoverable by protocol: the
    receiver acks ``need_full`` and the sender re-ships with bundles.
    """
