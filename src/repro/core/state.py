"""Application-specific agent state with protection modes (paper §2.1).

Objects inside the :class:`NapletState` container live in one of three
protection modes:

- ``PRIVATE``   — accessible to the naplet only;
- ``PUBLIC``    — accessible to any naplet server in the itinerary;
- ``PROTECTED`` — accessible only to specific named servers (so, e.g., a
  server can update a returning naplet with new information).

The paper's prose enumerates "private, public, and private"; the third mode
is clearly the *protected*, server-scoped one described in the following
sentences, and that is what we implement.

Access is mediated by *principals*: the naplet itself accesses its state
through :meth:`get`/:meth:`set` (always allowed); servers access it through
:meth:`server_get`/:meth:`server_set` with their hostname, checked against
the entry's mode.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.errors import StateAccessError

__all__ = ["AccessMode", "NapletState", "ProtectedNapletState"]


class AccessMode(enum.Enum):
    """Protection mode of a state entry."""

    PRIVATE = "private"
    PUBLIC = "public"
    PROTECTED = "protected"


@dataclass
class _Entry:
    value: Any
    mode: AccessMode
    allowed_servers: frozenset[str]


class NapletState:
    """Serializable container of application agent state.

    The container itself is a mapping of string keys to entries; each entry
    carries its own protection mode.  The default mode for plain ``set`` is
    ``PRIVATE`` — confidential by default, as the paper's shopping-agent
    example requires.
    """

    def __init__(self, default_mode: AccessMode = AccessMode.PRIVATE) -> None:
        self._entries: dict[str, _Entry] = {}
        self._default_mode = default_mode
        self._lock = threading.RLock()
        # Mutation counter backing ``__delta_fingerprint__``: delta
        # shipping skips re-pickling this container only while the
        # counter is unchanged, so every write path below must bump it.
        self._mutations = 0

    # -- naplet-side access (always permitted) -------------------------- #

    def set(
        self,
        key: str,
        value: Any,
        mode: AccessMode | None = None,
        allowed_servers: frozenset[str] | set[str] | None = None,
    ) -> None:
        """Store *value* under *key* with the given protection mode.

        ``allowed_servers`` is only meaningful for ``PROTECTED`` entries and
        names the servers permitted to read/update the entry.
        """
        mode = mode or self._default_mode
        if mode is AccessMode.PROTECTED and not allowed_servers:
            raise ValueError("PROTECTED entries need a non-empty allowed_servers set")
        if mode is not AccessMode.PROTECTED and allowed_servers:
            raise ValueError("allowed_servers only applies to PROTECTED entries")
        with self._lock:
            self._mutations += 1
            self._entries[key] = _Entry(
                value=value,
                mode=mode,
                allowed_servers=frozenset(allowed_servers or ()),
            )

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            entry = self._entries.get(key)
            return default if entry is None else entry.value

    def update(self, key: str, value: Any) -> None:
        """Replace the value of an existing entry, keeping its mode."""
        with self._lock:
            if key not in self._entries:
                raise KeyError(key)
            self._mutations += 1
            self._entries[key].value = value

    def delete(self, key: str) -> None:
        with self._lock:
            self._mutations += 1
            del self._entries[key]

    def mode_of(self, key: str) -> AccessMode:
        with self._lock:
            return self._entries[key].mode

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    # -- server-side access (mode-checked) ------------------------------ #

    def _check(self, key: str, server: str) -> _Entry:
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(key)
        if entry.mode is AccessMode.PUBLIC:
            return entry
        if entry.mode is AccessMode.PROTECTED and server in entry.allowed_servers:
            return entry
        raise StateAccessError(
            f"server {server!r} may not access {entry.mode.value} state entry {key!r}"
        )

    def server_get(self, key: str, server: str) -> Any:
        """Read *key* on behalf of *server*; raises StateAccessError if denied."""
        with self._lock:
            return self._check(key, server).value

    def server_set(self, key: str, value: Any, server: str) -> None:
        """Update *key* on behalf of *server* (e.g. refreshing a returning naplet)."""
        with self._lock:
            entry = self._check(key, server)
            self._mutations += 1
            entry.value = value

    def visible_to(self, server: str) -> dict[str, Any]:
        """All entries the given server is allowed to see."""
        out: dict[str, Any] = {}
        with self._lock:
            for key, entry in self._entries.items():
                if entry.mode is AccessMode.PUBLIC or (
                    entry.mode is AccessMode.PROTECTED and server in entry.allowed_servers
                ):
                    out[key] = entry.value
        return out

    # -- delta shipping -------------------------------------------------- #

    def __delta_fingerprint__(self) -> int:
        """Mutation counter: unchanged counter ⇒ unchanged serialized form.

        The caveat is entry *values* mutated in place (``state.get("xs")
        .append(...)``): those bypass the counter exactly as they bypass
        everything else — use :meth:`update` to write them back.
        """
        with self._lock:
            return self._mutations

    # -- pickling -------------------------------------------------------- #

    def __getstate__(self) -> dict[str, Any]:
        with self._lock:
            return {"entries": dict(self._entries), "default_mode": self._default_mode}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._entries = dict(state["entries"])
        self._default_mode = state["default_mode"]
        self._lock = threading.RLock()
        self._mutations = 0


class ProtectedNapletState(NapletState):
    """NapletState whose default entries are PROTECTED-to-itinerary servers.

    The paper's MAN listing reserves a ``ProtectedNapletState`` space for
    gathered device information; here such a container defaults new entries
    to PUBLIC-to-servers visibility so servers can deposit results, while
    still allowing explicit PRIVATE entries.
    """

    def __init__(self) -> None:
        super().__init__(default_mode=AccessMode.PUBLIC)
