"""Metrics primitives: counters, gauges, histograms, and their registry.

The paper charges the NapletServer with "recording footprints of past and
current naplets for management purposes"; this module is the quantitative
half of that mandate.  A :class:`MetricsRegistry` holds named, label-aware
instruments:

- :class:`Counter`   — monotone totals (launches, hops, delivered messages);
- :class:`Gauge`     — point-in-time values, settable or computed lazily from
  a callback at snapshot time (mailbox queue depth, cache size);
- :class:`Histogram` — bucketed distributions with exponential latency
  buckets by default (hop latency, wire send time).

All instruments are thread-safe and cheap on the hot path: one lock
acquisition and a dict update.  A registry created with ``enabled=False``
hands out the same instruments but every mutation is a no-op, so servers can
switch telemetry off wholesale (the overhead benchmark compares the two).

Snapshots (:meth:`MetricsRegistry.snapshot`) are immutable copies that can
be merged across servers — :meth:`MetricsSnapshot.merged` is what
``SpaceAdmin.space_metrics()`` uses to aggregate a whole naplet space.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSnapshot",
    "exponential_buckets",
]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def exponential_buckets(
    start: float = 1e-5, factor: float = 2.0, count: int = 16
) -> tuple[float, ...]:
    """Exponentially growing bucket upper bounds (default 10µs … ~0.33s)."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    bounds: list[float] = []
    value = start
    for _ in range(count):
        bounds.append(value)
        value *= factor
    return tuple(bounds)


class _Instrument:
    """Shared plumbing: name, help text, per-labelset samples, a lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, enabled: bool = True) -> None:
        self.name = name
        self.help = help_text
        self._enabled = enabled
        self._lock = threading.Lock()

    def labelsets(self) -> list[LabelKey]:
        with self._lock:
            return list(self._samples())  # type: ignore[attr-defined]

    def _samples(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing total, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, enabled: bool = True) -> None:
        super().__init__(name, help_text, enabled)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not self._enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def _samples(self) -> dict[LabelKey, float]:
        return self._values


class Gauge(_Instrument):
    """Settable point-in-time value (may go up and down)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, enabled: bool = True) -> None:
        super().__init__(name, help_text, enabled)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: str) -> None:
        if not self._enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def _samples(self) -> dict[LabelKey, float]:
        return self._values


@dataclass(frozen=True)
class HistogramValue:
    """Immutable histogram reading: count, sum, and cumulative-free buckets.

    ``buckets`` maps each upper bound to the number of observations at or
    below it *and above the previous bound* (plain, not cumulative); an
    implicit overflow bucket counts observations above the last bound.
    """

    count: int
    total: float
    bounds: tuple[float, ...]
    bucket_counts: tuple[int, ...]  # len(bounds) + 1, last = overflow

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merged(self, other: "HistogramValue") -> "HistogramValue":
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        return HistogramValue(
            count=self.count + other.count,
            total=self.total + other.total,
            bounds=self.bounds,
            bucket_counts=tuple(
                a + b for a, b in zip(self.bucket_counts, other.bucket_counts)
            ),
        )


class _HistogramCell:
    __slots__ = ("count", "total", "bucket_counts")

    def __init__(self, nbuckets: int) -> None:
        self.count = 0
        self.total = 0.0
        self.bucket_counts = [0] * (nbuckets + 1)


class Histogram(_Instrument):
    """Bucketed distribution (exponential latency buckets by default)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: tuple[float, ...] | None = None,
        enabled: bool = True,
    ) -> None:
        super().__init__(name, help_text, enabled)
        bounds = tuple(buckets) if buckets is not None else exponential_buckets()
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name}: buckets must strictly increase")
        self.bounds = bounds
        self._cells: dict[LabelKey, _HistogramCell] = {}

    def observe(self, value: float, **labels: str) -> None:
        if not self._enabled:
            return
        key = _label_key(labels)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = _HistogramCell(len(self.bounds))
            cell.count += 1
            cell.total += value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    cell.bucket_counts[index] += 1
                    break
            else:
                cell.bucket_counts[-1] += 1

    def value(self, **labels: str) -> HistogramValue:
        key = _label_key(labels)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                return HistogramValue(0, 0.0, self.bounds, (0,) * (len(self.bounds) + 1))
            return HistogramValue(
                cell.count, cell.total, self.bounds, tuple(cell.bucket_counts)
            )

    def _samples(self) -> dict[LabelKey, _HistogramCell]:
        return self._cells


@dataclass(frozen=True)
class MetricFamily:
    """One named metric in a snapshot: type, help, and per-labelset values."""

    name: str
    kind: str
    help: str
    samples: dict[LabelKey, float | HistogramValue] = field(default_factory=dict)

    def merged(self, other: "MetricFamily") -> "MetricFamily":
        if other.kind != self.kind:
            raise ValueError(f"metric {self.name}: kind mismatch {self.kind}/{other.kind}")
        samples = dict(self.samples)
        for key, value in other.samples.items():
            mine = samples.get(key)
            if mine is None:
                samples[key] = value
            elif isinstance(value, HistogramValue):
                assert isinstance(mine, HistogramValue)
                samples[key] = mine.merged(value)
            else:
                samples[key] = float(mine) + float(value)
        return MetricFamily(self.name, self.kind, self.help, samples)


class MetricsSnapshot:
    """Immutable, mergeable view of a registry at one instant."""

    def __init__(self, families: dict[str, MetricFamily]) -> None:
        self._families = families

    def families(self) -> list[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def family(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def value(self, name: str, **labels: str) -> float | HistogramValue:
        """Value of one sample (0.0 / empty histogram when absent)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        return family.samples.get(_label_key(labels), 0.0)

    def total(self, name: str) -> float:
        """Sum of a counter/gauge over all labelsets (histograms: total count)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        result = 0.0
        for value in family.samples.values():
            result += value.count if isinstance(value, HistogramValue) else float(value)
        return result

    def names(self) -> list[str]:
        return sorted(self._families)

    def __iter__(self) -> Iterator[MetricFamily]:
        return iter(self.families())

    def __len__(self) -> int:
        return len(self._families)

    @classmethod
    def merged(cls, snapshots: "list[MetricsSnapshot]") -> "MetricsSnapshot":
        """Sum counters/gauges and merge histograms across *snapshots*."""
        families: dict[str, MetricFamily] = {}
        for snapshot in snapshots:
            for family in snapshot.families():
                existing = families.get(family.name)
                families[family.name] = (
                    family if existing is None else existing.merged(family)
                )
        return cls(families)


class MetricsRegistry:
    """Named instrument store; get-or-create access, snapshot export."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, _Instrument] = {}
        self._gauge_fns: dict[str, tuple[str, Callable[[], float]]] = {}
        self._lock = threading.Lock()

    # -- get-or-create --------------------------------------------------- #

    def _get_or_create(self, name: str, factory: Callable[[], _Instrument]) -> _Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory()
            return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        instrument = self._get_or_create(
            name, lambda: Counter(name, help_text, self.enabled)
        )
        if not isinstance(instrument, Counter):
            raise TypeError(f"metric {name!r} already registered as {instrument.kind}")
        return instrument

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        instrument = self._get_or_create(
            name, lambda: Gauge(name, help_text, self.enabled)
        )
        if not isinstance(instrument, Gauge):
            raise TypeError(f"metric {name!r} already registered as {instrument.kind}")
        return instrument

    def histogram(
        self, name: str, help_text: str = "", buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        instrument = self._get_or_create(
            name, lambda: Histogram(name, help_text, buckets, self.enabled)
        )
        if not isinstance(instrument, Histogram):
            raise TypeError(f"metric {name!r} already registered as {instrument.kind}")
        return instrument

    def gauge_fn(self, name: str, help_text: str, fn: Callable[[], float]) -> None:
        """Register a gauge computed lazily at snapshot time (queue depths)."""
        with self._lock:
            self._gauge_fns[name] = (help_text, fn)

    # -- export ----------------------------------------------------------- #

    def snapshot(self) -> MetricsSnapshot:
        families: dict[str, MetricFamily] = {}
        with self._lock:
            instruments = list(self._instruments.values())
            gauge_fns = dict(self._gauge_fns)
        for instrument in instruments:
            with instrument._lock:
                if isinstance(instrument, Histogram):
                    samples: dict[LabelKey, float | HistogramValue] = {
                        key: HistogramValue(
                            cell.count,
                            cell.total,
                            instrument.bounds,
                            tuple(cell.bucket_counts),
                        )
                        for key, cell in instrument._cells.items()
                    }
                else:
                    samples = dict(instrument._samples())
            families[instrument.name] = MetricFamily(
                instrument.name, instrument.kind, instrument.help, samples
            )
        if self.enabled:
            for name, (help_text, fn) in gauge_fns.items():
                try:
                    value = float(fn())
                except Exception:
                    continue  # a dying component must not break exposition
                families[name] = MetricFamily(name, "gauge", help_text, {(): value})
        return MetricsSnapshot(families)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(set(self._instruments) | set(self._gauge_fns))
