"""Naplet-space telemetry: journey tracing, metrics, in-space exposition.

Three layers (see DESIGN.md §"Telemetry architecture"):

- :mod:`repro.telemetry.metrics` — thread-safe Counter/Gauge/Histogram
  primitives with labels, and the per-server :class:`MetricsRegistry`;
- :mod:`repro.telemetry.trace` — :class:`TraceContext` minted at launch and
  carried by the naplet, timed :class:`Span` records, the per-server
  :class:`Tracer`; :mod:`repro.telemetry.journey` stitches cross-server
  spans into one ordered :class:`Journey` tree;
- :mod:`repro.telemetry.exposition` — :class:`ServerTelemetry` (the bundle
  every server owns) and :class:`TelemetryService` (the open ``telemetry``
  service a monitoring naplet harvests), plus text/JSON renderers.
"""

from repro.telemetry.exposition import (
    ServerTelemetry,
    TelemetryService,
    metrics_to_dict,
    render_metrics_text,
    span_to_dict,
)
from repro.telemetry.export import (
    INSTANT_EVENT_KINDS,
    chrome_trace,
    journal_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.journal import (
    JournalRecord,
    JournalService,
    SpaceJournal,
    causal_key,
    format_record,
    merge_journals,
    span_from_record,
)
from repro.telemetry.journey import (
    CriticalPath,
    HopBreakdown,
    Journey,
    JourneyNode,
    stitch,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricFamily,
    MetricsRegistry,
    MetricsSnapshot,
    exponential_buckets,
)
from repro.telemetry.trace import Span, TraceContext, Tracer, new_span_id, new_trace_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSnapshot",
    "exponential_buckets",
    "TraceContext",
    "Span",
    "Tracer",
    "new_span_id",
    "new_trace_id",
    "Journey",
    "JourneyNode",
    "stitch",
    "CriticalPath",
    "HopBreakdown",
    "chrome_trace",
    "write_chrome_trace",
    "journal_chrome_trace",
    "INSTANT_EVENT_KINDS",
    "JournalRecord",
    "JournalService",
    "SpaceJournal",
    "causal_key",
    "format_record",
    "merge_journals",
    "span_from_record",
    "ServerTelemetry",
    "TelemetryService",
    "render_metrics_text",
    "metrics_to_dict",
    "span_to_dict",
]
