"""The space-wide flight recorder (DESIGN.md §6.5).

Every server keeps one bounded, append-only :class:`SpaceJournal`: a ring
of typed :class:`JournalRecord` entries unifying what previously lived in
scattered places — the server :class:`~repro.util.eventlog.EventLog`
(shared by Navigator, Messenger, Locator, Monitor, code shipping and the
transport), completed :class:`~repro.telemetry.trace.Span` records, health
findings, dead-letter transitions, and injected
:class:`~repro.faults.engine.FaultRecord`\\ s.  Each record carries a
hybrid-logical-clock stamp (:mod:`repro.util.hlc`), so journals harvested
from N servers merge into one causally consistent timeline even when the
servers' wall clocks disagree.

Feeding the journal costs the hot path one observer call per event/span;
when the journal is disabled every observer returns immediately.  The
clock is advanced by stamps piggybacked on transport frame headers (the
``"hlc"`` header) and inside migrating naplet pickles, mirroring how the
:class:`~repro.telemetry.trace.TraceContext` travels.

Harvesting mirrors the health plane: :class:`JournalService` is the open
``"journal"`` service a probe naplet (or ``SpaceAdmin.harvest_journal``)
reads, and :func:`merge_journals` produces the single timeline that
``tools/napletlog.py`` filters and renders.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.telemetry.trace import Span
from repro.util.eventlog import EventRecord
from repro.util.hlc import HLCStamp, HybridLogicalClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.engine import FaultRecord
    from repro.server.server import NapletServer
    from repro.telemetry.metrics import Counter

__all__ = [
    "JournalRecord",
    "SpaceJournal",
    "JournalService",
    "merge_journals",
    "causal_key",
    "span_from_record",
    "format_record",
]

# EventLog kinds that deserve their own journal category so queries can
# pull "everything the watchdog said" or "every dead-letter transition"
# without enumerating kinds.
_CATEGORY_BY_KIND = {
    "health-finding": "finding",
    "health-finding-resolved": "finding",
    "message-dead-lettered": "deadletter",
    "dead-letters-requeued": "deadletter",
}

# Detail keys that name the naplet a record is about, in precedence order.
_NAPLET_KEYS = ("naplet", "target", "clone")


@dataclass(frozen=True)
class JournalRecord:
    """One flight-recorder entry: typed, stamped, JSON-describable."""

    seq: int  # per-server append sequence (merge tie-break)
    hlc: HLCStamp
    kind: str
    category: str  # "event" | "span" | "fault" | "finding" | "deadletter" | "perf" | "load"
    server: str
    wall: float
    mono: float
    naplet: str | None = None
    trace_id: str | None = None
    detail: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "hlc": self.hlc.describe(),
            "kind": self.kind,
            "category": self.category,
            "server": self.server,
            "wall": self.wall,
            "mono": self.mono,
            "naplet": self.naplet,
            "trace_id": self.trace_id,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JournalRecord":
        return cls(
            seq=int(data["seq"]),
            hlc=HLCStamp.from_dict(data["hlc"]),
            kind=str(data["kind"]),
            category=str(data["category"]),
            server=str(data["server"]),
            wall=float(data["wall"]),
            mono=float(data["mono"]),
            naplet=data.get("naplet"),
            trace_id=data.get("trace_id"),
            detail=dict(data.get("detail") or {}),
        )

    def mentions(self, subject: str) -> bool:
        """True when this record is about *subject* (naplet id or host)."""
        if self.naplet == subject or self.server == subject:
            return True
        return any(str(v) == subject for v in self.detail.values())


def causal_key(record: JournalRecord) -> tuple:
    """Sort key realizing the HLC total order (seq breaks same-node ties)."""
    return (record.hlc, record.seq)


def merge_journals(
    journals: Iterable[Iterable[JournalRecord]],
) -> list[JournalRecord]:
    """Merge per-server journals into one causally ordered timeline."""
    timeline = [record for journal in journals for record in journal]
    timeline.sort(key=causal_key)
    return timeline


class SpaceJournal:
    """Bounded per-server ring of :class:`JournalRecord` (thread-safe).

    Observers (:meth:`observe_event`, :meth:`observe_span`,
    :meth:`observe_fault`) adapt the existing telemetry objects into
    records; :meth:`receive` advances the clock from a piggybacked stamp.
    A disabled journal appends nothing and costs one boolean check.
    """

    def __init__(
        self,
        server: str,
        capacity: int = 4096,
        enabled: bool = True,
        time_source: Any | None = None,
        records_counter: "Counter | None" = None,
    ) -> None:
        self.server = server
        self.capacity = capacity
        self.enabled = enabled
        self.clock = HybridLogicalClock(server, time_source=time_source)
        self._time = time_source or time.time
        self._records: list[JournalRecord] = []
        self._seq = 0
        self._total = 0
        self._lock = threading.Lock()
        self._records_counter = records_counter

    # -- recording -------------------------------------------------------- #

    def append(
        self,
        kind: str,
        category: str = "event",
        naplet: str | None = None,
        trace_id: str | None = None,
        detail: dict[str, Any] | None = None,
        wall: float | None = None,
        mono: float | None = None,
    ) -> JournalRecord | None:
        if not self.enabled:
            return None
        stamp = self.clock.now()
        if wall is None:
            wall = self._time()
        elif self._time is not time.time:
            # A custom time source models this server's (skewed) local
            # clock; shift component-provided walls into that domain so
            # the journal reads as a machine with that clock would write
            # it.  Real deployments take the fast path above.
            wall = wall + (self._time() - time.time())
        with self._lock:
            self._seq += 1
            record = JournalRecord(
                seq=self._seq,
                hlc=stamp,
                kind=kind,
                category=category,
                server=self.server,
                wall=wall,
                mono=time.monotonic() if mono is None else mono,
                naplet=naplet,
                trace_id=trace_id,
                detail=detail or {},
            )
            self._records.append(record)
            self._total += 1
            if len(self._records) > self.capacity:
                del self._records[: len(self._records) - self.capacity]
        if self._records_counter is not None:
            self._records_counter.inc(kind=kind)
        return record

    def observe_event(self, record: EventRecord) -> None:
        """EventLog observer: every structured event becomes a record."""
        if not self.enabled:
            return
        naplet = None
        for key in _NAPLET_KEYS:
            value = record.detail.get(key)
            if value is not None:
                naplet = str(value)
                break
        self.append(
            kind=record.kind,
            category=_CATEGORY_BY_KIND.get(record.kind, "event"),
            naplet=naplet,
            detail=dict(record.detail),
            wall=record.wall,
            mono=record.mono,
        )

    def observe_span(self, span: Span) -> None:
        """Tracer observer: completed spans enter the journal as records."""
        if not self.enabled:
            return
        naplet = span.attributes.get("naplet")
        self.append(
            kind=span.name,
            category="span",
            naplet=str(naplet) if naplet is not None else None,
            trace_id=span.trace_id,
            detail={
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "duration": span.duration,
                "status": span.status,
                "attributes": dict(span.attributes),
            },
            wall=span.start_wall,
            mono=span.start_mono,
        )

    def observe_fault(self, record: "FaultRecord") -> None:
        """FaultInjector observer: injected faults pin onto the timeline."""
        if not self.enabled:
            return
        self.append(
            kind="fault-injected",
            category="fault",
            detail=record.describe(),
            wall=record.wall,
            mono=record.mono,
        )

    def receive(self, encoded: str | HLCStamp) -> None:
        """Advance the clock from a stamp that rode a frame or a pickle."""
        if not self.enabled:
            return
        try:
            stamp = (
                encoded
                if isinstance(encoded, HLCStamp)
                else HLCStamp.decode(encoded)
            )
        except (ValueError, AttributeError):
            return  # a malformed header must never break frame dispatch
        self.clock.update(stamp)

    def header_stamp(self) -> str | None:
        """Encoded stamp for piggybacking on an outbound frame header."""
        if not self.enabled:
            return None
        return self.clock.now().encode()

    # -- queries ----------------------------------------------------------- #

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def total_appended(self) -> int:
        with self._lock:
            return self._total

    @property
    def dropped(self) -> int:
        """Records discarded by the ring bound since construction."""
        with self._lock:
            return max(0, self._total - len(self._records))

    def snapshot(self) -> list[JournalRecord]:
        with self._lock:
            return list(self._records)

    def records(
        self,
        kind: str | None = None,
        category: str | None = None,
        naplet: str | None = None,
        trace_id: str | None = None,
        after_seq: int = 0,
        limit: int | None = None,
    ) -> list[JournalRecord]:
        out = [
            r
            for r in self.snapshot()
            if (kind is None or r.kind == kind)
            and (category is None or r.category == category)
            and (naplet is None or r.naplet == naplet)
            and (trace_id is None or r.trace_id == trace_id)
            and r.seq > after_seq
        ]
        if limit is not None:
            out = out[-limit:]
        return out

    def slice_for(self, subject: str, limit: int = 32) -> list[JournalRecord]:
        """The most recent records mentioning *subject* (watchdog evidence)."""
        return [r for r in self.snapshot() if r.mentions(subject)][-limit:]

    def __len__(self) -> int:
        return self.depth


class JournalService:
    """Open-service handler exposing one server's journal in-space.

    Registered under ``"journal"`` on every server, next to the
    ``"telemetry"`` service; a probe naplet (or an in-process harvester)
    reads the ring and carries it home for the causal merge.
    """

    SERVICE_NAME = "journal"

    def __init__(self, server: "NapletServer") -> None:
        self._server = server

    @property
    def hostname(self) -> str:
        return self._server.hostname

    def status(self) -> dict[str, Any]:
        journal = self._server.journal
        return {
            "server": self._server.hostname,
            "journal": "enabled" if journal.enabled else "disabled",
            "depth": journal.depth,
            "dropped": journal.dropped,
            "capacity": journal.capacity,
        }

    def records(self, **filters: Any) -> list[JournalRecord]:
        return self._server.journal.records(**filters)

    def record_dicts(self, **filters: Any) -> list[dict[str, Any]]:
        return [r.describe() for r in self.records(**filters)]


# ---------------------------------------------------------------------- #
# Reconstruction + rendering helpers (napletlog, chrome export)
# ---------------------------------------------------------------------- #


def span_from_record(record: JournalRecord) -> Span:
    """Rebuild a :class:`Span` from a span-category journal record."""
    if record.category != "span":
        raise ValueError(f"record {record.seq} at {record.server} is not a span")
    detail = record.detail
    return Span(
        trace_id=record.trace_id or "",
        span_id=str(detail.get("span_id", "")),
        parent_id=detail.get("parent_id"),
        name=record.kind,
        server=record.server,
        start_wall=record.wall,
        start_mono=record.mono,
        duration=float(detail.get("duration", 0.0)),
        attributes=dict(detail.get("attributes") or {}),
        status=str(detail.get("status", "ok")),
    )


def format_record(record: JournalRecord) -> str:
    """One text line per record, shared by napletlog and napletstat."""
    hlc = record.hlc
    naplet = record.naplet or "-"
    summary = ", ".join(
        f"{k}={v}"
        for k, v in record.detail.items()
        if k not in ("attributes",) and v is not None
    )
    return (
        f"{hlc.wall:.6f}+{hlc.logical:<3d} {record.server:<8} "
        f"{record.category:<10} {record.kind:<26} {naplet:<30} {summary}"
    )
