"""Journey stitching: per-server span logs → one ordered journey tree.

Each server's :class:`~repro.telemetry.trace.Tracer` only sees the spans
recorded locally; a naplet's journey is scattered across every server it
visited.  :func:`stitch` reassembles the pieces: spans are linked to their
parents by id, orphans (parent recorded on a server we cannot see, or
trimmed from a bounded tracer) become roots, and siblings are ordered by
start time.  The result mirrors the paper's NavigationLog but with wall
timings and nested sub-steps (landings under hops, locator lookups under
message sends).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.telemetry.trace import Span

__all__ = ["JourneyNode", "Journey", "stitch"]


@dataclass
class JourneyNode:
    """One span plus its stitched children, ordered by start time."""

    span: Span
    children: list["JourneyNode"] = field(default_factory=list)

    def walk(self) -> Iterator["JourneyNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


class Journey:
    """The stitched, cross-server trace of one naplet's travels."""

    def __init__(self, trace_id: str | None, roots: list[JourneyNode]) -> None:
        self.trace_id = trace_id
        self.roots = roots

    # -- inspection -------------------------------------------------------- #

    def nodes(self) -> list[JourneyNode]:
        out: list[JourneyNode] = []
        for root in self.roots:
            out.extend(root.walk())
        return out

    @property
    def spans(self) -> list[Span]:
        return [node.span for node in self.nodes()]

    def find(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    def __len__(self) -> int:
        return len(self.spans)

    def __bool__(self) -> bool:
        return bool(self.roots)

    # -- rendering ---------------------------------------------------------- #

    def render(self) -> str:
        """ASCII tree of the journey with per-span timing and endpoints."""
        if not self.roots:
            return "(empty journey)"
        lines = [f"journey {self.trace_id}"]
        for index, root in enumerate(self.roots):
            self._render_node(root, lines, "", index == len(self.roots) - 1)
        return "\n".join(lines)

    def _render_node(
        self, node: JourneyNode, lines: list[str], prefix: str, last: bool
    ) -> None:
        span = node.span
        connector = "`-" if last else "|-"
        detail = _span_label(span)
        lines.append(f"{prefix}{connector} {detail}")
        child_prefix = prefix + ("   " if last else "|  ")
        for index, child in enumerate(node.children):
            self._render_node(child, lines, child_prefix, index == len(node.children) - 1)


def _span_label(span: Span) -> str:
    parts = [span.name, f"@{span.server}"]
    source = span.attributes.get("source")
    dest = span.attributes.get("dest")
    if source or dest:
        parts.append(f"{source or '?'} -> {dest or '?'}")
    parts.append(f"{span.duration * 1e3:.2f}ms")
    if span.status != "ok":
        parts.append(f"[{span.status}]")
    return " ".join(str(p) for p in parts)


def stitch(spans: Iterable[Span]) -> Journey:
    """Assemble *spans* (any order, any servers) into a :class:`Journey`.

    Spans whose parent is absent from the set become roots; children are
    sorted by monotonic start time (all tracers share one process clock;
    ties fall back to wall time, then span id for determinism).
    """
    nodes: dict[str, JourneyNode] = {}
    ordered: list[JourneyNode] = []
    trace_id: str | None = None
    for span in spans:
        if span.span_id in nodes:
            continue  # duplicate ids cannot nest under themselves
        node = JourneyNode(span)
        nodes[span.span_id] = node
        ordered.append(node)
        if trace_id is None:
            trace_id = span.trace_id
    roots: list[JourneyNode] = []
    for node in ordered:
        parent_id = node.span.parent_id
        parent = nodes.get(parent_id) if parent_id else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)

    def sort_key(n: JourneyNode) -> tuple[float, float, str]:
        return (n.span.start_mono, n.span.start_wall, n.span.span_id)

    for node in ordered:
        node.children.sort(key=sort_key)
    roots.sort(key=sort_key)
    return Journey(trace_id, roots)
