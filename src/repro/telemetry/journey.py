"""Journey stitching: per-server span logs → one ordered journey tree.

Each server's :class:`~repro.telemetry.trace.Tracer` only sees the spans
recorded locally; a naplet's journey is scattered across every server it
visited.  :func:`stitch` reassembles the pieces: spans are linked to their
parents by id, orphans (parent recorded on a server we cannot see, or
trimmed from a bounded tracer) become roots, and siblings are ordered by
start time.  The result mirrors the paper's NavigationLog but with wall
timings and nested sub-steps (landings under hops, locator lookups under
message sends).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.telemetry.trace import Span

__all__ = ["CriticalPath", "HopBreakdown", "JourneyNode", "Journey", "stitch"]


@dataclass(frozen=True)
class HopBreakdown:
    """Where one migration hop spent its time.

    ``total`` is the hop span's duration; ``serialize`` is measured by the
    navigator around ``serializer.dumps``; ``landing`` is the destination's
    landing-span duration; ``wire`` is the remainder (transfer frames on
    the wire plus destination queueing), clamped non-negative because the
    landing clock runs on another server.  ``execute`` is the dwell time
    between this hop's landing finishing and the *next* hop starting —
    the naplet's useful work at the destination (0.0 for the final hop).
    """

    source: str
    dest: str
    total: float
    serialize: float
    wire: float
    landing: float
    execute: float
    status: str = "ok"
    # On-wire payload bytes of this hop (the hop span's "bytes" attribute,
    # set by the navigator); 0 when the span predates the perf plane.
    bytes: int = 0

    @property
    def dominant(self) -> str:
        """The segment that dominated this hop (ties go leftmost)."""
        segments = {
            "serialize": self.serialize,
            "wire": self.wire,
            "landing": self.landing,
            "execute": self.execute,
        }
        return max(segments, key=lambda k: segments[k])

    def describe(self) -> dict:
        return {
            "source": self.source,
            "dest": self.dest,
            "total": self.total,
            "serialize": self.serialize,
            "wire": self.wire,
            "landing": self.landing,
            "execute": self.execute,
            "dominant": self.dominant,
            "status": self.status,
            "bytes": self.bytes,
        }


@dataclass(frozen=True)
class CriticalPath:
    """Per-hop latency attribution across a whole journey."""

    hops: tuple[HopBreakdown, ...]

    @property
    def total(self) -> float:
        return sum(hop.total + hop.execute for hop in self.hops)

    @property
    def total_bytes(self) -> int:
        """Wire payload bytes shipped across the whole journey."""
        return sum(hop.bytes for hop in self.hops)

    def segment_totals(self) -> dict[str, float]:
        """Journey-wide time per segment, for answering 'where did the
        latency go' without reading every hop."""
        totals = {"serialize": 0.0, "wire": 0.0, "landing": 0.0, "execute": 0.0}
        for hop in self.hops:
            totals["serialize"] += hop.serialize
            totals["wire"] += hop.wire
            totals["landing"] += hop.landing
            totals["execute"] += hop.execute
        return totals

    def dominant_segment(self) -> str | None:
        if not self.hops:
            return None
        totals = self.segment_totals()
        return max(totals, key=lambda k: totals[k])

    def render(self) -> str:
        """Aligned table of the per-hop breakdown, milliseconds."""
        if not self.hops:
            return "(no hops)"
        lines = [
            f"{'hop':<24} {'total':>9} {'serial':>9} {'wire':>9} "
            f"{'landing':>9} {'execute':>9} {'bytes':>9}  dominant"
        ]
        for hop in self.hops:
            route = f"{hop.source} -> {hop.dest}"
            lines.append(
                f"{route:<24} {hop.total * 1e3:>8.2f}m {hop.serialize * 1e3:>8.2f}m "
                f"{hop.wire * 1e3:>8.2f}m {hop.landing * 1e3:>8.2f}m "
                f"{hop.execute * 1e3:>8.2f}m {hop.bytes:>9}  {hop.dominant}"
                + (f" [{hop.status}]" if hop.status != "ok" else "")
            )
        totals = self.segment_totals()
        lines.append(
            f"{'(journey)':<24} {self.total * 1e3:>8.2f}m {totals['serialize'] * 1e3:>8.2f}m "
            f"{totals['wire'] * 1e3:>8.2f}m {totals['landing'] * 1e3:>8.2f}m "
            f"{totals['execute'] * 1e3:>8.2f}m {self.total_bytes:>9}  "
            f"{self.dominant_segment()}"
        )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.hops)

    def __iter__(self):
        return iter(self.hops)


@dataclass
class JourneyNode:
    """One span plus its stitched children, ordered by start time."""

    span: Span
    children: list["JourneyNode"] = field(default_factory=list)

    def walk(self) -> Iterator["JourneyNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


class Journey:
    """The stitched, cross-server trace of one naplet's travels."""

    def __init__(self, trace_id: str | None, roots: list[JourneyNode]) -> None:
        self.trace_id = trace_id
        self.roots = roots

    # -- inspection -------------------------------------------------------- #

    def nodes(self) -> list[JourneyNode]:
        out: list[JourneyNode] = []
        for root in self.roots:
            out.extend(root.walk())
        return out

    @property
    def spans(self) -> list[Span]:
        return [node.span for node in self.nodes()]

    def find(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    def __len__(self) -> int:
        return len(self.spans)

    def __bool__(self) -> bool:
        return bool(self.roots)

    # -- critical path ------------------------------------------------------ #

    def critical_path(self) -> CriticalPath:
        """Attribute each hop's latency to serialize/wire/landing/execute.

        Hops are taken in monotonic start order (every tracer shares the
        process clock, so cross-server ordering is sound in-process).  The
        wire share is what remains of the hop after subtracting the
        measured serialize time and the destination's landing-span
        duration; execute is the gap from a hop's end to the next hop's
        start, i.e. how long the naplet actually worked at the
        destination before moving on.
        """
        hop_nodes = sorted(
            (node for node in self.nodes() if node.span.name == "hop"),
            key=lambda n: (n.span.start_mono, n.span.start_wall, n.span.span_id),
        )
        breakdowns: list[HopBreakdown] = []
        for index, node in enumerate(hop_nodes):
            span = node.span
            serialize = float(span.attributes.get("serialize_s", 0.0) or 0.0)
            landing = sum(
                child.span.duration
                for child in node.children
                if child.span.name == "landing"
            )
            wire = max(0.0, span.duration - serialize - landing)
            hop_end = span.start_mono + span.duration
            if index + 1 < len(hop_nodes):
                next_start = hop_nodes[index + 1].span.start_mono
                execute = max(0.0, next_start - hop_end)
            else:
                execute = 0.0
            breakdowns.append(
                HopBreakdown(
                    source=str(span.attributes.get("source", span.server)),
                    dest=str(span.attributes.get("dest", "?")),
                    total=span.duration,
                    serialize=serialize,
                    wire=wire,
                    landing=landing,
                    execute=execute,
                    status=span.status,
                    bytes=int(span.attributes.get("bytes", 0) or 0),
                )
            )
        return CriticalPath(hops=tuple(breakdowns))

    # -- rendering ---------------------------------------------------------- #

    def render(self) -> str:
        """ASCII tree of the journey with per-span timing and endpoints."""
        if not self.roots:
            return "(empty journey)"
        lines = [f"journey {self.trace_id}"]
        for index, root in enumerate(self.roots):
            self._render_node(root, lines, "", index == len(self.roots) - 1)
        return "\n".join(lines)

    def _render_node(
        self, node: JourneyNode, lines: list[str], prefix: str, last: bool
    ) -> None:
        span = node.span
        connector = "`-" if last else "|-"
        detail = _span_label(span)
        lines.append(f"{prefix}{connector} {detail}")
        child_prefix = prefix + ("   " if last else "|  ")
        for index, child in enumerate(node.children):
            self._render_node(child, lines, child_prefix, index == len(node.children) - 1)


def _span_label(span: Span) -> str:
    parts = [span.name, f"@{span.server}"]
    source = span.attributes.get("source")
    dest = span.attributes.get("dest")
    if source or dest:
        parts.append(f"{source or '?'} -> {dest or '?'}")
    parts.append(f"{span.duration * 1e3:.2f}ms")
    if span.status != "ok":
        parts.append(f"[{span.status}]")
    return " ".join(str(p) for p in parts)


def stitch(spans: Iterable[Span]) -> Journey:
    """Assemble *spans* (any order, any servers) into a :class:`Journey`.

    Spans whose parent is absent from the set become roots; children are
    sorted by monotonic start time (all tracers share one process clock;
    ties fall back to wall time, then span id for determinism).
    """
    nodes: dict[str, JourneyNode] = {}
    ordered: list[JourneyNode] = []
    trace_id: str | None = None
    for span in spans:
        if span.span_id in nodes:
            continue  # duplicate ids cannot nest under themselves
        node = JourneyNode(span)
        nodes[span.span_id] = node
        ordered.append(node)
        if trace_id is None:
            trace_id = span.trace_id
    roots: list[JourneyNode] = []
    for node in ordered:
        parent_id = node.span.parent_id
        parent = nodes.get(parent_id) if parent_id else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)

    def sort_key(n: JourneyNode) -> tuple[float, float, str]:
        return (n.span.start_mono, n.span.start_wall, n.span.span_id)

    for node in ordered:
        node.children.sort(key=sort_key)
    roots.sort(key=sort_key)
    return Journey(trace_id, roots)
