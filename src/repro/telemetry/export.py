"""Chrome trace-event export: one timeline for spans, resources, faults.

``chrome://tracing`` / Perfetto load a JSON object with a ``traceEvents``
list; this module renders a naplet space's telemetry into that format so
a whole chaos experiment can be scrubbed on one timeline:

- every :class:`~repro.telemetry.trace.Span` becomes a complete (``"X"``)
  event — hops, landings, message sends, locator lookups — grouped into
  one *process* row per server and one *thread* row per naplet (spans
  with no naplet attribute group under their trace id);
- every :class:`~repro.health.profile.ResourceProfile` sample becomes a
  counter (``"C"``) event, so CPU and message-byte consumption render as
  area charts under the spans they explain;
- every fired :class:`~repro.faults.engine.FaultRecord` becomes an
  instant (``"i"``) event, pinning "the injector dropped this frame
  here" onto the exact moment the surrounding spans stretched.

All timestamps derive from the *same* process-wide monotonic clock the
tracers and the health plane sample (``time.monotonic()``), rebased to
the earliest event and scaled to microseconds, so ordering across
servers, profiles and faults is consistent by construction.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable

from repro.telemetry.trace import Span

if TYPE_CHECKING:  # pragma: no cover
    from repro.health.profile import ResourceProfile
    from repro.telemetry.journey import Journey

__all__ = ["chrome_trace", "write_chrome_trace"]

_FAULT_PROCESS = "fault-injector"


class _IdAllocator:
    """Stable small-integer ids for process/thread names, plus metadata."""

    def __init__(self) -> None:
        self._ids: dict[tuple[str, str | None], int] = {}
        self.metadata: list[dict[str, Any]] = []

    def pid(self, process: str) -> int:
        key = (process, None)
        pid = self._ids.get(key)
        if pid is None:
            pid = self._ids[key] = len(self._ids) + 1
            self.metadata.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "args": {"name": process},
                }
            )
        return pid

    def tid(self, process: str, thread: str) -> tuple[int, int]:
        pid = self.pid(process)
        key = (process, thread)
        tid = self._ids.get(key)
        if tid is None:
            tid = self._ids[key] = len(self._ids) + 1
            self.metadata.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
        return pid, tid


def _thread_label(span: Span) -> str:
    naplet = span.attributes.get("naplet")
    if naplet:
        return str(naplet)
    return f"trace {span.trace_id[:8]}"


def _flatten_profiles(profiles: Iterable[Any]) -> "list[tuple[str, ResourceProfile]]":
    """Accept bare profiles or ``(hostname, profile)`` pairs."""
    out: list[tuple[str, Any]] = []
    for entry in profiles:
        if isinstance(entry, tuple) and len(entry) == 2:
            host, profile = entry
            out.append((str(host), profile))
        else:
            out.append(("space", entry))
    return out


def chrome_trace(
    spans: "Iterable[Span] | Journey" = (),
    *,
    profiles: Iterable[Any] = (),
    fault_records: Iterable[Any] = (),
) -> dict[str, Any]:
    """Render telemetry into a Chrome trace-event JSON object.

    ``spans`` is any span iterable or a stitched :class:`Journey`;
    ``profiles`` takes :class:`ResourceProfile` objects or
    ``(hostname, profile)`` pairs (as :meth:`SpaceAdmin.top_naplets_by_cpu`
    returns); ``fault_records`` takes :class:`FaultRecord` objects (from
    :meth:`FaultInjector.records` / :meth:`VirtualNetwork.fault_records`).
    """
    span_list: list[Span] = (
        list(spans.spans) if hasattr(spans, "spans") else list(spans)
    )
    profile_list = _flatten_profiles(profiles)
    record_list = list(fault_records)

    # One shared monotonic origin so every event lands on the same axis.
    candidates: list[float] = [span.start_mono for span in span_list]
    candidates.extend(
        sample.mono for _host, profile in profile_list for sample in profile.samples
    )
    candidates.extend(record.mono for record in record_list)
    base = min(candidates) if candidates else 0.0

    def micros(mono: float) -> float:
        return (mono - base) * 1e6

    ids = _IdAllocator()
    events: list[dict[str, Any]] = []

    for span in span_list:
        pid, tid = ids.tid(span.server, _thread_label(span))
        args: dict[str, Any] = dict(span.attributes)
        if span.status != "ok":
            args["status"] = span.status
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "span" if span.status == "ok" else "span,error",
                "ts": micros(span.start_mono),
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )

    for host, profile in profile_list:
        pid = ids.pid(host)
        name = f"resources {profile.naplet_id}"
        for sample in profile.samples:
            events.append(
                {
                    "ph": "C",
                    "name": name,
                    "ts": micros(sample.mono),
                    "pid": pid,
                    "args": {
                        "cpu_seconds": sample.cpu_seconds,
                        "message_bytes": sample.message_bytes,
                    },
                }
            )

    for record in record_list:
        pid, tid = ids.tid(_FAULT_PROCESS, f"{record.source} -> {record.dest}")
        events.append(
            {
                "ph": "i",
                "name": f"fault {'+'.join(record.labels)}",
                "cat": "fault",
                "ts": micros(record.mono),
                "pid": pid,
                "tid": tid,
                "s": "g",  # global scope: draw the line across all rows
                "args": record.describe(),
            }
        )

    events.sort(key=lambda e: (e.get("ts", 0.0), e.get("pid", 0), e.get("tid", 0)))
    return {
        "traceEvents": ids.metadata + events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    path: str,
    spans: "Iterable[Span] | Journey" = (),
    *,
    profiles: Iterable[Any] = (),
    fault_records: Iterable[Any] = (),
) -> dict[str, Any]:
    """Write :func:`chrome_trace` output to *path*; returns the trace dict."""
    trace = chrome_trace(spans, profiles=profiles, fault_records=fault_records)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
    return trace
