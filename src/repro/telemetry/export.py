"""Chrome trace-event export: one timeline for spans, resources, faults.

``chrome://tracing`` / Perfetto load a JSON object with a ``traceEvents``
list; this module renders a naplet space's telemetry into that format so
a whole chaos experiment can be scrubbed on one timeline:

- every :class:`~repro.telemetry.trace.Span` becomes a complete (``"X"``)
  event — hops, landings, message sends, locator lookups — grouped into
  one *process* row per server and one *thread* row per naplet (spans
  with no naplet attribute group under their trace id);
- every :class:`~repro.health.profile.ResourceProfile` sample becomes a
  counter (``"C"``) event, so CPU and message-byte consumption render as
  area charts under the spans they explain;
- every fired :class:`~repro.faults.engine.FaultRecord` becomes an
  instant (``"i"``) event, pinning "the injector dropped this frame
  here" onto the exact moment the surrounding spans stretched;
- every hop span carrying byte attribution (the perf plane) additionally
  emits counter (``"C"``) tracks — per-hop payload/header/code bytes and
  serialize milliseconds — so migration cost renders as an area chart
  alongside the hops that paid it.

All timestamps derive from the *same* process-wide monotonic clock the
tracers and the health plane sample (``time.monotonic()``), rebased to
the earliest event and scaled to microseconds, so ordering across
servers, profiles and faults is consistent by construction.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable

from repro.telemetry.trace import Span

if TYPE_CHECKING:  # pragma: no cover
    from repro.health.profile import ResourceProfile
    from repro.telemetry.journey import Journey

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "journal_chrome_trace",
    "INSTANT_EVENT_KINDS",
]

_FAULT_PROCESS = "fault-injector"

# EventLog kinds rendered as instant events: state transitions that have
# no duration but explain why the surrounding spans stretched or vanished
# (a message died, a backlog drained, an Alt mirror burned).
INSTANT_EVENT_KINDS = (
    "message-dead-lettered",
    "dead-letters-requeued",
    "alt-failover",
)


class _IdAllocator:
    """Stable small-integer ids for process/thread names, plus metadata."""

    def __init__(self) -> None:
        self._ids: dict[tuple[str, str | None], int] = {}
        self.metadata: list[dict[str, Any]] = []

    def pid(self, process: str) -> int:
        key = (process, None)
        pid = self._ids.get(key)
        if pid is None:
            pid = self._ids[key] = len(self._ids) + 1
            self.metadata.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "args": {"name": process},
                }
            )
        return pid

    def tid(self, process: str, thread: str) -> tuple[int, int]:
        pid = self.pid(process)
        key = (process, thread)
        tid = self._ids.get(key)
        if tid is None:
            tid = self._ids[key] = len(self._ids) + 1
            self.metadata.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
        return pid, tid


def _thread_label(span: Span) -> str:
    naplet = span.attributes.get("naplet")
    if naplet:
        return str(naplet)
    return f"trace {span.trace_id[:8]}"


def _flatten_profiles(profiles: Iterable[Any]) -> "list[tuple[str, ResourceProfile]]":
    """Accept bare profiles or ``(hostname, profile)`` pairs."""
    out: list[tuple[str, Any]] = []
    for entry in profiles:
        if isinstance(entry, tuple) and len(entry) == 2:
            host, profile = entry
            out.append((str(host), profile))
        else:
            out.append(("space", entry))
    return out


def _flatten_events(events: Iterable[Any]) -> list[tuple[str, Any]]:
    """Accept bare EventRecords or ``(hostname, record)`` pairs."""
    out: list[tuple[str, Any]] = []
    for entry in events:
        if isinstance(entry, tuple) and len(entry) == 2:
            host, record = entry
            out.append((str(host), record))
        else:
            out.append(("space", entry))
    return out


def chrome_trace(
    spans: "Iterable[Span] | Journey" = (),
    *,
    profiles: Iterable[Any] = (),
    fault_records: Iterable[Any] = (),
    events: Iterable[Any] = (),
    instant_kinds: tuple[str, ...] = INSTANT_EVENT_KINDS,
) -> dict[str, Any]:
    """Render telemetry into a Chrome trace-event JSON object.

    ``spans`` is any span iterable or a stitched :class:`Journey`;
    ``profiles`` takes :class:`ResourceProfile` objects or
    ``(hostname, profile)`` pairs (as :meth:`SpaceAdmin.top_naplets_by_cpu`
    returns); ``fault_records`` takes :class:`FaultRecord` objects (from
    :meth:`FaultInjector.records` / :meth:`VirtualNetwork.fault_records`);
    ``events`` takes :class:`~repro.util.eventlog.EventRecord` objects or
    ``(hostname, record)`` pairs, of which the kinds listed in
    ``instant_kinds`` (dead-letter transitions, Alt failovers) are drawn
    as instant events on their server's row.
    """
    span_list: list[Span] = (
        list(spans.spans) if hasattr(spans, "spans") else list(spans)
    )
    profile_list = _flatten_profiles(profiles)
    record_list = list(fault_records)
    event_list = [
        (host, record)
        for host, record in _flatten_events(events)
        if record.kind in instant_kinds
    ]

    # One shared monotonic origin so every event lands on the same axis.
    candidates: list[float] = [span.start_mono for span in span_list]
    candidates.extend(
        sample.mono for _host, profile in profile_list for sample in profile.samples
    )
    candidates.extend(record.mono for record in record_list)
    candidates.extend(record.mono for _host, record in event_list)
    base = min(candidates) if candidates else 0.0

    def micros(mono: float) -> float:
        return (mono - base) * 1e6

    ids = _IdAllocator()
    out_events: list[dict[str, Any]] = []

    for span in span_list:
        pid, tid = ids.tid(span.server, _thread_label(span))
        args: dict[str, Any] = dict(span.attributes)
        if span.status != "ok":
            args["status"] = span.status
        out_events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "span" if span.status == "ok" else "span,error",
                "ts": micros(span.start_mono),
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        # Perf-plane counter tracks: a hop carrying byte attribution
        # renders its cost as an area chart on the source server's row.
        if span.name == "hop" and span.attributes.get("bytes"):
            payload = int(span.attributes.get("bytes", 0) or 0)
            out_events.append(
                {
                    "ph": "C",
                    "name": "hop bytes",
                    "ts": micros(span.start_mono),
                    "pid": pid,
                    "args": {
                        "payload": payload,
                        "header": int(span.attributes.get("header_bytes", 0) or 0),
                        "code": int(span.attributes.get("code_bytes", 0) or 0),
                    },
                }
            )
            serialize_s = span.attributes.get("serialize_s")
            if serialize_s is not None:
                out_events.append(
                    {
                        "ph": "C",
                        "name": "hop serialize ms",
                        "ts": micros(span.start_mono),
                        "pid": pid,
                        "args": {"ms": float(serialize_s) * 1e3},
                    }
                )

    for host, profile in profile_list:
        pid = ids.pid(host)
        name = f"resources {profile.naplet_id}"
        for sample in profile.samples:
            out_events.append(
                {
                    "ph": "C",
                    "name": name,
                    "ts": micros(sample.mono),
                    "pid": pid,
                    "args": {
                        "cpu_seconds": sample.cpu_seconds,
                        "message_bytes": sample.message_bytes,
                    },
                }
            )

    for host, record in event_list:
        pid, tid = ids.tid(host, record.kind)
        args = {
            key: value for key, value in record.detail.items() if value is not None
        }
        out_events.append(
            {
                "ph": "i",
                "name": record.kind,
                "cat": "event",
                "ts": micros(record.mono),
                "pid": pid,
                "tid": tid,
                "s": "t",  # thread scope: pin to the server row it happened on
                "args": args,
            }
        )

    for record in record_list:
        pid, tid = ids.tid(_FAULT_PROCESS, f"{record.source} -> {record.dest}")
        out_events.append(
            {
                "ph": "i",
                "name": f"fault {'+'.join(record.labels)}",
                "cat": "fault",
                "ts": micros(record.mono),
                "pid": pid,
                "tid": tid,
                "s": "g",  # global scope: draw the line across all rows
                "args": record.describe(),
            }
        )

    out_events.sort(key=lambda e: (e.get("ts", 0.0), e.get("pid", 0), e.get("tid", 0)))
    return {
        "traceEvents": ids.metadata + out_events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    path: str,
    spans: "Iterable[Span] | Journey" = (),
    *,
    profiles: Iterable[Any] = (),
    fault_records: Iterable[Any] = (),
    events: Iterable[Any] = (),
    instant_kinds: tuple[str, ...] = INSTANT_EVENT_KINDS,
) -> dict[str, Any]:
    """Write :func:`chrome_trace` output to *path*; returns the trace dict."""
    trace = chrome_trace(
        spans,
        profiles=profiles,
        fault_records=fault_records,
        events=events,
        instant_kinds=instant_kinds,
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
    return trace


def journal_chrome_trace(records: Iterable[Any]) -> dict[str, Any]:
    """Render a harvested flight-recorder timeline as a Chrome trace.

    Accepts the :class:`~repro.telemetry.journal.JournalRecord` list a
    harvest produces (``SpaceAdmin.harvest_journal`` or the journal
    probe): span records are rebuilt into spans, fault records into
    injector instants, and the dead-letter / failover event kinds into
    per-server instants — one timeline from one artifact, which is how
    ``tools/napletlog.py --chrome`` renders an offline journal dump.
    """
    from repro.faults.engine import FaultRecord
    from repro.telemetry.journal import span_from_record
    from repro.util.eventlog import EventRecord

    spans: list[Span] = []
    faults: list[Any] = []
    instants: list[tuple[str, Any]] = []
    for record in records:
        if record.category == "span":
            spans.append(span_from_record(record))
        elif record.category == "fault":
            detail = record.detail
            faults.append(
                FaultRecord(
                    labels=tuple(detail.get("labels") or ()),
                    kind=str(detail.get("kind", "?")),
                    source=str(detail.get("source", "?")),
                    dest=str(detail.get("dest", "?")),
                    wall=record.wall,
                    mono=record.mono,
                )
            )
        elif record.kind in INSTANT_EVENT_KINDS:
            instants.append(
                (
                    record.server,
                    EventRecord(
                        kind=record.kind,
                        detail=dict(record.detail),
                        wall=record.wall,
                        mono=record.mono,
                    ),
                )
            )
    return chrome_trace(spans, fault_records=faults, events=instants)
