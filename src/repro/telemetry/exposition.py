"""Telemetry wiring and in-space exposition.

Two classes bridge the telemetry primitives into the naplet space:

- :class:`ServerTelemetry` bundles one server's :class:`MetricsRegistry`
  and :class:`Tracer` and pre-creates the standard instruments every
  component records into (launches, landings, hops, message counters,
  locator cache hits, quota trips, …).  A server constructed with
  ``ServerConfig.telemetry_enabled=False`` gets the same object with
  no-op instruments.

- :class:`TelemetryService` is the open ``telemetry`` service registered on
  every server, so a *monitoring naplet* can itinerate the space and
  harvest per-server metrics and spans exactly like the paper's MAN agents
  harvest SNMP variables — observability as just another network-centric
  workload.

Renderers keep exposition decoupled from formatting: text output follows
the Prometheus exposition idiom (``name{label="v"} value``); the dict form
is JSON-serializable for programmatic harvesters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.telemetry.metrics import (
    HistogramValue,
    MetricsRegistry,
    MetricsSnapshot,
    exponential_buckets,
)
from repro.telemetry.trace import Span, TraceContext, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.naplet import Naplet
    from repro.server.server import NapletServer

__all__ = [
    "ServerTelemetry",
    "TelemetryService",
    "render_metrics_text",
    "metrics_to_dict",
    "span_to_dict",
]


class ServerTelemetry:
    """One server's metrics registry + tracer + standard instruments."""

    def __init__(self, hostname: str, enabled: bool = True) -> None:
        self.hostname = hostname
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(hostname, enabled=enabled)
        reg = self.registry
        # NapletManager / Navigator
        self.launches = reg.counter(
            "naplet_launches_total", "Naplets launched from this server"
        )
        self.landings = reg.counter(
            "naplet_landings_total", "Naplet landings accepted at this server"
        )
        self.landings_denied = reg.counter(
            "naplet_landings_denied_total", "Landing requests this server denied"
        )
        self.hops = reg.counter(
            "naplet_hops_total", "Migration hops initiated at this server"
        )
        self.fast_path_hops = reg.counter(
            "naplet_fast_path_hops_total",
            "Hops completed by the single-round-trip migration fast path",
        )
        self.fast_path_fallbacks = reg.counter(
            "naplet_fast_path_fallbacks_total",
            "Fast-path transfers that fell back to the two-phase protocol",
        )
        self.migration_retries = reg.counter(
            "naplet_migration_retries_total",
            "Migration attempts retried under the server's RetryPolicy",
        )
        self.duplicate_transfers = reg.counter(
            "naplet_duplicate_transfers_total",
            "Retransmitted transfers re-acked without landing a second copy",
        )
        self.delta_hops = reg.counter(
            "naplet_delta_hops_total",
            "Hops that shipped a delta image instead of a full one",
        )
        self.delta_saved_bytes = reg.counter(
            "naplet_delta_saved_bytes_total",
            "Bytes delta shipping kept off the wire (unchanged cached fields)",
        )
        self.delta_full_reships = reg.counter(
            "naplet_delta_full_reships_total",
            "Deltas refused by the destination (base evicted / code missing) "
            "that were transparently re-shipped as full images",
        )
        self.hop_latency = reg.histogram(
            "naplet_hop_latency_seconds",
            "End-to-end migration latency (LAUNCH grant to transfer ack)",
        )
        self.frame_bytes = reg.counter(
            "naplet_frame_bytes_total", "Serialized payload bytes shipped, by kind"
        )
        self.itinerary_depth = reg.histogram(
            "naplet_itinerary_depth",
            "Servers visited so far, observed at each landing",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
        )
        # Perf plane (DESIGN.md §6.6): where the bytes and microseconds go
        self.hop_bytes = reg.histogram(
            "naplet_hop_bytes",
            "Bytes shipped per migration hop, split by part "
            "(payload | header | code)",
            buckets=exponential_buckets(start=64.0, factor=4.0, count=10),
        )
        self.serialize_seconds = reg.histogram(
            "naplet_serialize_seconds",
            "Naplet image serialize/deserialize time, by op (dumps | loads)",
        )
        # Messenger / Mailbox
        self.messages_delivered = reg.counter(
            "naplet_messages_delivered_total", "Messages deposited in a local mailbox"
        )
        self.messages_forwarded = reg.counter(
            "naplet_messages_forwarded_total", "Messages forwarded along a trace"
        )
        self.messages_parked = reg.counter(
            "naplet_messages_parked_total", "Messages parked in the special mailbox"
        )
        self.special_mailbox_hits = reg.counter(
            "naplet_special_mailbox_hits_total",
            "Parked messages claimed by a landing naplet",
        )
        self.message_retries = reg.counter(
            "naplet_message_retries_total",
            "Message sends retried under the server's RetryPolicy",
        )
        self.dead_letters = reg.counter(
            "naplet_dead_letters_total",
            "Messages dead-lettered after delivery gave up",
        )
        self.dead_letters_requeued = reg.counter(
            "naplet_dead_letters_requeued_total",
            "Dead letters successfully redelivered after a heal",
        )
        # Locator
        self.locator_hits = reg.counter(
            "naplet_locator_cache_hits_total", "Locator answers served from cache"
        )
        self.locator_misses = reg.counter(
            "naplet_locator_cache_misses_total", "Locator answers needing the directory"
        )
        self.locator_evictions = reg.counter(
            "naplet_locator_cache_evictions_total",
            "Locator cache entries evicted by the LRU capacity bound",
        )
        # NapletMonitor
        self.admitted = reg.counter(
            "naplet_admitted_total", "Naplet threads admitted by the monitor"
        )
        self.quota_trips = reg.counter(
            "naplet_quota_trips_total", "Quota violations raised, by resource"
        )
        self.cpu_seconds = reg.counter(
            "naplet_cpu_seconds_total", "CPU seconds consumed by retired naplets"
        )
        self.outcomes = reg.counter(
            "naplet_outcomes_total", "Visit outcomes, by terminal state"
        )

    # -- perf plane -------------------------------------------------------- #

    def serializer_observer(self) -> "_SerializerTelemetry":
        """Adapter feeding ``NapletSerializer`` costs into the histograms."""
        return _SerializerTelemetry(self)

    # -- span helpers ------------------------------------------------------ #

    def naplet_span(
        self,
        naplet: "Naplet",
        name: str,
        parent_id: str | None = None,
        **attributes: Any,
    ):
        """Span bound to *naplet*'s trace context (minting one if absent)."""
        ctx = naplet._ensure_trace()
        if naplet.has_id:
            attributes.setdefault("naplet", str(naplet.naplet_id))
        return self.tracer.span(name, ctx, parent_id=parent_id, **attributes)

    def span(self, name: str, ctx: TraceContext, parent_id: str | None = None, **attributes: Any):
        return self.tracer.span(name, ctx, parent_id=parent_id, **attributes)


class _SerializerTelemetry:
    """`SerializerObserver` recording into a server's perf histograms.

    When telemetry is disabled the registry hands out no-op instruments,
    so this observer costs two dead calls per serialize — the E11 bound
    already covers it.
    """

    def __init__(self, telemetry: ServerTelemetry) -> None:
        self._telemetry = telemetry

    def serialized(self, cost: Any) -> None:
        self._telemetry.serialize_seconds.observe(cost.seconds, op="dumps")

    def deserialized(self, seconds: float, nbytes: int) -> None:
        self._telemetry.serialize_seconds.observe(seconds, op="loads")


class TelemetryService:
    """Open-service handler exposing one server's telemetry in-space.

    Registered under the service name ``"telemetry"`` on every server; a
    visiting naplet obtains it with ``context.open_service("telemetry")``
    and harvests snapshots, rendered text, or raw spans.
    """

    SERVICE_NAME = "telemetry"

    def __init__(self, server: "NapletServer") -> None:
        self._server = server

    @property
    def hostname(self) -> str:
        return self._server.hostname

    @property
    def enabled(self) -> bool:
        return self._server.telemetry.enabled

    def status(self) -> dict[str, Any]:
        """Harvester handshake: is there anything to collect here?

        A server running with ``telemetry_enabled=False`` answers every
        query with empty-but-valid payloads; this tells the harvester
        *why* (``"disabled"``) instead of letting it misread silence as
        a perfectly idle server.
        """
        return {
            "server": self._server.hostname,
            "telemetry": "enabled" if self.enabled else "disabled",
            "health": "enabled" if self._server.health.enabled else "disabled",
        }

    def metrics(self) -> MetricsSnapshot:
        return self._server.telemetry.registry.snapshot()

    def metrics_text(self) -> str:
        if not self.enabled:
            return f"# telemetry disabled on {self._server.hostname}"
        return render_metrics_text(self.metrics())

    def health(self) -> dict[str, Any]:
        """The health plane's findings + profiles (empty shell when dormant)."""
        return self._server.health.describe()

    def wire_bytes(self) -> dict[str, int]:
        """This server's transport-level byte totals (perf plane).

        Read from the transport's per-endpoint ``bytes_sent_total`` /
        ``bytes_received_total`` counters, which account real wire bytes
        on TCP and mirror the TrafficMeter on simnet — the ingress/egress
        columns ``napletstat`` renders.
        """
        egress, ingress = self._server.transport.endpoint_bytes(
            self._server.hostname
        )
        return {"egress_bytes": egress, "ingress_bytes": ingress}

    def metrics_dict(self) -> dict[str, Any]:
        return metrics_to_dict(self.metrics())

    def spans(self, trace_id: str | None = None) -> list[Span]:
        tracer = self._server.telemetry.tracer
        return tracer.spans() if trace_id is None else tracer.spans_for(trace_id)

    def span_dicts(self, trace_id: str | None = None) -> list[dict[str, Any]]:
        return [span_to_dict(span) for span in self.spans(trace_id)]

    def event_counts(self) -> dict[str, int]:
        """EventLog kinds recorded here, for cross-checking with metrics."""
        counts: dict[str, int] = {}
        for record in self._server.events.snapshot():
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts


# ---------------------------------------------------------------------- #
# Renderers
# ---------------------------------------------------------------------- #


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash, double-quote, and newline are the three characters the
    format reserves inside quoted label values; anything else passes
    through.  Backslash must be first or it would re-escape the others.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + inner + "}"


def render_metrics_text(snapshot: MetricsSnapshot) -> str:
    """Prometheus-style text exposition of *snapshot*."""
    lines: list[str] = []
    for family in snapshot.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels in sorted(family.samples):
            value = family.samples[labels]
            label_text = _format_labels(labels)
            if isinstance(value, HistogramValue):
                lines.append(f"{family.name}_count{label_text} {value.count}")
                lines.append(f"{family.name}_sum{label_text} {value.total:.9g}")
                cumulative = 0
                for bound, count in zip(value.bounds, value.bucket_counts):
                    cumulative += count
                    bucket_labels = labels + (("le", f"{bound:.9g}"),)
                    lines.append(
                        f"{family.name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                    )
                cumulative += value.bucket_counts[-1]
                inf_labels = labels + (("le", "+Inf"),)
                lines.append(
                    f"{family.name}_bucket{_format_labels(inf_labels)} {cumulative}"
                )
            else:
                lines.append(f"{family.name}{label_text} {value:.9g}")
    return "\n".join(lines)


def metrics_to_dict(snapshot: MetricsSnapshot) -> dict[str, Any]:
    """JSON-serializable form of *snapshot* (labels become sorted dicts)."""
    out: dict[str, Any] = {}
    for family in snapshot.families():
        samples = []
        for labels in sorted(family.samples):
            value = family.samples[labels]
            if isinstance(value, HistogramValue):
                encoded: Any = {
                    "count": value.count,
                    "sum": value.total,
                    "buckets": [
                        {"le": bound, "count": count}
                        for bound, count in zip(value.bounds, value.bucket_counts)
                    ],
                    "overflow": value.bucket_counts[-1],
                }
            else:
                encoded = value
            samples.append({"labels": dict(labels), "value": encoded})
        out[family.name] = {
            "type": family.kind,
            "help": family.help,
            "samples": samples,
        }
    return out


def span_to_dict(span: Span) -> dict[str, Any]:
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "server": span.server,
        "start_wall": span.start_wall,
        "duration": span.duration,
        "status": span.status,
        "attributes": dict(span.attributes),
    }
