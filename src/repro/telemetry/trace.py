"""Journey tracing: trace contexts, spans, and the per-server tracer.

A :class:`TraceContext` is minted when a naplet launches and travels with it
(it is a plain serializable value object, so migration frames, freeze/thaw
images, and clones all carry it).  Every interesting step of the journey —
a migration hop, a landing, a post-action, a message send, a forwarding hop,
a locator lookup — is recorded as a timed :class:`Span` on the local
server's :class:`Tracer`.  Spans reference their parent by id, so
``SpaceAdmin.journey(nid)`` can stitch the per-server span logs back into
one ordered tree (see :mod:`repro.telemetry.journey`).

Span ids are random 16-hex-digit strings; trace ids 32.  The tracer is
append-only and bounded like the :class:`~repro.util.eventlog.EventLog`,
and a disabled tracer (``enabled=False``) hands out no-op spans so the hot
path costs one attribute check.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceContext", "Span", "Tracer", "NULL_SPAN", "new_span_id", "new_trace_id"]


def new_trace_id() -> str:
    return uuid.uuid4().hex


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The travelling half of a trace: the trace id plus the root span id.

    ``span_id`` names the journey's root span (recorded at launch); hop and
    message spans use it as their parent so the stitched tree stays shallow
    and readable.  The context is immutable and serializes with the naplet.
    """

    trace_id: str
    span_id: str

    @classmethod
    def mint(cls) -> "TraceContext":
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self, span_id: str) -> "TraceContext":
        """Same trace, re-rooted under *span_id* (messenger envelopes)."""
        return TraceContext(trace_id=self.trace_id, span_id=span_id)


@dataclass(frozen=True)
class Span:
    """One timed step of a journey, recorded at one server."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    server: str
    start_wall: float
    start_mono: float
    duration: float
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"  # "ok" | "error"

    def attr(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)


class _LiveSpan:
    """In-flight span handed to the instrumented code inside ``with``."""

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id",
        "attributes", "start_wall", "start_mono", "duration", "status",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        attributes: dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.start_wall = 0.0
        self.start_mono = 0.0
        self.duration = 0.0
        self.status = "ok"

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "_LiveSpan":
        self.start_wall = time.time()
        self.start_mono = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        self.duration = time.monotonic() - self.start_mono
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", repr(exc))
        self.tracer._append(
            Span(
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                server=self.tracer.server,
                start_wall=self.start_wall,
                start_mono=self.start_mono,
                duration=self.duration,
                attributes=self.attributes,
                status=self.status,
            )
        )
        return None  # never swallow the exception


class _NullSpan:
    """No-op stand-in when tracing is disabled."""

    __slots__ = ()
    span_id = ""
    duration = 0.0
    status = "ok"

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()

# Public no-op span for callers that sometimes have nothing to trace.
NULL_SPAN = _NULL_SPAN


class Tracer:
    """Per-server span collector (bounded, thread-safe, append-only)."""

    def __init__(self, server: str, enabled: bool = True, maxlen: int | None = 8192) -> None:
        self.server = server
        self.enabled = enabled
        self._spans: list[Span] = []
        self._maxlen = maxlen
        self._lock = threading.Lock()
        # Observer called with each completed span (outside the lock); the
        # flight recorder hooks here to journal spans as they finish.
        self.on_span: Any | None = None

    # -- recording -------------------------------------------------------- #

    def span(
        self,
        name: str,
        ctx: TraceContext,
        parent_id: str | None = None,
        span_id: str | None = None,
        **attributes: Any,
    ) -> "_LiveSpan | _NullSpan":
        """Context manager timing one step of trace *ctx*.

        ``parent_id`` defaults to the context's root span; pass an explicit
        id to nest under another span (e.g. a landing under its hop).
        """
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(
            tracer=self,
            name=name,
            trace_id=ctx.trace_id,
            span_id=span_id or new_span_id(),
            parent_id=parent_id if parent_id is not None else ctx.span_id,
            attributes=dict(attributes),
        )

    def record(
        self,
        name: str,
        ctx: TraceContext,
        parent_id: str | None = None,
        duration: float = 0.0,
        span_id: str | None = None,
        **attributes: Any,
    ) -> Span | None:
        """Append an already-timed span (for events with external timing)."""
        if not self.enabled:
            return None
        span = Span(
            trace_id=ctx.trace_id,
            span_id=span_id or new_span_id(),
            parent_id=parent_id if parent_id is not None else ctx.span_id,
            name=name,
            server=self.server,
            start_wall=time.time(),
            start_mono=time.monotonic(),
            duration=duration,
            attributes=dict(attributes),
        )
        self._append(span)
        return span

    def _append(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if self._maxlen is not None and len(self._spans) > self._maxlen:
                del self._spans[: len(self._spans) - self._maxlen]
        observer = self.on_span
        if observer is not None:
            try:
                observer(span)
            except Exception:
                pass  # an observer failure must never break tracing

    # -- inspection -------------------------------------------------------- #

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def spans_for(self, trace_id: str) -> list[Span]:
        return [s for s in self.spans() if s.trace_id == trace_id]

    def find(self, name: str, **attributes: Any) -> list[Span]:
        return [
            s
            for s in self.spans()
            if s.name == name
            and all(s.attributes.get(k) == v for k, v in attributes.items())
        ]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())
