"""Virtual hosts.

A :class:`VirtualHost` is one machine in the simulated network.  The paper
allows many JVMs per host but **at most one NapletServer per host** — the
host object enforces exactly that invariant, and also anchors host-local
fixtures (a managed SNMP device, arbitrary attachments used by examples).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.core.errors import NapletError
from repro.transport.base import urn_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.network import VirtualNetwork

__all__ = ["VirtualHost"]


class VirtualHost:
    """One machine: a name, its network, and at most one naplet server."""

    def __init__(self, hostname: str, network: "VirtualNetwork") -> None:
        self.hostname = hostname
        self.network = network
        self._server: Any | None = None
        self._attachments: dict[str, Any] = {}
        self._lock = threading.Lock()

    @property
    def urn(self) -> str:
        return urn_of(self.hostname)

    # -- the one-server invariant (paper §2.2) ---------------------------- #

    @property
    def server(self) -> Any | None:
        with self._lock:
            return self._server

    def install_server(self, server: Any) -> None:
        with self._lock:
            if self._server is not None:
                raise NapletError(
                    f"host {self.hostname!r} already has a NapletServer installed "
                    "(each host can contain at most one)"
                )
            self._server = server

    def remove_server(self) -> None:
        with self._lock:
            self._server = None

    # -- host-local fixtures ------------------------------------------------ #

    def attach(self, key: str, value: Any) -> None:
        with self._lock:
            self._attachments[key] = value

    def attachment(self, key: str, default: Any = None) -> Any:
        with self._lock:
            return self._attachments.get(key, default)

    def __repr__(self) -> str:
        has_server = self.server is not None
        return f"<VirtualHost {self.hostname!r} server={'yes' if has_server else 'no'}>"
